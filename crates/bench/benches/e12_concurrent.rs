//! E12 bench — concurrent profile collection: the adaptive subsystem's
//! lock-striped [`ShardedCounters`] vs. the obvious `Mutex<HashMap>`
//! registry, under 1/2/4/8 threads of counter traffic.
//!
//! Claim under test: sharding keeps aggregate increment throughput scaling
//! with threads, where a single mutex serializes every hit (target: ≥ 4×
//! the mutexed baseline at 8 threads). The collapse of the global mutex is
//! a *contention* effect: it needs threads running in parallel. The bench
//! prints the host's available parallelism — on a single-core host the
//! threads time-slice, no lock is ever contended, and the measurement
//! degenerates to per-op overhead (where the two designs are within ~15%
//! of each other; see `DESIGN.md`).
//!
//! A second pair benchmarks the proc-macro runtime registry this PR
//! replaced: the seed's global `Mutex<HashMap<String, u64>>` — which
//! allocated a `String` per hit — against `pgmp-rt`'s sharded registry,
//! which takes `&str` and allocates only on first sight of a point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp_adaptive::ShardedCounters;
use pgmp_profiler::Dataset;
use pgmp_syntax::SourceObject;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const POINTS: usize = 64;
const HITS_PER_THREAD: u64 = 50_000;

fn points() -> Vec<SourceObject> {
    (0..POINTS as u32)
        .map(|i| SourceObject::new("e12.scm", i * 2, i * 2 + 1))
        .collect()
}

/// The baseline everyone writes first: one mutex around one hash map.
#[derive(Default)]
struct MutexedCounters {
    counts: Mutex<HashMap<SourceObject, u64>>,
}

impl MutexedCounters {
    fn increment(&self, p: SourceObject) {
        let mut counts = self.counts.lock().unwrap();
        let c = counts.entry(p).or_insert(0);
        *c = c.saturating_add(1);
    }

    fn snapshot(&self) -> Dataset {
        self.counts
            .lock()
            .unwrap()
            .iter()
            .map(|(p, c)| (*p, *c))
            .collect()
    }
}

/// Wall-clock for `threads` workers each issuing `HITS_PER_THREAD`
/// round-robin increments through `hit`, repeated `iters` times.
fn hammer<R: Sync>(iters: u64, threads: usize, registry: &R, hit: impl Fn(&R, SourceObject) + Sync) -> Duration {
    let ps = points();
    let start = Instant::now();
    for _ in 0..iters {
        std::thread::scope(|s| {
            for t in 0..threads {
                let ps = &ps;
                let hit = &hit;
                s.spawn(move || {
                    for i in 0..HITS_PER_THREAD {
                        hit(registry, ps[(i as usize + t) % POINTS]);
                    }
                });
            }
        });
    }
    start.elapsed()
}

/// The registry design the seed's `pgmp-rt` shipped: one global mutex, one
/// SipHash map, and a `String` allocation on every hit.
#[derive(Default)]
struct SeedRtRegistry {
    counts: Mutex<HashMap<String, u64>>,
}

impl SeedRtRegistry {
    fn hit(&self, point: &str) {
        let mut reg = self.counts.lock().unwrap();
        *reg.entry(point.to_owned()).or_insert(0) += 1;
    }
}

fn bench_concurrent_counters(c: &mut Criterion) {
    eprintln!(
        "e12: host parallelism = {} (contention effects require > 1)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let mut group = c.benchmark_group("e12_concurrent");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                let counters = ShardedCounters::new();
                b.iter_custom(|iters| {
                    let d = hammer(iters, threads, &counters, |c, p| c.increment(p));
                    black_box(counters.snapshot());
                    counters.clear();
                    d
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutexed", threads),
            &threads,
            |b, &threads| {
                let counters = MutexedCounters::default();
                b.iter_custom(|iters| {
                    let d = hammer(iters, threads, &counters, |c, p| c.increment(p));
                    black_box(counters.snapshot());
                    counters.counts.lock().unwrap().clear();
                    d
                });
            },
        );
    }
    group.finish();

    // The proc-macro runtime pair: string-keyed profile points.
    let names: Vec<String> = (0..POINTS).map(|i| format!("bench::arm#{i}")).collect();
    let hammer_str = |iters: u64, threads: usize, hit: &(dyn Fn(&str) + Sync)| {
        let start = Instant::now();
        for _ in 0..iters {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let names = &names;
                    s.spawn(move || {
                        for i in 0..HITS_PER_THREAD {
                            hit(&names[(i as usize + t) % POINTS]);
                        }
                    });
                }
            });
        }
        start.elapsed()
    };
    let mut group = c.benchmark_group("e12_rt_registry");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded-str", threads),
            &threads,
            |b, &threads| {
                let reg: pgmp_rt::ShardedRegistry<String> = pgmp_rt::ShardedRegistry::new();
                b.iter_custom(|iters| {
                    let d = hammer_str(iters, threads, &|p| reg.increment(p));
                    black_box(reg.snapshot());
                    reg.clear();
                    d
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("seed-global-mutex", threads),
            &threads,
            |b, &threads| {
                let reg = SeedRtRegistry::default();
                b.iter_custom(|iters| {
                    let d = hammer_str(iters, threads, &|p| reg.hit(p));
                    black_box(reg.counts.lock().unwrap().len());
                    reg.counts.lock().unwrap().clear();
                    d
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_counters);
criterion_main!(benches);
