//! E15 bench — disabled-tracing overhead.
//!
//! The observability acceptance bar: with no recording active, the trace
//! bus may cost the every-expression interpreter loop at most ~1%. The
//! per-expression path contains *no* instrumentation site at all — events
//! are emitted only at boundaries (run, expand, compile, epoch), each
//! gated on one relaxed atomic load — so the disabled configuration here
//! should be indistinguishable from the pre-observability engine.
//!
//! Three configurations over the same CPU-bound workload:
//!
//! - `every-expression/tracing-off` — the default state; the number the
//!   ≤ 1% claim is about.
//! - `every-expression/tracing-on` — a recording is active, so boundary
//!   sites actually build and buffer events. The off/on delta bounds the
//!   *entire* cost of the bus on this loop from above; the disabled cost
//!   is strictly smaller (the same sites, minus event construction).
//! - `uninstrumented/tracing-off` — context: the profiler's own counters
//!   dominate any trace-bus effect (§4.4 / bench E7).

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp::Engine;
use pgmp_bench::workloads::fib_program;
use pgmp_observe as observe;
use pgmp_profiler::ProfileMode;

fn bench_trace_overhead(c: &mut Criterion) {
    let program = fib_program(16);
    let mut group = c.benchmark_group("e15_trace_overhead");
    group.sample_size(10);

    group.bench_function("uninstrumented/tracing-off", |b| {
        let mut e = Engine::new();
        b.iter(|| e.run_str(&program, "e15.scm").expect("run"))
    });

    group.bench_function("every-expression/tracing-off", |b| {
        assert!(
            !observe::enabled(),
            "tracing must be disabled for the baseline measurement"
        );
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e15.scm").expect("run"))
    });

    group.bench_function("every-expression/tracing-on", |b| {
        let _bus = observe::exclusive();
        observe::start(observe::TraceConfig::default()).expect("start recording");
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e15.scm").expect("run"));
        observe::stop();
    });

    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
