//! E10 bench — the Rust proc-macro implementation: arm order chosen by a
//! (fixture) profile vs. source order, plus the cost of the `hit`
//! instrumentation when profiling is disabled.
//!
//! The fixture `profiles/skewed.pgmp` (relative to this crate) marks arm
//! #3 as the hottest, inverting the source order.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp_macros::exclusive_cond;
use std::hint::black_box;

/// Source-ordered: the common case (c >= 96) is tested last.
fn classify_static(c: u8) -> u32 {
    exclusive_cond!(
        site "bench-static";
        (c < 32) => (0);
        (c < 64) => (1);
        (c < 96) => (2);
        else => (3)
    )
}

/// Profile-ordered via the fixture: arm #else can't move, but the hot
/// in-range arm (#2 per the fixture) is tested first.
fn classify_profiled(c: u8) -> u32 {
    exclusive_cond!(
        profile "profiles/skewed.pgmp";
        site "bench";
        (c < 32) => (0);
        (c < 64) => (1);
        (c < 96) => (2);
        else => (3)
    )
}

fn bench_exclusive_cond(c: &mut Criterion) {
    // Input heavily skewed to the 64..96 range (arm #2).
    let inputs: Vec<u8> = (0..4096u32)
        .map(|i| if i % 10 < 9 { 64 + (i % 32) as u8 } else { (i % 32) as u8 })
        .collect();
    let mut group = c.benchmark_group("e10_exclusive_cond");

    group.bench_function("source-order", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &i in &inputs {
                acc += classify_static(black_box(i));
            }
            acc
        })
    });
    group.bench_function("profile-order", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &i in &inputs {
                acc += classify_profiled(black_box(i));
            }
            acc
        })
    });
    group.finish();
}

fn bench_hit_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hit_overhead");
    pgmp_rt::disable_profiling();
    group.bench_function("hit-disabled", |b| {
        b.iter(|| pgmp_rt::hit(black_box("bench-point")))
    });
    pgmp_rt::enable_profiling();
    group.bench_function("hit-enabled", |b| {
        b.iter(|| pgmp_rt::hit(black_box("bench-point")))
    });
    pgmp_rt::disable_profiling();
    group.finish();
}

criterion_group!(benches, bench_exclusive_cond, bench_hit_overhead);
criterion_main!(benches);
