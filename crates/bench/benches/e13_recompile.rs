//! E13 bench — incremental recompilation latency: the per-form
//! profile-dependency cache ([`pgmp::IncrementalEngine`]) vs. a
//! from-scratch recompile, on programs of 10/100/1000 top-level forms
//! where only a small fraction (1 in 20) consult the profile.
//!
//! Claim under test: re-optimization after a profile update costs
//! O(changed forms), not O(program). Each measured iteration flips the
//! branch weights of every profile-dependent form and recompiles — the
//! incremental engine re-expands only those forms (plus none of the
//! plain ones), the baseline redoes the entire pipeline. With ≤ 10% of
//! forms profile-dependent the incremental path should win by ≥ 5× on
//! the larger program sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp::{Engine, IncrementalConfig, IncrementalEngine};
use pgmp_bytecode::{canonical_form, compile_chunk};
use pgmp_profiler::ProfileInformation;
use pgmp_reader::read_str;
use pgmp_syntax::SourceObject;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Every `DEP_STRIDE`-th form consults the profile (5% of forms).
const DEP_STRIDE: usize = 20;

/// A program of `n` top-level defines after an `if-r` macro definition;
/// every `DEP_STRIDE`-th define decides its branch order from the profile.
fn program(n: usize) -> String {
    let mut src = String::from(
        "(define-syntax (if-r stx)
           (syntax-case stx ()
             [(_ test t-branch f-branch)
              (if (< (profile-query #'t-branch) (profile-query #'f-branch))
                  #'(if (not test) f-branch t-branch)
                  #'(if test t-branch f-branch))]))\n",
    );
    for i in 0..n {
        if i % DEP_STRIDE == 0 {
            src.push_str(&format!(
                "(define (g{i} x) (if-r (< x 10) 'lo{i} 'hi{i}))\n"
            ));
        } else {
            src.push_str(&format!("(define (f{i} x) (+ (* x {i}) 1))\n"));
        }
    }
    src
}

/// Profile points of the two `if-r` branches of every profile-dependent
/// form, read straight off the source (the points a meta-program queries
/// are the source objects of the branch expressions).
fn branch_points(src: &str, file: &str) -> Vec<(SourceObject, SourceObject)> {
    read_str(src, file)
        .expect("bench program reads")
        .iter()
        .skip(1) // the define-syntax
        .filter_map(|form| {
            let define = form.as_list()?;
            let body = define.get(2)?.as_list()?;
            // (if-r test t-branch f-branch)
            if body.len() == 4 {
                Some((body[2].source?, body[3].source?))
            } else {
                None
            }
        })
        .collect()
}

/// Weights biasing every dependent form's branches one way (`flip` =
/// false) or the other (`flip` = true).
fn weights(points: &[(SourceObject, SourceObject)], flip: bool) -> ProfileInformation {
    let (hot, cold) = if flip { (0.1, 0.9) } else { (0.9, 0.1) };
    ProfileInformation::from_weights(
        points.iter().flat_map(|(t, f)| [(*t, hot), (*f, cold)]),
        1,
    )
}

/// One from-scratch recompile under `w`: the exact pipeline the adaptive
/// engine runs when the incremental cache is disabled (expansion printing
/// and CFG canonicalization included — they are part of the artifact).
fn full_recompile(src: &str, file: &str, w: &ProfileInformation) -> (Vec<String>, Vec<String>) {
    let mut engine = Engine::new();
    engine.set_profile(w.clone());
    let expansion: Vec<String> = engine
        .expand_str(src, file)
        .expect("expand")
        .iter()
        .map(|s| s.to_datum().to_string())
        .collect();
    engine.reset_profile_points();
    let cfgs: Vec<String> = engine
        .expand_to_core(src, file)
        .expect("core")
        .iter()
        .map(|c| canonical_form(&compile_chunk(c)))
        .collect();
    (expansion, cfgs)
}

fn bench_recompile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_recompile");
    for n in [10usize, 100, 1000] {
        let src = program(n);
        let file = format!("e13_{n}.scm");
        let points = branch_points(&src, &file);
        assert_eq!(points.len(), n.div_ceil(DEP_STRIDE));
        let w = [weights(&points, false), weights(&points, true)];

        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let mut incr =
                IncrementalEngine::new(&src, &file, IncrementalConfig::default())
                    .expect("incremental engine");
            incr.compile(&w[0]).expect("prime");
            b.iter_custom(|iters| {
                let start = Instant::now();
                for i in 0..iters {
                    // Alternate the bias so every measured recompile
                    // re-expands all dependent forms.
                    let unit = incr.compile(&w[((i + 1) % 2) as usize]).expect("recompile");
                    black_box(unit.stats.reexpanded);
                }
                start.elapsed()
            });
        });

        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let w = &w[(i % 2) as usize];
                    let start = Instant::now();
                    black_box(full_recompile(&src, &file, w));
                    total += start.elapsed();
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recompile);
criterion_main!(benches);
