//! E19 bench — what does rebasing a stale profile cost, and what does it
//! save?
//!
//! The matcher is O(n·m) in toplevel-form count (the LCS dynamic
//! program) plus a lockstep walk per matched form, so rebasing must stay
//! comfortably below a single re-expansion even at large programs for
//! "rebase, then warm-start" to beat "throw the profile away and
//! recompile cold". This bench times [`pgmp_profiler::rebase`] across
//! program sizes under the E19 edit script shape (inserts at the top and
//! middle plus same-length renames), and prints the retained-weight
//! fraction per size on stderr so the ≥ 80% acceptance claim of
//! `docs/EXPERIMENTS.md` §E19 is visible next to the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp_profiler::{rebase, ProfileInformation, RebaseConfig, SlotMap, StoredProfile};
use pgmp_reader::read_str;
use pgmp_syntax::SourceObject;
use std::hint::black_box;

const FILE: &str = "e19.scm";

fn program(n: usize) -> String {
    (0..n)
        .map(|i| format!("(define (f{i} x) (+ (* x {i}) 1))"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The E19 edit shape scaled to `n` forms: one insert at the top, one in
/// the middle, and every tenth define renamed (same length, `f` -> `q`).
fn edited(n: usize) -> String {
    let mut forms: Vec<String> = (0..n)
        .map(|i| {
            if i % 10 == 3 {
                format!("(define (q{i} x) (+ (* x {i}) 1))")
            } else {
                format!("(define (f{i} x) (+ (* x {i}) 1))")
            }
        })
        .collect();
    forms.insert(n / 2, "(define (mid a) (list a a))".to_string());
    forms.insert(0, "(define (top a) (list a a))".to_string());
    forms.join("\n")
}

/// One weighted point per toplevel form root span, plus a slot table.
fn profile_for(src: &str) -> StoredProfile {
    let forms = read_str(src, FILE).expect("bench program reads");
    let n = forms.len() as f64;
    let weights: Vec<(SourceObject, f64)> = forms
        .iter()
        .enumerate()
        .map(|(i, f)| (f.source.expect("root span"), (i as f64 + 1.0) / n))
        .collect();
    let points: Vec<SourceObject> = weights.iter().map(|(p, _)| *p).collect();
    let slots = SlotMap::from_points(points).expect("distinct points");
    StoredProfile::v2(ProfileInformation::from_weights(weights, 1), Some(slots))
}

fn bench_rebase(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_rebase");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let old_src = program(n);
        let new_src = edited(n);
        let old = profile_for(&old_src);

        let r = rebase(&old, &old_src, &new_src, FILE, &RebaseConfig::default())
            .expect("bench rebase");
        eprintln!(
            "e19_rebase n={n}: retained {:.1}% ({} exact, {} shifted, {} structural, {} dead)",
            100.0 * r.report.retained_weight_fraction(),
            r.report.exact,
            r.report.shifted,
            r.report.structural,
            r.report.dead,
        );

        group.bench_with_input(BenchmarkId::new("rebase", n), &n, |b, _| {
            b.iter(|| {
                let r = rebase(&old, &old_src, &new_src, FILE, &RebaseConfig::default())
                    .expect("bench rebase");
                black_box(r.report.retained_weight)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rebase);
criterion_main!(benches);
