//! E6 bench — §6.3 self-specializing sequences: random-access workload
//! on the list representation vs. the profile-specialized vector
//! representation, swept over sequence length.
//!
//! Paper claim: representation changes can yield *asymptotic*
//! improvements — the list/vector gap must grow with sequence length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp_bench::workloads::{optimized_engine, sequence_program, train};
use pgmp_case_studies::{engine_with, Lib};

fn bench_sequence(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sequence");
    group.sample_size(10);
    for len in [50usize, 200, 800] {
        let setup = sequence_program(len, 50);
        let driver = "(churn 1000)";

        let mut list_engine = engine_with(&[Lib::Sequence]).expect("libs");
        list_engine.run_str(&setup, "e6.scm").expect("setup");
        group.bench_with_input(BenchmarkId::new("list", len), &len, |b, _| {
            b.iter(|| list_engine.run_str(driver, "drive.scm").expect("run"))
        });

        let weights = train(&[Lib::Sequence], &setup, "e6.scm");
        let mut vec_engine = optimized_engine(&[Lib::Sequence], weights);
        vec_engine.run_str(&setup, "e6.scm").expect("setup");
        group.bench_with_input(BenchmarkId::new("specialized-vector", len), &len, |b, _| {
            b.iter(|| vec_engine.run_str(driver, "drive.scm").expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequence);
criterion_main!(benches);
