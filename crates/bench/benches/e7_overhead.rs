//! E7 bench — §4.4 profiling overhead.
//!
//! Paper numbers: the Chez Scheme profiler costs ≈9% at run time; Racket
//! `errortrace` costs 4–12×, *plus* the extra thunk-wrapping
//! `annotate-expr` performs there. We measure the same three
//! configurations on a CPU-bound workload:
//!
//! - uninstrumented,
//! - every-expression counters (the Chez model),
//! - calls-only counters with thunk-wrapped annotations (the Racket
//!   model).

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp::{AnnotateStrategy, Engine};
use pgmp_bench::workloads::fib_program;
use pgmp_bytecode::{compile_chunk, BlockCounters, Vm};
use pgmp_profiler::{CounterImpl, ProfileMode};

fn bench_overhead(c: &mut Criterion) {
    let program = fib_program(16);
    let mut group = c.benchmark_group("e7_overhead");
    group.sample_size(10);

    group.bench_function("uninstrumented", |b| {
        let mut e = Engine::new();
        b.iter(|| e.run_str(&program, "e7.scm").expect("run"))
    });

    group.bench_function("chez-style-every-expression", |b| {
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e7.scm").expect("run"))
    });

    // Same instrumentation through the legacy hash-keyed counter backend:
    // the baseline the dense slot-indexed representation replaced.
    group.bench_function("chez-style-every-expression-hash", |b| {
        let mut e = Engine::new();
        e.set_counter_impl(CounterImpl::Hash);
        e.set_instrumentation(ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e7.scm").expect("run"))
    });

    // Sampling backend: each profile point costs one relaxed beacon store;
    // the sampler thread ticks at the default rate in the background. The
    // target frontier (E18 maps it fully) is ≤1.05× the uninstrumented
    // time, vs ~1.45× for exact dense counting.
    group.bench_function("chez-style-every-expression-sampling", |b| {
        let mut e = Engine::new();
        e.set_counter_impl(CounterImpl::Sampling);
        e.set_instrumentation(ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e7.scm").expect("run"))
    });

    group.bench_function("errortrace-style-calls-only", |b| {
        let mut e = Engine::with_strategy(AnnotateStrategy::WrapLambda);
        e.set_instrumentation(ProfileMode::CallsOnly);
        b.iter(|| e.run_str(&program, "e7.scm").expect("run"))
    });

    // The wrap-lambda cost in isolation: an annotated expression evaluated
    // many times under each strategy, profiling off (§4.4's point that the
    // wrapping itself has a cost independent of counting).
    let annotated = "
      (define-syntax (annotated stx)
        (syntax-case stx ()
          [(_ e) (annotate-expr #'e (make-profile-point))]))
      (define (spin reps)
        (let loop ([i 0] [acc 0])
          (if (= i reps) acc (loop (add1 i) (annotated (+ acc 1))))))
      (spin 30000)";
    group.bench_function("annotate-direct-uninstrumented", |b| {
        let mut e = Engine::with_strategy(AnnotateStrategy::Direct);
        b.iter(|| e.run_str(annotated, "a.scm").expect("run"))
    });
    group.bench_function("annotate-wrap-lambda-uninstrumented", |b| {
        let mut e = Engine::with_strategy(AnnotateStrategy::WrapLambda);
        b.iter(|| e.run_str(annotated, "a.scm").expect("run"))
    });

    // VM-mode block counting, dense vs hash: every basic block bumps a
    // counter, so the backend's per-hit cost dominates the delta.
    group.bench_function("vm-block-uninstrumented", |b| {
        let mut e = Engine::new();
        let core = e.expand_to_core(&program, "e7.scm").expect("expand");
        let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
        let mut vm = Vm::new();
        b.iter(|| {
            for chunk in &chunks {
                vm.run_chunk(e.interp_mut(), chunk).expect("run");
            }
        })
    });
    for (name, kind) in [
        ("vm-block-counters-dense", CounterImpl::Dense),
        ("vm-block-counters-hash", CounterImpl::Hash),
        ("vm-block-counters-sampling", CounterImpl::Sampling),
    ] {
        group.bench_function(name, |b| {
            let mut e = Engine::new();
            let core = e.expand_to_core(&program, "e7.scm").expect("expand");
            let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
            let mut vm = Vm::new();
            vm.set_block_profiling(BlockCounters::with_impl(kind));
            b.iter(|| {
                for chunk in &chunks {
                    vm.run_chunk(e.interp_mut(), chunk).expect("run");
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
