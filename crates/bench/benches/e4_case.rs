//! E4 bench — §6.1 profile-guided `case` (Figures 5–8): parsing the
//! Figure 8 character distribution with statically-ordered vs.
//! profile-ordered clauses, plus a sweep over how skewed the input is.
//!
//! Paper claim (qualitative, after the .NET switch optimization): testing
//! hot clauses first wins; the win grows with input skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgmp_bench::workloads::{figure8_input, optimized_engine, parser_library, train};
use pgmp_case_studies::{engine_with, Lib};

fn bench_figure8(c: &mut Criterion) {
    let input = figure8_input();
    let setup = format!("{}\n(run-parser \"{input}\" 1)", parser_library());
    let driver = format!("(run-parser \"{input}\" 60)");
    let mut group = c.benchmark_group("e4_case_figure8");
    group.sample_size(10);

    let mut static_engine = engine_with(&[Lib::Case]).expect("libs");
    static_engine.run_str(&setup, "e4.scm").expect("setup");
    group.bench_function("static-order", |b| {
        b.iter(|| static_engine.run_str(&driver, "drive.scm").expect("run"))
    });

    let weights = train(&[Lib::Case], &setup, "e4.scm");
    let mut profiled = optimized_engine(&[Lib::Case], weights);
    profiled.run_str(&setup, "e4.scm").expect("setup");
    group.bench_function("profile-order", |b| {
        b.iter(|| profiled.run_str(&driver, "drive.scm").expect("run"))
    });

    group.finish();
}

fn bench_skew_sweep(c: &mut Criterion) {
    // Sweep: the hot character class makes up 50/80/95% of the input.
    // The more skewed, the bigger the reordering win should be.
    let mut group = c.benchmark_group("e4_case_skew");
    group.sample_size(10);
    for skew in [50usize, 80, 95] {
        let hot = " ".repeat(skew);
        let cold = "0".repeat(100 - skew);
        let input = format!("{hot}{cold}");
        let setup = format!("{}\n(run-parser \"{input}\" 1)", parser_library());
        let driver = format!("(run-parser \"{input}\" 40)");

        let mut static_engine = engine_with(&[Lib::Case]).expect("libs");
        static_engine.run_str(&setup, "e4.scm").expect("setup");
        group.bench_with_input(BenchmarkId::new("static", skew), &skew, |b, _| {
            b.iter(|| static_engine.run_str(&driver, "drive.scm").expect("run"))
        });

        let weights = train(&[Lib::Case], &setup, "e4.scm");
        let mut profiled = optimized_engine(&[Lib::Case], weights);
        profiled.run_str(&setup, "e4.scm").expect("setup");
        group.bench_with_input(BenchmarkId::new("profiled", skew), &skew, |b, _| {
            b.iter(|| profiled.run_str(&driver, "drive.scm").expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure8, bench_skew_sweep);
criterion_main!(benches);
