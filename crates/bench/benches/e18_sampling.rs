//! E18 bench — the sampling backend's overhead-vs-exactness frontier.
//!
//! The paper's profilers are exact: every annotated expression bumps a
//! counter, which is why Chez pays ≈9% and errortrace 4–12×. The sampling
//! backend trades exactness for overhead: the mutator only publishes a
//! one-word beacon per profile point, and a sampler thread converts beacon
//! observations into weight *estimates* at a configurable rate. This bench
//! maps both axes:
//!
//! - **Overhead axis** (criterion timings): uninstrumented vs exact dense
//!   counters vs sampling at 103 / 997 / 9973 Hz. The *mutator's* beacon
//!   store costs the same at every rate (target ≤1.05× at the 997 Hz
//!   default, vs ~1.05–1.1× for dense); what scales with Hz is the
//!   sampler thread's own wakeups, which on a saturated machine start to
//!   steal measurable CPU around 10 kHz — that knee is part of the
//!   frontier this bench maps.
//! - **Exactness axis** (table on stderr before the timings): deterministic
//!   manual-gap sampling at mean gaps 1/2/4/8/16 against the exact dense
//!   weights for the same workload, reporting the worst per-point weight
//!   error and how many of the exact profile points the estimate resolved
//!   at all. Gap 1 is the stride-1 anchor (error at the reconstruction's
//!   quantization floor, ~1e-4); the error grows slowly with the gap while
//!   the decisions §3's meta-programs make (ranking well-separated points)
//!   stay stable — the same ε-bound the convergence proptest in
//!   `crates/profiler/tests/convergence.rs` pins.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp::Engine;
use pgmp_bench::workloads::fib_program;
use pgmp_profiler::{CounterImpl, Counters};
use std::collections::HashMap;

/// Deterministic LCG (same constants as the convergence oracle) for the
/// jittered manual sample gaps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Exact per-point weights for `program` under dense counters.
fn exact_weights(program: &str) -> HashMap<pgmp_syntax::SourceObject, f64> {
    let mut e = Engine::new();
    e.set_instrumentation(pgmp_profiler::ProfileMode::EveryExpression);
    e.run_str(program, "e18.scm").expect("run");
    e.current_weights().iter().collect()
}

/// Estimated weights from a manually driven sampling registry: the
/// interpreter publishes beacons as usual, and we sample after every
/// `~mean_gap` beacon updates via an instrumented driver loop. Because the
/// engine gives no per-hit hook, we approximate by running the program
/// normally and sampling from a second thread is *not* deterministic —
/// instead we replay the exact dense counts through a manual registry with
/// jittered gaps, which models the same estimator (see the convergence
/// oracle for why the schedule shape is representative).
fn sampled_weights(
    exact: &HashMap<pgmp_syntax::SourceObject, f64>,
    mean_gap: u64,
) -> HashMap<pgmp_syntax::SourceObject, f64> {
    // Reconstruct integer hit counts from the normalized exact weights
    // (scale so the hottest point gets ~8k hits), then spread them evenly
    // through an event stream — steady-state loop order.
    let points: Vec<_> = exact.keys().copied().collect();
    let targets: Vec<u64> = points
        .iter()
        .map(|p| ((exact[p] * 8000.0).round() as u64).max(1))
        .collect();
    let total: u64 = targets.iter().sum();
    let mut emitted = vec![0u64; targets.len()];
    let c = Counters::sampling_manual();
    let slots: Vec<u32> = points.iter().map(|p| c.resolve(*p)).collect();
    let mut lcg = Lcg(42);
    let mut countdown = 1u64;
    for step in 1..=total {
        let mut best = 0usize;
        let mut best_deficit = f64::MIN;
        for (i, (&t, &e)) in targets.iter().zip(&emitted).enumerate() {
            let deficit = (t as f64) * (step as f64) / (total as f64) - e as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        emitted[best] += 1;
        c.record_hit(slots[best]);
        countdown -= 1;
        if countdown == 0 {
            c.sample_now();
            countdown = if mean_gap <= 1 {
                1
            } else {
                1 + lcg.next() % (2 * mean_gap - 1)
            };
        }
    }
    let counts: Vec<u64> = points.iter().map(|p| c.count(*p)).collect();
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    points
        .iter()
        .zip(&counts)
        .filter(|(_, &n)| n > 0)
        .map(|(p, &n)| (*p, n as f64 / max as f64))
        .collect()
}

/// Prints the exactness half of the frontier to stderr (criterion owns
/// stdout).
fn report_exactness(program: &str) {
    let exact = exact_weights(program);
    eprintln!("E18 exactness frontier (manual jittered sampling vs exact weights)");
    eprintln!(
        "{:>9} {:>12} {:>14} {:>16}",
        "mean gap", "sample rate", "worst |Δw|", "points resolved"
    );
    for gap in [1u64, 2, 4, 8, 16] {
        let est = sampled_weights(&exact, gap);
        let worst = exact
            .iter()
            .map(|(p, w)| (w - est.get(p).copied().unwrap_or(0.0)).abs())
            .fold(0.0f64, f64::max);
        eprintln!(
            "{:>9} {:>11}% {:>14.4} {:>11} / {:<4}",
            gap,
            100 / gap,
            worst,
            est.len(),
            exact.len()
        );
    }
}

fn bench_sampling_frontier(c: &mut Criterion) {
    let program = fib_program(16);
    report_exactness(&program);

    let mut group = c.benchmark_group("e18_sampling");
    group.sample_size(10);

    group.bench_function("uninstrumented", |b| {
        let mut e = Engine::new();
        b.iter(|| e.run_str(&program, "e18.scm").expect("run"))
    });
    group.bench_function("dense-exact", |b| {
        let mut e = Engine::new();
        e.set_counter_impl(CounterImpl::Dense);
        e.set_instrumentation(pgmp_profiler::ProfileMode::EveryExpression);
        b.iter(|| e.run_str(&program, "e18.scm").expect("run"))
    });
    // Overhead is flat in Hz: the mutator's beacon store is rate-blind.
    for hz in [103u32, 997, 9973] {
        group.bench_function(format!("sampling-{hz}hz"), |b| {
            let mut e = Engine::new();
            e.set_sampling(hz);
            e.set_instrumentation(pgmp_profiler::ProfileMode::EveryExpression);
            b.iter(|| e.run_str(&program, "e18.scm").expect("run"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_sampling_frontier);
criterion_main!(benches);
