//! E17 bench — direct-threaded VM dispatch: flat code streams vs. the
//! block-walking reference engine, and the effect of profile-guided
//! superinstruction fusion.
//!
//! Four engines on the same dispatch-heavy workload (deep call recursion
//! plus a tight counting loop — every iteration is calls, branches, and
//! constant pushes, so dispatch cost dominates):
//!
//! - tree-walk: the source-level interpreter (the reference semantics);
//! - vm-match: the VM walking the block/`Terminator` form (`DispatchMode::Match`);
//! - vm-flat: the same chunks lowered to contiguous fixed-size op streams
//!   executed by index (`DispatchMode::Flat`, the default);
//! - vm-flat-fused: flat dispatch with the superinstruction plan mined
//!   from a profiled run of this very workload (`FusionPlan::mine`).
//!
//! Expectation (EXPERIMENTS.md E17): flat ≥ 2x match, fused ≥ flat.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp::Engine;
use pgmp_bench::workloads::fib_program;
use pgmp_bytecode::{compile_chunk, BlockCounters, Chunk, DispatchMode, FusionPlan, Vm};

fn dispatch_workload() -> String {
    format!(
        "{}
         (define (spin reps)
           (let loop ([i 0] [acc 0])
             (if (= i reps) acc (loop (+ i 1) (+ acc i)))))
         (spin 20000)",
        fib_program(16)
    )
}

fn compiled(program: &str) -> (Engine, Vec<Chunk>) {
    let mut e = Engine::new();
    let core = e.expand_to_core(program, "e17.scm").expect("expand");
    let chunks: Vec<Chunk> = core.iter().map(compile_chunk).collect();
    (e, chunks)
}

fn bench_vm_dispatch(c: &mut Criterion) {
    let program = dispatch_workload();
    let mut group = c.benchmark_group("e17_vm_dispatch");
    group.sample_size(10);

    group.bench_function("tree-walk", |b| {
        let mut e = Engine::new();
        b.iter(|| e.run_str(&program, "e17.scm").expect("run"))
    });

    for (name, dispatch) in [
        ("vm-match", DispatchMode::Match),
        ("vm-flat", DispatchMode::Flat),
    ] {
        group.bench_function(name, |b| {
            let (mut e, chunks) = compiled(&program);
            let mut vm = Vm::new();
            vm.dispatch = dispatch;
            b.iter(|| {
                for chunk in &chunks {
                    vm.run_chunk(e.interp_mut(), chunk).expect("run");
                }
            })
        });
    }

    group.bench_function("vm-flat-fused", |b| {
        let (mut e, chunks) = compiled(&program);
        let mut vm = Vm::new();
        // Profile-guide the plan: one counted run of the workload itself,
        // then fuse its hottest adjacent pairs (profiling off afterwards).
        let counters = BlockCounters::new();
        vm.set_block_profiling(counters.clone());
        for chunk in &chunks {
            vm.run_chunk(e.interp_mut(), chunk).expect("profile run");
        }
        vm.block_counters = None;
        let lambda_chunks = vm.compiled_chunks();
        let plan = FusionPlan::mine(
            chunks.iter().chain(lambda_chunks.iter().map(|c| &**c)),
            &counters,
            3,
        );
        assert!(!plan.is_empty(), "dispatch workload must have hot fusable pairs");
        vm.set_fusion(plan);
        b.iter(|| {
            for chunk in &chunks {
                vm.run_chunk(e.interp_mut(), chunk).expect("run");
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_vm_dispatch);
criterion_main!(benches);
