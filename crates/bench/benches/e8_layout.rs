//! E8 bench — §4.3 block-level PGO beneath the meta-programming layer:
//! VM execution with default vs. profile-guided block layout, measured
//! both as wall-clock and (more meaningfully for a VM) as the
//! fall-through ratio the layout optimizer targets.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp::Engine;
use pgmp_bytecode::{compile_chunk, BlockCounters, Vm};

const PROGRAM: &str = "
  (define (bucket n)
    (if (= (modulo n 100) 0) 'rare 'common))
  (define (drive reps)
    (let loop ([i 0] [commons 0])
      (if (= i reps)
          commons
          (loop (add1 i) (if (eqv? (bucket i) 'common) (add1 commons) commons)))))
  (drive 20000)";

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_layout");
    group.sample_size(10);

    group.bench_function("default-layout", |b| {
        let mut engine = Engine::new();
        let core = engine.expand_to_core(PROGRAM, "e8.scm").expect("expand");
        let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
        let mut vm = Vm::new();
        b.iter(|| {
            for chunk in &chunks {
                vm.run_chunk(engine.interp_mut(), chunk).expect("run");
            }
        })
    });

    group.bench_function("profile-guided-layout", |b| {
        let mut engine = Engine::new();
        let core = engine.expand_to_core(PROGRAM, "e8.scm").expect("expand");
        let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
        // Profile pass.
        let counters = BlockCounters::new();
        let mut vm = Vm::new();
        vm.set_block_profiling(counters.clone());
        for chunk in &chunks {
            vm.run_chunk(engine.interp_mut(), chunk).expect("profile run");
        }
        // Relayout everything with the collected counts.
        let chunks: Vec<_> = chunks
            .iter()
            .map(|c| pgmp_bytecode::optimize_layout(c, &counters))
            .collect();
        vm.relayout_cached(&counters);
        vm.block_counters = None;
        b.iter(|| {
            for chunk in &chunks {
                vm.run_chunk(engine.interp_mut(), chunk).expect("run");
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
