//! E1 bench — §2 `if-r`: branch order chosen by profile vs. the static
//! (source) order, on a branch that is 99% biased against the source
//! order.
//!
//! Paper claim (qualitative): ordering branches by execution frequency
//! helps; the reproduction measures the interpreter-level effect of
//! evaluating `(not test)` vs. taking the unlikely branch path.

use criterion::{criterion_group, criterion_main, Criterion};
use pgmp_bench::workloads::{if_r_program, optimized_engine, train};
use pgmp_case_studies::{engine_with, Lib};

fn bench_if_r(c: &mut Criterion) {
    let setup = if_r_program(200);
    let driver = "(drive 5000)";
    let mut group = c.benchmark_group("e1_if_r");
    group.sample_size(10);

    // Static order (no profile).
    let mut static_engine = engine_with(&[Lib::IfR]).expect("libs");
    static_engine.run_str(&setup, "e1.scm").expect("setup");
    group.bench_function("static-order", |b| {
        b.iter(|| static_engine.run_str(driver, "drive.scm").expect("run"))
    });

    // Profile order.
    let weights = train(&[Lib::IfR], &setup, "e1.scm");
    let mut profiled_engine = optimized_engine(&[Lib::IfR], weights);
    profiled_engine.run_str(&setup, "e1.scm").expect("setup");
    group.bench_function("profile-order", |b| {
        b.iter(|| profiled_engine.run_str(driver, "drive.scm").expect("run"))
    });

    group.finish();
}

criterion_group!(benches, bench_if_r);
criterion_main!(benches);
