//! Regenerates the §6 line-count claims (experiment E9): the paper
//! reports how small each profile-guided meta-program is; we report the
//! same accounting for our implementations.
//!
//! ```sh
//! cargo run -p pgmp-bench --bin e9_loc_table
//! ```

use pgmp_case_studies::loc_counts;

fn main() {
    // The paper's numbers (§6.1–6.3). `case` is "81 lines" in Chez and
    // "50 lines" in Racket; we report against the Racket figure since our
    // implementation, like Racket's, excludes exclusive-cond.
    let paper: &[(&str, &str)] = &[
        ("if-r (§2)", "— (figure only)"),
        ("exclusive-cond (§6.1)", "31"),
        ("case (§6.1)", "50 (Racket) / 81 (Chez)"),
        ("object system incl. receiver prediction (§6.2)", "129 (44 for the PGO)"),
        ("profiled list (§6.3)", "80"),
        ("profiled vector (§6.3)", "88"),
        ("sequence (§6.3)", "111"),
        ("profile-guided inlining (extension)", "— (not in paper)"),
    ];

    println!("§6 case-study implementation sizes (non-blank, non-comment lines)");
    println!("====================================================================================");
    println!("{:<48} {:>26} {:>8}", "case study", "paper", "ours");
    println!("------------------------------------------------------------------------------------");
    for ((name, ours), (pname, paper_loc)) in loc_counts().iter().zip(paper) {
        assert_eq!(name, pname, "row mismatch");
        println!("{name:<48} {paper_loc:>26} {ours:>8}");
    }
    println!("------------------------------------------------------------------------------------");
    println!("shape check: every meta-program remains well under 200 lines,");
    println!("matching the paper's point that these PGOs are small user-level libraries.");
}
