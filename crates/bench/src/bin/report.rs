//! The full evaluation report: regenerates every experiment (E1–E10) and
//! prints paper-vs-measured, one section per table/figure.
//!
//! ```sh
//! cargo run --release -p pgmp-bench --bin report
//! ```

use pgmp::workflow::run_three_pass;
use pgmp_bench::workloads::{
    figure8_input, if_r_program, optimized_engine, parser_library, sequence_program,
    shapes_library, train,
};
use pgmp_case_studies::{engine_with, loc_counts, two_pass, Lib};
use pgmp_profiler::{Dataset, ProfileInformation};
use pgmp_syntax::SourceObject;
use std::time::{Duration, Instant};

fn header(title: &str) {
    println!("\n==== {title} ====");
}

fn timed(engine: &mut pgmp::Engine, driver: &str) -> Duration {
    engine.run_str(driver, "warm.scm").expect("warmup");
    let t0 = Instant::now();
    for _ in 0..3 {
        engine.run_str(driver, "timed.scm").expect("run");
    }
    t0.elapsed() / 3
}

fn speedup_row(name: &str, baseline: Duration, optimized: Duration) {
    println!(
        "  {name}: baseline {baseline:.2?}, optimized {optimized:.2?}  -> {:.2}x",
        baseline.as_secs_f64() / optimized.as_secs_f64()
    );
}

fn e1() {
    header("E1 (Figures 1-2): if-r branch reordering");
    let result = two_pass(
        &[Lib::IfR],
        "(define (subject-contains email s) (string-contains? email s))
         (define (flag email tag) tag)
         (define (classify email)
           (if-r (subject-contains email \"PLDI\")
             (flag email 'important)
             (flag email 'spam)))
         (let loop ([i 0])
           (unless (= i 5) (classify \"PLDI mail\") (loop (add1 i))))
         (let loop ([i 0])
           (unless (= i 10) (classify \"spam mail\") (loop (add1 i))))",
        "classify.scm",
    )
    .expect("two pass");
    let swapped = result
        .expansion_text
        .contains("(if (not (subject-contains email \"PLDI\"))");
    println!("  paper:    5x important / 10x spam training swaps the branches (Fig. 2)");
    println!("  measured: branches swapped = {swapped}");

    let setup = if_r_program(200);
    let mut static_e = engine_with(&[Lib::IfR]).unwrap();
    static_e.run_str(&setup, "e1.scm").unwrap();
    let t_static = timed(&mut static_e, "(drive 4000)");
    let mut prof_e = optimized_engine(&[Lib::IfR], train(&[Lib::IfR], &setup, "e1.scm"));
    prof_e.run_str(&setup, "e1.scm").unwrap();
    let t_prof = timed(&mut prof_e, "(drive 4000)");
    speedup_row("99%-biased branch", t_static, t_prof);
    println!("  note:     the paper calls if-r \"not a meaningful optimization\" (section 2);");
    println!("            on a tree-walker the added (not ...) makes it a slight pessimization,");
    println!("            which is the faithful outcome at this level.");
}

fn e2() {
    header("E2 (Figure 3): weights and merging");
    let important = SourceObject::new("c.scm", 0, 1);
    let spam = SourceObject::new("c.scm", 2, 3);
    let d1: Dataset = [(important, 5), (spam, 10)].into_iter().collect();
    let d2: Dataset = [(important, 100), (spam, 10)].into_iter().collect();
    let merged = ProfileInformation::from_dataset(&d1)
        .merge(&ProfileInformation::from_dataset(&d2));
    println!("  paper:    important (0.5+1)/2 = 0.75 ; spam (1+0.1)/2 = 0.55");
    println!(
        "  measured: important {} ; spam {}",
        merged.weight(important),
        merged.weight(spam)
    );
}

fn e4() {
    header("E4 (Figures 5-8): profile-guided case");
    let input = figure8_input();
    let setup = format!("{}\n(run-parser \"{input}\" 1)", parser_library());
    let program = format!("{}\n(run-parser \"{input}\" 3)", parser_library());
    let result = two_pass(&[Lib::Case], &program, "parse.scm").expect("two pass");
    let parse_line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (parse"))
        .unwrap();
    let order_ok = {
        let p = |s: &str| parse_line.find(s).unwrap();
        p("white-space") < p("start-paren")
            && p("start-paren") < p("end-paren")
            && p("end-paren") < p("(digit stream)")
    };
    println!("  paper:    clauses reordered 55/23/23/10 -> ws, (, ), digits (Fig. 8)");
    println!("  measured: clause order matches Figure 8 = {order_ok}");

    let mut static_e = engine_with(&[Lib::Case]).unwrap();
    static_e.run_str(&setup, "e4.scm").unwrap();
    let t_static = timed(&mut static_e, &format!("(run-parser \"{input}\" 60)"));
    let mut prof_e = optimized_engine(&[Lib::Case], train(&[Lib::Case], &setup, "e4.scm"));
    prof_e.run_str(&setup, "e4.scm").unwrap();
    let t_prof = timed(&mut prof_e, &format!("(run-parser \"{input}\" 60)"));
    speedup_row("Figure 8 distribution", t_static, t_prof);
}

fn e5() {
    header("E5 (Figures 9-12): receiver class prediction");
    let setup = format!("{}\n(total-area 1)", shapes_library(100));
    let mut dynamic = engine_with(&[Lib::ObjectSystem]).unwrap();
    dynamic.run_str(&setup, "e5.scm").unwrap();
    let t_dyn = timed(&mut dynamic, "(total-area 15)");
    let weights = train(&[Lib::ObjectSystem], &setup, "e5.scm");
    let mut pic = optimized_engine(&[Lib::ObjectSystem], weights);
    pic.run_str(&setup, "e5.scm").unwrap();
    let t_pic = timed(&mut pic, "(total-area 15)");
    println!("  paper:    inline the hottest classes at each call site (PIC), sorted");
    speedup_row("70/20/10 class mix", t_dyn, t_pic);
}

fn e6() {
    header("E6 (Figures 13-14): data-structure specialization");
    for len in [50usize, 200, 800] {
        let setup = sequence_program(len, 50);
        let mut list_e = engine_with(&[Lib::Sequence]).unwrap();
        list_e.run_str(&setup, "e6.scm").unwrap();
        let t_list = timed(&mut list_e, "(churn 600)");
        let weights = train(&[Lib::Sequence], &setup, "e6.scm");
        let mut vec_e = optimized_engine(&[Lib::Sequence], weights);
        vec_e.run_str(&setup, "e6.scm").unwrap();
        let t_vec = timed(&mut vec_e, "(churn 600)");
        speedup_row(&format!("random access, len {len}"), t_list, t_vec);
    }
    println!("  paper:    asymptotic improvement -> speedup must grow with length");
}

fn e7() {
    use pgmp_bench::workloads::fib_program;
    use pgmp_bytecode::{compile_chunk, BlockCounters, Vm};
    use pgmp_profiler::{CounterImpl, ProfileMode};

    header("E7 (section 4.4): instrumentation overhead, dense vs hash vs sampling");
    let program = fib_program(16);

    let interp = |kind: Option<CounterImpl>| {
        let mut e = pgmp::Engine::new();
        if let Some(kind) = kind {
            e.set_counter_impl(kind);
            e.set_instrumentation(ProfileMode::EveryExpression);
        }
        timed(&mut e, &program)
    };
    let base = interp(None);
    let dense = interp(Some(CounterImpl::Dense));
    let hash = interp(Some(CounterImpl::Hash));
    let sampling = interp(Some(CounterImpl::Sampling));

    let vm = |kind: Option<CounterImpl>| {
        let mut e = pgmp::Engine::new();
        let core = e.expand_to_core(&program, "e7.scm").expect("expand");
        let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
        let mut vm = Vm::new();
        if let Some(kind) = kind {
            vm.set_block_profiling(BlockCounters::with_impl(kind));
        }
        for chunk in &chunks {
            vm.run_chunk(e.interp_mut(), chunk).expect("warmup");
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            for chunk in &chunks {
                vm.run_chunk(e.interp_mut(), chunk).expect("run");
            }
        }
        t0.elapsed() / 3
    };
    let vm_base = vm(None);
    let vm_dense = vm(Some(CounterImpl::Dense));
    let vm_hash = vm(Some(CounterImpl::Hash));
    let vm_sampling = vm(Some(CounterImpl::Sampling));

    let ratio = |t: Duration, b: Duration| t.as_secs_f64() / b.as_secs_f64();
    let added = |t: Duration, b: Duration| (ratio(t, b) - 1.0).max(1e-9);
    println!("  paper:    Chez's every-expression counting costs ~9% at run time;");
    println!("            the claim assumes counter bumps are cheap.");
    println!(
        "  interp:   every-expression dense {:.2}x, hash {:.2}x, sampling {:.2}x over uninstrumented",
        ratio(dense, base),
        ratio(hash, base),
        ratio(sampling, base)
    );
    println!(
        "  vm:       per-block dense {:.2}x, hash {:.2}x, sampling {:.2}x over uninstrumented",
        ratio(vm_dense, vm_base),
        ratio(vm_hash, vm_base),
        ratio(vm_sampling, vm_base)
    );
    println!(
        "  measured: dense slots cut the added overhead {:.1}x (interp), {:.1}x (vm) vs hash",
        added(hash, base) / added(dense, base),
        added(vm_hash, vm_base) / added(vm_dense, vm_base)
    );
    println!(
        "  measured: the sampling beacon cuts it another {:.1}x (interp), {:.1}x (vm) vs dense",
        added(dense, base) / added(sampling, base),
        added(vm_dense, vm_base) / added(vm_sampling, vm_base)
    );
}

fn e8() {
    header("E8 (section 4.3): three-pass source+block consistency");
    let report = run_three_pass(
        "(define-syntax (if-r stx)
           (syntax-case stx ()
             [(_ test t f)
              (if (< (profile-query #'t) (profile-query #'f))
                  #'(if (not test) f t)
                  #'(if test t f))]))
         (define (bucket n) (if-r (= (modulo n 100) 0) 'rare 'common))
         (let loop ([i 0] [c 0])
           (if (= i 4000) c (loop (add1 i) (if (eqv? (bucket i) 'common) (add1 c) c))))",
        "e8.scm",
    )
    .expect("three pass");
    println!("  paper:    pass-3 block-level code remains valid (stable CFGs)");
    println!("  measured: stable = {}", report.stable);
    println!(
        "  layout:   fall-through {:.3} -> {:.3}",
        report.baseline_metrics.fallthrough_ratio(),
        report.optimized_metrics.fallthrough_ratio()
    );
}

fn e11() {
    header("E11 (extension): profile-guided inlining");
    let program = "
      (define-inlinable (double x) (* 2 x))
      (define (drive n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (inline-call double i))))))
      (drive 2000)";
    let mut plain = engine_with(&[Lib::Inline]).unwrap();
    plain.run_str(program, "e11.scm").unwrap();
    let t_plain = timed(&mut plain, "(drive 8000)");
    let weights = train(&[Lib::Inline], program, "e11.scm");
    let mut inlined = optimized_engine(&[Lib::Inline], weights);
    inlined.run_str(program, "e11.scm").unwrap();
    let t_inline = timed(&mut inlined, "(drive 8000)");
    println!("  paper:    intro cites Arnold et al.: profile-guided inlining beats static");
    speedup_row("hot call site", t_plain, t_inline);
}

fn e9() {
    header("E9 (section 6): meta-program sizes");
    for (name, loc) in loc_counts() {
        println!("  {name}: {loc} lines");
    }
}

fn e13() {
    use pgmp::{IncrementalConfig, IncrementalEngine};
    use pgmp_bytecode::{canonical_form, compile_chunk};
    use pgmp_syntax::SourceObject;

    header("E13 (extension): incremental recompilation latency");
    // 200 top-level forms, 5% profile-dependent (if-r defines whose branch
    // order flips with the weights); the rest are plain defines.
    const N: usize = 200;
    const STRIDE: usize = 20;
    let mut src = String::from(
        "(define-syntax (if-r stx)
           (syntax-case stx ()
             [(_ test t-branch f-branch)
              (if (< (profile-query #'t-branch) (profile-query #'f-branch))
                  #'(if (not test) f-branch t-branch)
                  #'(if test t-branch f-branch))]))\n",
    );
    for i in 0..N {
        if i % STRIDE == 0 {
            src.push_str(&format!("(define (g{i} x) (if-r (< x 10) 'lo{i} 'hi{i}))\n"));
        } else {
            src.push_str(&format!("(define (f{i} x) (+ (* x {i}) 1))\n"));
        }
    }
    let file = "e13.scm";
    let points: Vec<(SourceObject, SourceObject)> = pgmp_reader::read_str(&src, file)
        .unwrap()
        .iter()
        .skip(1)
        .filter_map(|form| {
            let body = form.as_list()?.get(2)?.as_list()?;
            (body.len() == 4).then(|| (body[2].source.unwrap(), body[3].source.unwrap()))
        })
        .collect();
    let weights = |flip: bool| {
        let (hot, cold) = if flip { (0.1, 0.9) } else { (0.9, 0.1) };
        ProfileInformation::from_weights(
            points.iter().flat_map(|(t, f)| [(*t, hot), (*f, cold)]),
            1,
        )
    };
    let w = [weights(false), weights(true)];

    const ROUNDS: usize = 6;
    let mut incr = IncrementalEngine::new(&src, file, IncrementalConfig::default()).unwrap();
    incr.compile(&w[0]).unwrap();
    let t0 = Instant::now();
    let mut reexpanded = 0;
    for i in 0..ROUNDS {
        reexpanded = incr.compile(&w[(i + 1) % 2]).unwrap().stats.reexpanded;
    }
    let t_incr = t0.elapsed() / ROUNDS as u32;

    let t0 = Instant::now();
    for i in 0..ROUNDS {
        let mut engine = pgmp::Engine::new();
        engine.set_profile(w[i % 2].clone());
        let _expansion: Vec<String> = engine
            .expand_str(&src, file)
            .unwrap()
            .iter()
            .map(|s| s.to_datum().to_string())
            .collect();
        engine.reset_profile_points();
        let _cfgs: Vec<String> = engine
            .expand_to_core(&src, file)
            .unwrap()
            .iter()
            .map(|c| canonical_form(&compile_chunk(c)))
            .collect();
    }
    let t_full = t0.elapsed() / ROUNDS as u32;

    println!(
        "  claim:    re-optimization is O(changed forms): {} of {N} forms consult the profile",
        points.len()
    );
    println!("  measured: {reexpanded} form(s) re-expanded per weight flip");
    speedup_row("recompile after profile flip", t_full, t_incr);
}

fn e14() {
    use pgmp::{IncrementalConfig, IncrementalEngine};
    use pgmp_case_studies::{engine_with, Lib};
    use pgmp_syntax::SourceObject;

    header("E14 (extension): cold vs warm process start");
    // 100 profile-guided `case` classifiers (the §6.1 meta-program): cold
    // start pays clause rewriting + weight sorting, in interpreted Scheme,
    // once per form; warm start restores the persisted session instead.
    const N: usize = 100;
    let mut src = String::new();
    for i in 0..N {
        src.push_str(&format!(
            "(define (classify{i} x)\n  (case x\n    [(0 1 2) 'c0-{i}]\n    [(3 4 5) 'c1-{i}]\n    [(6 7 8) 'c2-{i}]\n    [(9 10 11) 'c3-{i}]\n    [(12 13 14) 'c4-{i}]\n    [(15 16 17) 'c5-{i}]\n    [(18 19 20) 'c6-{i}]\n    [(21 22 23) 'c7-{i}]\n    [else 'other{i}]))\n"
        ));
    }
    let file = "e14.scm";
    // Clause weights skewed inversely to source order: every expansion
    // performs a real reorder.
    let mut pts: Vec<(SourceObject, f64)> = Vec::new();
    for form in pgmp_reader::read_str(&src, file).unwrap().iter() {
        let case = form.as_list().unwrap()[2].as_list().unwrap();
        for (j, clause) in case.iter().skip(2).enumerate() {
            if let Some(body) = clause.as_list().unwrap().get(1).and_then(|b| b.source) {
                pts.push((body, 0.9 / (j as f64 + 1.0)));
            }
        }
    }
    let w = ProfileInformation::from_weights(pts, 1);
    let case_engine = || engine_with(&[Lib::Case]).unwrap();

    let dir = std::env::temp_dir().join(format!("pgmp-report-e14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let session = dir.join("e14.session");
    {
        let mut incr =
            IncrementalEngine::with_engine(case_engine(), &src, file, IncrementalConfig::default())
                .unwrap();
        incr.compile(&w).unwrap();
        incr.save_state(&session).unwrap();
    }

    const ROUNDS: usize = 6;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        let mut incr =
            IncrementalEngine::with_engine(case_engine(), &src, file, IncrementalConfig::default())
                .unwrap();
        incr.compile(&w).unwrap();
    }
    let t_cold = t0.elapsed() / ROUNDS as u32;

    let t0 = Instant::now();
    let mut reexpanded = usize::MAX;
    for _ in 0..ROUNDS {
        let mut incr =
            IncrementalEngine::with_engine(case_engine(), &src, file, IncrementalConfig::default())
                .unwrap();
        incr.load_state(&session).unwrap();
        let stored = incr.engine_mut().profile();
        reexpanded = incr.compile(&stored).unwrap().stats.reexpanded;
    }
    let t_warm = t0.elapsed() / ROUNDS as u32;
    std::fs::remove_dir_all(&dir).ok();

    println!("  claim:    restoring a persisted session skips all re-expansion ({N} forms)");
    println!("  measured: {reexpanded} form(s) re-expanded on the warm path");
    speedup_row("first optimized compile of a new process", t_cold, t_warm);
}

fn main() {
    println!("pgmp reproduction — full evaluation report");
    println!("(shape reproduction: who wins and by roughly what factor;");
    println!(" absolute numbers are interpreter-substrate specific)");
    e1();
    e2();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e11();
    e13();
    e14();
    println!("\nE3 (Figure 4 API) and E10 (proc macros) have dedicated harnesses:");
    println!("tests/e3_api.rs, tests/e10_proc_macros.rs, and the Criterion benches;");
    println!("e7_overhead_table prints the full section 4.4 table.");
}
