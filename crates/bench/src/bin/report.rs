//! The full evaluation report: regenerates every experiment (E1–E10) and
//! prints paper-vs-measured, one section per table/figure.
//!
//! ```sh
//! cargo run --release -p pgmp-bench --bin report
//! ```

use pgmp::workflow::run_three_pass;
use pgmp_bench::workloads::{
    figure8_input, if_r_program, optimized_engine, parser_library, sequence_program,
    shapes_library, train,
};
use pgmp_case_studies::{engine_with, loc_counts, two_pass, Lib};
use pgmp_profiler::{Dataset, ProfileInformation};
use pgmp_syntax::SourceObject;
use std::time::{Duration, Instant};

fn header(title: &str) {
    println!("\n==== {title} ====");
}

fn timed(engine: &mut pgmp::Engine, driver: &str) -> Duration {
    engine.run_str(driver, "warm.scm").expect("warmup");
    let t0 = Instant::now();
    for _ in 0..3 {
        engine.run_str(driver, "timed.scm").expect("run");
    }
    t0.elapsed() / 3
}

fn speedup_row(name: &str, baseline: Duration, optimized: Duration) {
    println!(
        "  {name}: baseline {baseline:.2?}, optimized {optimized:.2?}  -> {:.2}x",
        baseline.as_secs_f64() / optimized.as_secs_f64()
    );
}

fn e1() {
    header("E1 (Figures 1-2): if-r branch reordering");
    let result = two_pass(
        &[Lib::IfR],
        "(define (subject-contains email s) (string-contains? email s))
         (define (flag email tag) tag)
         (define (classify email)
           (if-r (subject-contains email \"PLDI\")
             (flag email 'important)
             (flag email 'spam)))
         (let loop ([i 0])
           (unless (= i 5) (classify \"PLDI mail\") (loop (add1 i))))
         (let loop ([i 0])
           (unless (= i 10) (classify \"spam mail\") (loop (add1 i))))",
        "classify.scm",
    )
    .expect("two pass");
    let swapped = result
        .expansion_text
        .contains("(if (not (subject-contains email \"PLDI\"))");
    println!("  paper:    5x important / 10x spam training swaps the branches (Fig. 2)");
    println!("  measured: branches swapped = {swapped}");

    let setup = if_r_program(200);
    let mut static_e = engine_with(&[Lib::IfR]).unwrap();
    static_e.run_str(&setup, "e1.scm").unwrap();
    let t_static = timed(&mut static_e, "(drive 4000)");
    let mut prof_e = optimized_engine(&[Lib::IfR], train(&[Lib::IfR], &setup, "e1.scm"));
    prof_e.run_str(&setup, "e1.scm").unwrap();
    let t_prof = timed(&mut prof_e, "(drive 4000)");
    speedup_row("99%-biased branch", t_static, t_prof);
    println!("  note:     the paper calls if-r \"not a meaningful optimization\" (section 2);");
    println!("            on a tree-walker the added (not ...) makes it a slight pessimization,");
    println!("            which is the faithful outcome at this level.");
}

fn e2() {
    header("E2 (Figure 3): weights and merging");
    let important = SourceObject::new("c.scm", 0, 1);
    let spam = SourceObject::new("c.scm", 2, 3);
    let d1: Dataset = [(important, 5), (spam, 10)].into_iter().collect();
    let d2: Dataset = [(important, 100), (spam, 10)].into_iter().collect();
    let merged = ProfileInformation::from_dataset(&d1)
        .merge(&ProfileInformation::from_dataset(&d2));
    println!("  paper:    important (0.5+1)/2 = 0.75 ; spam (1+0.1)/2 = 0.55");
    println!(
        "  measured: important {} ; spam {}",
        merged.weight(important),
        merged.weight(spam)
    );
}

fn e4() {
    header("E4 (Figures 5-8): profile-guided case");
    let input = figure8_input();
    let setup = format!("{}\n(run-parser \"{input}\" 1)", parser_library());
    let program = format!("{}\n(run-parser \"{input}\" 3)", parser_library());
    let result = two_pass(&[Lib::Case], &program, "parse.scm").expect("two pass");
    let parse_line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (parse"))
        .unwrap();
    let order_ok = {
        let p = |s: &str| parse_line.find(s).unwrap();
        p("white-space") < p("start-paren")
            && p("start-paren") < p("end-paren")
            && p("end-paren") < p("(digit stream)")
    };
    println!("  paper:    clauses reordered 55/23/23/10 -> ws, (, ), digits (Fig. 8)");
    println!("  measured: clause order matches Figure 8 = {order_ok}");

    let mut static_e = engine_with(&[Lib::Case]).unwrap();
    static_e.run_str(&setup, "e4.scm").unwrap();
    let t_static = timed(&mut static_e, &format!("(run-parser \"{input}\" 60)"));
    let mut prof_e = optimized_engine(&[Lib::Case], train(&[Lib::Case], &setup, "e4.scm"));
    prof_e.run_str(&setup, "e4.scm").unwrap();
    let t_prof = timed(&mut prof_e, &format!("(run-parser \"{input}\" 60)"));
    speedup_row("Figure 8 distribution", t_static, t_prof);
}

fn e5() {
    header("E5 (Figures 9-12): receiver class prediction");
    let setup = format!("{}\n(total-area 1)", shapes_library(100));
    let mut dynamic = engine_with(&[Lib::ObjectSystem]).unwrap();
    dynamic.run_str(&setup, "e5.scm").unwrap();
    let t_dyn = timed(&mut dynamic, "(total-area 15)");
    let weights = train(&[Lib::ObjectSystem], &setup, "e5.scm");
    let mut pic = optimized_engine(&[Lib::ObjectSystem], weights);
    pic.run_str(&setup, "e5.scm").unwrap();
    let t_pic = timed(&mut pic, "(total-area 15)");
    println!("  paper:    inline the hottest classes at each call site (PIC), sorted");
    speedup_row("70/20/10 class mix", t_dyn, t_pic);
}

fn e6() {
    header("E6 (Figures 13-14): data-structure specialization");
    for len in [50usize, 200, 800] {
        let setup = sequence_program(len, 50);
        let mut list_e = engine_with(&[Lib::Sequence]).unwrap();
        list_e.run_str(&setup, "e6.scm").unwrap();
        let t_list = timed(&mut list_e, "(churn 600)");
        let weights = train(&[Lib::Sequence], &setup, "e6.scm");
        let mut vec_e = optimized_engine(&[Lib::Sequence], weights);
        vec_e.run_str(&setup, "e6.scm").unwrap();
        let t_vec = timed(&mut vec_e, "(churn 600)");
        speedup_row(&format!("random access, len {len}"), t_list, t_vec);
    }
    println!("  paper:    asymptotic improvement -> speedup must grow with length");
}

fn e8() {
    header("E8 (section 4.3): three-pass source+block consistency");
    let report = run_three_pass(
        "(define-syntax (if-r stx)
           (syntax-case stx ()
             [(_ test t f)
              (if (< (profile-query #'t) (profile-query #'f))
                  #'(if (not test) f t)
                  #'(if test t f))]))
         (define (bucket n) (if-r (= (modulo n 100) 0) 'rare 'common))
         (let loop ([i 0] [c 0])
           (if (= i 4000) c (loop (add1 i) (if (eqv? (bucket i) 'common) (add1 c) c))))",
        "e8.scm",
    )
    .expect("three pass");
    println!("  paper:    pass-3 block-level code remains valid (stable CFGs)");
    println!("  measured: stable = {}", report.stable);
    println!(
        "  layout:   fall-through {:.3} -> {:.3}",
        report.baseline_metrics.fallthrough_ratio(),
        report.optimized_metrics.fallthrough_ratio()
    );
}

fn e11() {
    header("E11 (extension): profile-guided inlining");
    let program = "
      (define-inlinable (double x) (* 2 x))
      (define (drive n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (inline-call double i))))))
      (drive 2000)";
    let mut plain = engine_with(&[Lib::Inline]).unwrap();
    plain.run_str(program, "e11.scm").unwrap();
    let t_plain = timed(&mut plain, "(drive 8000)");
    let weights = train(&[Lib::Inline], program, "e11.scm");
    let mut inlined = optimized_engine(&[Lib::Inline], weights);
    inlined.run_str(program, "e11.scm").unwrap();
    let t_inline = timed(&mut inlined, "(drive 8000)");
    println!("  paper:    intro cites Arnold et al.: profile-guided inlining beats static");
    speedup_row("hot call site", t_plain, t_inline);
}

fn e9() {
    header("E9 (section 6): meta-program sizes");
    for (name, loc) in loc_counts() {
        println!("  {name}: {loc} lines");
    }
}

fn main() {
    println!("pgmp reproduction — full evaluation report");
    println!("(shape reproduction: who wins and by roughly what factor;");
    println!(" absolute numbers are interpreter-substrate specific)");
    e1();
    e2();
    e4();
    e5();
    e6();
    e8();
    e9();
    e11();
    println!("\nE3 (Figure 4 API), E7 (section 4.4 overhead) and E10 (proc macros)");
    println!("have dedicated harnesses: tests/e3_api.rs, e7_overhead_table,");
    println!("tests/e10_proc_macros.rs, and the Criterion benches.");
}
