//! Regenerates the §4.4 overhead claims (experiment E7).
//!
//! Paper: the Chez Scheme profiler adds about 9% run time; Racket's
//! errortrace costs a factor of 4–12, *excluding* the additional
//! thunk-wrapping the Racket `annotate-expr` performs.
//!
//! Our substrate is a tree-walking interpreter, so absolute factors
//! differ; the *ordering* must hold: off < every-expression ≪
//! calls-only-with-wrapping relative cost per annotated expression.
//!
//! ```sh
//! cargo run --release -p pgmp-bench --bin e7_overhead_table
//! ```

use pgmp::{AnnotateStrategy, Engine};
use pgmp_bench::workloads::fib_program;
use pgmp_bytecode::{compile_chunk, BlockCounters, Vm};
use pgmp_profiler::{CounterImpl, ProfileMode};
use std::time::{Duration, Instant};

fn time_runs(mut f: impl FnMut(), reps: u32) -> Duration {
    // One warmup, then the median-ish mean of `reps` runs.
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed() / reps
}

fn main() {
    let program = fib_program(18);
    let reps = 20;

    // Each configuration reuses one engine across the timed runs (like the
    // criterion bench) so per-hit cost is what's measured — not engine
    // setup, which for the sampling backend includes spawning the sampler
    // thread once per session.
    let base = {
        let mut e = Engine::new();
        time_runs(|| e.run_str(&program, "e7.scm").map(|_| ()).expect("run"), reps)
    };
    let every = {
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        time_runs(|| e.run_str(&program, "e7.scm").map(|_| ()).expect("run"), reps)
    };
    let every_hash = {
        let mut e = Engine::new();
        e.set_counter_impl(CounterImpl::Hash);
        e.set_instrumentation(ProfileMode::EveryExpression);
        time_runs(|| e.run_str(&program, "e7.scm").map(|_| ()).expect("run"), reps)
    };
    let every_sampling = {
        let mut e = Engine::new();
        e.set_counter_impl(CounterImpl::Sampling);
        e.set_instrumentation(ProfileMode::EveryExpression);
        time_runs(|| e.run_str(&program, "e7.scm").map(|_| ()).expect("run"), reps)
    };
    let calls = {
        let mut e = Engine::with_strategy(AnnotateStrategy::WrapLambda);
        e.set_instrumentation(ProfileMode::CallsOnly);
        time_runs(|| e.run_str(&program, "e7.scm").map(|_| ()).expect("run"), reps)
    };

    // Wrapping cost per annotated expression, profiling disabled.
    let annotated = "
      (define-syntax (annotated stx)
        (syntax-case stx ()
          [(_ e) (annotate-expr #'e (make-profile-point))]))
      (define (spin reps)
        (let loop ([i 0] [acc 0])
          (if (= i reps) acc (loop (add1 i) (annotated (+ acc 1))))))
      (spin 100000)";
    let direct = time_runs(
        || {
            let mut e = Engine::with_strategy(AnnotateStrategy::Direct);
            e.run_str(annotated, "a.scm").expect("run");
        },
        reps,
    );
    let wrapped = time_runs(
        || {
            let mut e = Engine::with_strategy(AnnotateStrategy::WrapLambda);
            e.run_str(annotated, "a.scm").expect("run");
        },
        reps,
    );

    // VM-mode block counting: the same program through the bytecode VM,
    // uninstrumented vs per-block counters on each backend.
    let vm_run = |counters: Option<BlockCounters>| {
        let mut e = Engine::new();
        let core = e.expand_to_core(&program, "e7.scm").expect("expand");
        let chunks: Vec<_> = core.iter().map(compile_chunk).collect();
        let mut vm = Vm::new();
        if let Some(c) = counters {
            vm.set_block_profiling(c);
        }
        // Warmup, then the mean of `reps` runs.
        for chunk in &chunks {
            vm.run_chunk(e.interp_mut(), chunk).expect("run");
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for chunk in &chunks {
                vm.run_chunk(e.interp_mut(), chunk).expect("run");
            }
        }
        t0.elapsed() / reps
    };
    let vm_base = vm_run(None);
    let vm_dense = vm_run(Some(BlockCounters::with_impl(CounterImpl::Dense)));
    let vm_hash = vm_run(Some(BlockCounters::with_impl(CounterImpl::Hash)));
    let vm_sampling = vm_run(Some(BlockCounters::with_impl(CounterImpl::Sampling)));

    println!("§4.4 profiling overhead (fib workload; interpreter substrate)");
    println!("======================================================================");
    println!("{:<44} {:>10} {:>10}", "configuration", "time", "factor");
    println!("----------------------------------------------------------------------");
    println!("{:<44} {:>10.2?} {:>9.2}x", "uninstrumented", base, 1.0);
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "Chez model: every-expression counters",
        every,
        every.as_secs_f64() / base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "  ... with legacy hash-keyed counters",
        every_hash,
        every_hash.as_secs_f64() / base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "  ... with sampling (beacon, 997 Hz)",
        every_sampling,
        every_sampling.as_secs_f64() / base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "Racket model: calls-only counters",
        calls,
        calls.as_secs_f64() / base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "annotate-expr Direct (profiling off)",
        direct,
        1.0
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "annotate-expr WrapLambda (profiling off)",
        wrapped,
        wrapped.as_secs_f64() / direct.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "VM: uninstrumented",
        vm_base,
        1.0
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "VM: per-block counters (dense slots)",
        vm_dense,
        vm_dense.as_secs_f64() / vm_base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "VM: per-block counters (hash-keyed)",
        vm_hash,
        vm_hash.as_secs_f64() / vm_base.as_secs_f64()
    );
    println!(
        "{:<44} {:>10.2?} {:>9.2}x",
        "VM: per-block beacon (sampling, 997 Hz)",
        vm_sampling,
        vm_sampling.as_secs_f64() / vm_base.as_secs_f64()
    );
    println!("----------------------------------------------------------------------");
    let added = |t: Duration, b: Duration| (t.as_secs_f64() / b.as_secs_f64() - 1.0).max(1e-9);
    println!(
        "dense vs hash: interp overhead cut {:.1}x, VM overhead cut {:.1}x",
        added(every_hash, base) / added(every, base),
        added(vm_hash, vm_base) / added(vm_dense, vm_base)
    );
    let pct = |t: Duration, b: Duration| (t.as_secs_f64() / b.as_secs_f64() - 1.0) * 100.0;
    println!(
        "sampling vs dense: added interp overhead {:+.1}% vs {:+.1}%, VM {:+.1}% vs {:+.1}%",
        pct(every_sampling, base),
        pct(every, base),
        pct(vm_sampling, vm_base),
        pct(vm_dense, vm_base)
    );
    println!("----------------------------------------------------------------------");
    println!("paper:   Chez ≈1.09x; errortrace 4–12x plus wrapping overhead.");
    println!("ours:    absolute factors differ (interpreter vs native compiler),");
    println!("         but the shape holds: counting costs something, and the");
    println!("         wrap-lambda strategy adds per-expression call overhead on");
    println!("         top of it (last row).");
}
