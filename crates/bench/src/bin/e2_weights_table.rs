//! Regenerates Figure 3 (§3.2): profile weight computation and merging.
//!
//! ```sh
//! cargo run -p pgmp-bench --bin e2_weights_table
//! ```

use pgmp_profiler::{Dataset, ProfileInformation};
use pgmp_syntax::SourceObject;

fn main() {
    let important = SourceObject::new("classify.scm", 100, 120);
    let spam = SourceObject::new("classify.scm", 130, 150);

    let d1: Dataset = [(important, 5), (spam, 10)].into_iter().collect();
    let d2: Dataset = [(important, 100), (spam, 10)].into_iter().collect();
    let w1 = ProfileInformation::from_dataset(&d1);
    let w2 = ProfileInformation::from_dataset(&d2);
    let merged = w1.merge(&w2);

    println!("Figure 3 — example profile weight computations");
    println!("=================================================================");
    println!("{:<28} {:>12} {:>12}", "", "paper", "measured");
    println!("-----------------------------------------------------------------");
    // The fractions deliberately mirror the paper's count/max-count
    // notation, even when they reduce to 1.
    #[allow(clippy::eq_op)]
    let rows = [
        ("(flag email 'important), ds1", 5.0 / 10.0, w1.weight(important)),
        ("(flag email 'spam), ds1", 10.0 / 10.0, w1.weight(spam)),
        ("(flag email 'important), ds2", 100.0 / 100.0, w2.weight(important)),
        ("(flag email 'spam), ds2", 10.0 / 100.0, w2.weight(spam)),
        ("important, merged", (0.5 + 1.0) / 2.0, merged.weight(important)),
        ("spam, merged", (1.0 + 0.1) / 2.0, merged.weight(spam)),
    ];
    let mut all_match = true;
    for (label, paper, measured) in rows {
        let ok = (paper - measured).abs() < 1e-12;
        all_match &= ok;
        println!(
            "{label:<28} {paper:>12.4} {measured:>12.4} {}",
            if ok { "" } else { "  MISMATCH" }
        );
    }
    println!("-----------------------------------------------------------------");
    println!(
        "result: {}",
        if all_match { "all weights match the paper exactly" } else { "MISMATCH" }
    );
}
