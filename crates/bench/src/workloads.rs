//! Shared workload builders for the experiment benchmarks.
//!
//! Each function returns program text (and training inputs) matching the
//! workloads of the paper's case studies, parameterized so benches can
//! sweep sizes.

use pgmp::Engine;
use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::{ProfileInformation, ProfileMode};

/// The §2 classifier driven `iterations` times over a 99%-'big input mix.
pub fn if_r_program(iterations: usize) -> String {
    format!(
        "(define (classify n) (if-r (< n 10) 'small 'big))
         (define (drive reps)
           (let loop ([i 0] [bigs 0])
             (if (= i reps)
                 bigs
                 (loop (add1 i) (if (eqv? (classify (modulo i 1000)) 'big) (add1 bigs) bigs)))))
         (drive {iterations})"
    )
}

/// The Figure 5 parser library (clauses deliberately mis-ordered for the
/// training distribution).
pub fn parser_library() -> &'static str {
    r#"
      (define (make-stream chars)
        (let ([s (make-eq-hashtable)])
          (hashtable-set! s 'data chars)
          (hashtable-set! s 'pos 0)
          s))
      (define (stream-done? s)
        (>= (hashtable-ref s 'pos 0) (vector-length (hashtable-ref s 'data #f))))
      (define (peek-char-s s)
        (vector-ref (hashtable-ref s 'data #f) (hashtable-ref s 'pos 0)))
      (define (advance! s)
        (hashtable-set! s 'pos (add1 (hashtable-ref s 'pos 0))))
      (define (white-space s) (advance! s) 'white-space)
      (define (digit s) (advance! s) 'digit)
      (define (start-paren s) (advance! s) 'open)
      (define (end-paren s) (advance! s) 'close)
      (define (other s) (advance! s) 'other)
      (define (parse stream)
        (case (peek-char-s stream)
          [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) (digit stream)]
          [(#\() (start-paren stream)]
          [(#\)) (end-paren stream)]
          [(#\space #\tab) (white-space stream)]
          [else (other stream)]))
      (define (run-parser text reps)
        (let outer ([r 0] [n 0])
          (if (= r reps)
              n
              (let ([s (make-stream (list->vector (string->list text)))])
                (let loop ([count 0])
                  (if (stream-done? s)
                      (outer (add1 r) (+ n count))
                      (begin (parse s) (loop (add1 count)))))))))
    "#
}

/// Figure 8's character distribution (55 ws / 23+23 parens / 10 digits).
pub fn figure8_input() -> String {
    let mut s = String::new();
    s.push_str(&" ".repeat(55));
    s.push_str(&"(".repeat(23));
    s.push_str(&")".repeat(23));
    s.push_str("0123456789");
    s
}

/// The §6.2 shapes program, `n` shapes with a 7/2/1 class mix.
pub fn shapes_library(n: usize) -> String {
    format!(
        r#"
        (class Square ((length 0))
          (define-method (area this) (sqr (field this length))))
        (class Circle ((radius 0))
          (define-method (area this) (* 3 (sqr (field this radius)))))
        (class Triangle ((base 0) (height 0))
          (define-method (area this) (* (field this base) (field this height))))
        (define (make-shapes n)
          (let loop ([i 0] [acc '()])
            (if (= i n)
                acc
                (loop (add1 i)
                      (cons (cond
                              [(< (modulo i 10) 7) (new Circle (add1 (modulo i 5)))]
                              [(< (modulo i 10) 9) (new Square (add1 (modulo i 4)))]
                              [else (new Triangle 2 (add1 (modulo i 3)))])
                            acc)))))
        (define shapes (make-shapes {n}))
        (define (total-area reps)
          (let loop ([r 0] [total 0])
            (if (= r reps)
                total
                (loop (add1 r)
                      (fold-left (lambda (acc s) (+ acc (method s area))) total shapes)))))
        "#
    )
}

/// The §6.3 sequence workload: `len` elements, random access dominated.
pub fn sequence_program(len: usize, accesses: usize) -> String {
    let elems: Vec<String> = (0..len).map(|i| i.to_string()).collect();
    format!(
        "(define s (profiled-sequence {}))
         (define (churn reps)
           (let loop ([i 0] [acc 0])
             (if (= i reps)
                 acc
                 (loop (add1 i) (+ acc (seq-ref s (modulo (* i 7) {len})))))))
         (churn {accesses})",
        elems.join(" ")
    )
}

/// Trains `program` (with `libs`) under every-expression instrumentation
/// and returns the weights.
pub fn train(libs: &[Lib], program: &str, file: &str) -> ProfileInformation {
    let mut e = engine_with(libs).expect("libs load");
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str(program, file).expect("training run");
    e.current_weights()
}

/// An engine with `libs` loaded and `weights` installed (pass-2 state).
pub fn optimized_engine(libs: &[Lib], weights: ProfileInformation) -> Engine {
    let mut e = engine_with(libs).expect("libs load");
    e.set_profile(weights);
    e
}

/// A CPU-bound pure program for overhead measurement (§4.4).
pub fn fib_program(n: u32) -> String {
    format!(
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
         (fib {n})"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_programs_run() {
        let mut e = engine_with(&[Lib::IfR]).unwrap();
        // i in 0..100: 10 of them are < 10, so 90 are 'big.
        assert_eq!(e.run_str(&if_r_program(100), "w.scm").unwrap().to_string(), "90");
        let mut e = engine_with(&[Lib::Case]).unwrap();
        let program = format!("{}\n(run-parser \"{}\" 1)", parser_library(), figure8_input());
        assert_eq!(e.run_str(&program, "w.scm").unwrap().to_string(), "111");
        let mut e = engine_with(&[Lib::ObjectSystem]).unwrap();
        let program = format!("{}\n(total-area 1)", shapes_library(20));
        let v: i64 = e.run_str(&program, "w.scm").unwrap().to_string().parse().unwrap();
        assert!(v > 0);
        let mut e = engine_with(&[Lib::Sequence]).unwrap();
        let v = e.run_str(&sequence_program(10, 20), "w.scm").unwrap();
        assert!(v.to_string().parse::<i64>().unwrap() > 0);
    }

    #[test]
    fn training_produces_weights() {
        let w = train(&[Lib::IfR], &if_r_program(50), "t.scm");
        assert!(!w.is_empty());
        let e = optimized_engine(&[Lib::IfR], w);
        assert!(!e.profile().is_empty());
    }
}
