//! Benchmark support for the pgmp reproduction; see `benches/` for the
//! Criterion benchmarks and `src/bin/` for the table-printing harnesses.

pub mod workloads;
