//! The paper's API (Figure 4), installed as meta-interpreter procedures.
//!
//! Meta-programs call these like any other procedure:
//!
//! | Scheme procedure                 | Paper entry                        |
//! |----------------------------------|------------------------------------|
//! | `(make-profile-point [base])`    | `make-profile-point`               |
//! | `(annotate-expr e pp)`           | `annotate-expr`                    |
//! | `(profile-query e)`              | `profile-query` (syntax or point)  |
//! | `(store-profile f)`              | `store-profile`                    |
//! | `(load-profile f)`               | `load-profile` (replaces)          |
//! | `(merge-profile f)`              | dataset merging per §3.2           |
//! | `(current-profile-information)`  | `(current-profile-information)`    |
//! | `(profile-data-available?)`      | the Fig. 9 `no-profile-data?` test |
//! | `(profile-count e)`              | raw counter (diagnostics/tests)    |

use crate::engine::AnnotateStrategy;
use pgmp_eval::{EvalError, EvalErrorKind, Interp, Value};
use pgmp_profiler::{Counters, ProfileInformation};
use pgmp_syntax::{SourceFactory, SourceObject, Syntax, SyntaxBody};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared profile state for one compilation session.
///
/// Both the engine (Rust side) and the installed API procedures (meta
/// side) read and write this through an `Rc<RefCell<…>>` handle.
#[derive(Debug, Default)]
pub struct PgmpState {
    /// The loaded profile weights meta-programs query.
    pub profile: ProfileInformation,
    /// Deterministic generator backing `make-profile-point`.
    pub factory: SourceFactory,
    /// Live counters of the current instrumented run.
    pub counters: Counters,
    /// How `annotate-expr` attaches profile points.
    pub strategy: AnnotateStrategy,
}

impl PgmpState {
    /// Creates empty state with the given annotation strategy.
    pub fn new(strategy: AnnotateStrategy) -> PgmpState {
        PgmpState {
            strategy,
            ..PgmpState::default()
        }
    }
}

fn want_syntax_or_point(v: &Value) -> Result<Option<SourceObject>, EvalError> {
    match v {
        Value::Syntax(s) => Ok(s.first_source()),
        Value::Source(p) => Ok(Some(*p)),
        other => Err(EvalError::type_error("syntax or profile point", other)),
    }
}

fn want_string(v: &Value) -> Result<String, EvalError> {
    match v {
        Value::Str(s) => Ok(s.borrow().clone()),
        other => Err(EvalError::type_error("string", other)),
    }
}

/// Wraps `e` as `((lambda () e))` with the call annotated by `pp` — the
/// Racket `errortrace` strategy of §4.2: only function calls are profiled,
/// so the expression is wrapped in a generated function whose *call* the
/// profiler counts.
fn wrap_lambda(e: &Syntax, pp: SourceObject) -> Syntax {
    let lambda = Syntax::list(
        vec![
            Rc::new(Syntax::ident("lambda", e.source)),
            Rc::new(Syntax::new(SyntaxBody::List(vec![]), e.source)),
            Rc::new(e.clone()),
        ],
        e.source,
    );
    Syntax::list(vec![Rc::new(lambda)], Some(pp))
}

/// Installs the PGMP API into `interp`, backed by `state`.
///
/// The engine installs this into the expander's meta interpreter (so
/// transformers can query profiles at compile time) and into the runtime
/// interpreter (so example programs can drive `store-profile` themselves).
pub fn install_pgmp_api(interp: &mut Interp, state: Rc<RefCell<PgmpState>>) {
    let st = state.clone();
    interp.define_native("make-profile-point", 0, Some(1), move |_, args| {
        let base = match args.first() {
            None => None,
            Some(v) => want_syntax_or_point(v)?,
        };
        let point = st.borrow_mut().factory.make_profile_point(base);
        Ok(Value::Source(point))
    });

    let st = state.clone();
    interp.define_native("annotate-expr", 2, Some(2), move |_, args| {
        let Value::Syntax(e) = &args[0] else {
            return Err(EvalError::type_error("syntax", &args[0]));
        };
        let Value::Source(pp) = &args[1] else {
            return Err(EvalError::type_error("profile point", &args[1]));
        };
        let annotated = match st.borrow().strategy {
            AnnotateStrategy::Direct => e.with_source(*pp),
            AnnotateStrategy::WrapLambda => wrap_lambda(e, *pp),
        };
        Ok(Value::Syntax(Rc::new(annotated)))
    });

    let st = state.clone();
    interp.define_native("profile-query", 1, Some(1), move |_, args| {
        let weight = match want_syntax_or_point(&args[0])? {
            Some(p) => st.borrow().profile.weight(p),
            None => 0.0,
        };
        Ok(Value::Float(weight))
    });

    let st = state.clone();
    interp.define_native("profile-count", 1, Some(1), move |_, args| {
        let count = match want_syntax_or_point(&args[0])? {
            Some(p) => st.borrow().counters.count(p),
            None => 0,
        };
        Ok(Value::Int(count as i64))
    });

    let st = state.clone();
    interp.define_native("profile-data-available?", 0, Some(0), move |_, _| {
        Ok(Value::Bool(!st.borrow().profile.is_empty()))
    });

    let st = state.clone();
    interp.define_native("current-profile-information", 0, Some(0), move |_, _| {
        let st = st.borrow();
        let mut entries: Vec<(SourceObject, f64)> = st.profile.iter().collect();
        entries.sort_by_key(|a| a.0);
        Ok(Value::list(
            entries
                .into_iter()
                .map(|(p, w)| Value::cons(Value::Source(p), Value::Float(w)))
                .collect(),
        ))
    });

    let st = state.clone();
    interp.define_native("store-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let st = st.borrow();
        let weights = ProfileInformation::from_dataset(&st.counters.snapshot());
        weights.store_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("store-profile: {e}"))
        })?;
        Ok(Value::Unspecified)
    });

    let st = state.clone();
    interp.define_native("load-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let info = ProfileInformation::load_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("load-profile: {e}"))
        })?;
        st.borrow_mut().profile = info;
        Ok(Value::Unspecified)
    });

    let st = state.clone();
    interp.define_native("merge-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let info = ProfileInformation::load_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("merge-profile: {e}"))
        })?;
        let mut st = st.borrow_mut();
        st.profile = st.profile.merge(&info);
        Ok(Value::Unspecified)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_eval::install_primitives;
    use pgmp_syntax::Symbol;

    fn setup() -> (Interp, Rc<RefCell<PgmpState>>) {
        let mut interp = Interp::new();
        install_primitives(&mut interp);
        let state = Rc::new(RefCell::new(PgmpState::new(AnnotateStrategy::Direct)));
        install_pgmp_api(&mut interp, state.clone());
        (interp, state)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    fn stx(src: &str) -> Rc<Syntax> {
        pgmp_reader::read_str(src, "api.scm").unwrap().remove(0)
    }

    #[test]
    fn make_profile_point_is_deterministic_per_session() {
        let (mut i, _) = setup();
        let p1 = call(&mut i, "make-profile-point", vec![]).unwrap();
        let p2 = call(&mut i, "make-profile-point", vec![]).unwrap();
        assert!(!p1.eqv(&p2), "fresh points are distinct");
        let (mut j, _) = setup();
        let q1 = call(&mut j, "make-profile-point", vec![]).unwrap();
        assert!(p1.eqv(&q1), "same generation order, same point across sessions");
    }

    #[test]
    fn make_profile_point_from_base_preserves_location() {
        let (mut i, _) = setup();
        let base = Value::Syntax(stx("(f x)"));
        let p = call(&mut i, "make-profile-point", vec![base]).unwrap();
        let Value::Source(p) = p else { panic!("expected source") };
        assert!(p.file.as_str().starts_with("api.scm%pgmp"));
        assert!(p.is_generated());
    }

    #[test]
    fn annotate_direct_replaces_source() {
        let (mut i, _) = setup();
        let p = call(&mut i, "make-profile-point", vec![]).unwrap();
        let Value::Source(pp) = p else { panic!() };
        let e = Value::Syntax(stx("(+ 1 2)"));
        let out = call(&mut i, "annotate-expr", vec![e, Value::Source(pp)]).unwrap();
        let Value::Syntax(s) = out else { panic!() };
        assert_eq!(s.source, Some(pp));
        assert_eq!(s.to_datum().to_string(), "(+ 1 2)");
    }

    #[test]
    fn annotate_wrap_lambda_generates_thunk_call() {
        let (mut i, state) = setup();
        state.borrow_mut().strategy = AnnotateStrategy::WrapLambda;
        let p = call(&mut i, "make-profile-point", vec![]).unwrap();
        let Value::Source(pp) = p else { panic!() };
        let e = Value::Syntax(stx("(+ 1 2)"));
        let out = call(&mut i, "annotate-expr", vec![e, Value::Source(pp)]).unwrap();
        let Value::Syntax(s) = out else { panic!() };
        assert_eq!(s.to_datum().to_string(), "((lambda () (+ 1 2)))");
        assert_eq!(s.source, Some(pp), "the *call* carries the point");
    }

    #[test]
    fn profile_query_returns_loaded_weight() {
        let (mut i, state) = setup();
        let e = stx("(hot)");
        let p = e.source.unwrap();
        state.borrow_mut().profile =
            ProfileInformation::from_weights([(p, 0.75)], 1);
        let w = call(&mut i, "profile-query", vec![Value::Syntax(e)]).unwrap();
        assert!(matches!(w, Value::Float(x) if x == 0.75));
        // Unknown points weigh zero.
        let w = call(&mut i, "profile-query", vec![Value::Syntax(stx("(cold)"))]).unwrap();
        // (cold) and (hot) share a file but the reader gives (cold) the
        // same span 0..5 — use a distinct span via a longer expression.
        let _ = w;
        let other = pgmp_reader::read_str("  (colder)", "api.scm").unwrap().remove(0);
        let w = call(&mut i, "profile-query", vec![Value::Syntax(other)]).unwrap();
        assert!(matches!(w, Value::Float(x) if x == 0.0));
    }

    #[test]
    fn profile_data_available_tracks_state() {
        let (mut i, state) = setup();
        let v = call(&mut i, "profile-data-available?", vec![]).unwrap();
        assert_eq!(v.to_string(), "#f");
        state.borrow_mut().profile = ProfileInformation::from_weights([], 1);
        let v = call(&mut i, "profile-data-available?", vec![]).unwrap();
        assert_eq!(v.to_string(), "#t");
    }

    #[test]
    fn store_then_load_round_trips_weights() {
        let dir = std::env::temp_dir().join("pgmp-api-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.pgmp");
        let (mut i, state) = setup();
        let p = SourceObject::new("x.scm", 1, 2);
        state.borrow().counters.add(p, 10);
        state.borrow().counters.add(SourceObject::new("x.scm", 3, 4), 5);
        call(&mut i, "store-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        call(&mut i, "load-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        assert_eq!(state.borrow().profile.weight(p), 1.0);
        assert_eq!(
            state.borrow().profile.weight(SourceObject::new("x.scm", 3, 4)),
            0.5
        );
    }

    #[test]
    fn merge_profile_averages_datasets() {
        let dir = std::env::temp_dir().join("pgmp-api-test-merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.pgmp");
        let p = SourceObject::new("m.scm", 0, 1);
        ProfileInformation::from_weights([(p, 1.0)], 1)
            .store_file(&path)
            .unwrap();
        let (mut i, state) = setup();
        state.borrow_mut().profile = ProfileInformation::from_weights([(p, 0.0)], 1);
        call(&mut i, "merge-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        assert_eq!(state.borrow().profile.weight(p), 0.5);
    }

    #[test]
    fn current_profile_information_lists_points() {
        let (mut i, state) = setup();
        let p = SourceObject::new("l.scm", 0, 1);
        state.borrow_mut().profile = ProfileInformation::from_weights([(p, 0.25)], 1);
        let v = call(&mut i, "current-profile-information", vec![]).unwrap();
        let entries = v.list_elems().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn load_profile_missing_file_errors() {
        let (mut i, _) = setup();
        assert!(call(
            &mut i,
            "load-profile",
            vec![Value::string("/nonexistent/profile.pgmp")]
        )
        .is_err());
    }
}
