//! The paper's API (Figure 4), installed as meta-interpreter procedures.
//!
//! Meta-programs call these like any other procedure:
//!
//! | Scheme procedure                 | Paper entry                        |
//! |----------------------------------|------------------------------------|
//! | `(make-profile-point [base])`    | `make-profile-point`               |
//! | `(annotate-expr e pp)`           | `annotate-expr`                    |
//! | `(profile-query e)`              | `profile-query` (syntax or point)  |
//! | `(store-profile f)`              | `store-profile`                    |
//! | `(load-profile f)`               | `load-profile` (replaces)          |
//! | `(merge-profile f)`              | dataset merging per §3.2           |
//! | `(current-profile-information)`  | `(current-profile-information)`    |
//! | `(profile-data-available?)`      | the Fig. 9 `no-profile-data?` test |
//! | `(profile-count e)`              | raw counter (diagnostics/tests)    |

use crate::engine::AnnotateStrategy;
use pgmp_eval::{EvalError, EvalErrorKind, Interp, Value};
use pgmp_observe as observe;
use pgmp_profiler::{Counters, ProfileInformation};
use pgmp_syntax::{SourceFactory, SourceObject, Syntax, SyntaxBody};
use std::cell::RefCell;
use std::rc::Rc;

/// The profile reads one top-level form performed during expansion: its
/// *read-set*, the key the incremental recompilation cache validates
/// against new weights.
///
/// A cached expansion can be reused when every recorded read would produce
/// the same answer under the new profile (within epsilon for weights,
/// exactly for availability), no [`ProfileReadLog::volatile_reads`] occurred,
/// and — when [`ProfileReadLog::whole_profile`] is set — the full profile is
/// unchanged.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ProfileReadLog {
    /// Each `profile-query` call: the point consulted and the weight
    /// returned. (Points without a source resolve to weight 0.0 and are
    /// not recorded — they can never change.)
    pub points: Vec<(SourceObject, f64)>,
    /// The answer `profile-data-available?` returned, if called.
    pub availability: Option<bool>,
    /// `current-profile-information` was called: the form depends on the
    /// entire profile, so any weight change invalidates it.
    pub whole_profile: bool,
    /// A read that cannot be validated against a future profile occurred
    /// (`profile-count` on live counters, or `load`/`merge`/`store-profile`
    /// during expansion). Forms with volatile reads are never reused.
    pub volatile_reads: bool,
}

impl ProfileReadLog {
    /// True iff expansion consulted no profile state at all — the form is
    /// profile-independent and reusable under any weights.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
            && self.availability.is_none()
            && !self.whole_profile
            && !self.volatile_reads
    }
}

/// Shared profile state for one compilation session.
///
/// Both the engine (Rust side) and the installed API procedures (meta
/// side) read and write this through an `Rc<RefCell<…>>` handle.
#[derive(Debug, Default)]
pub struct PgmpState {
    /// The loaded profile weights meta-programs query.
    pub profile: ProfileInformation,
    /// Deterministic generator backing `make-profile-point`.
    pub factory: SourceFactory,
    /// Live counters of the current instrumented run.
    pub counters: Counters,
    /// How `annotate-expr` attaches profile points.
    pub strategy: AnnotateStrategy,
    /// When present, API entry points append their profile reads here.
    /// The incremental engine installs a fresh log around each form's
    /// expansion to capture that form's read-set.
    pub read_log: Option<ProfileReadLog>,
}

impl PgmpState {
    /// Creates empty state with the given annotation strategy.
    pub fn new(strategy: AnnotateStrategy) -> PgmpState {
        PgmpState {
            strategy,
            ..PgmpState::default()
        }
    }
}

fn want_syntax_or_point(v: &Value) -> Result<Option<SourceObject>, EvalError> {
    match v {
        Value::Syntax(s) => Ok(s.first_source()),
        Value::Source(p) => Ok(Some(*p)),
        other => Err(EvalError::type_error("syntax or profile point", other)),
    }
}

fn want_string(v: &Value) -> Result<String, EvalError> {
    match v {
        Value::Str(s) => Ok(s.borrow().clone()),
        other => Err(EvalError::type_error("string", other)),
    }
}

/// Renders a decision label/point the way a human reads the source: strings
/// and symbols bare, syntax as its datum, profile points as `file:bfp-efp`.
fn decision_label(v: &Value) -> String {
    match v {
        Value::Str(s) => s.borrow().clone(),
        Value::Sym(s) => s.to_string(),
        Value::Syntax(s) => s.to_datum().to_string(),
        Value::Source(p) => p.to_string(),
        other => other.to_string(),
    }
}

/// Wraps `e` as `((lambda () e))` with the call annotated by `pp` — the
/// Racket `errortrace` strategy of §4.2: only function calls are profiled,
/// so the expression is wrapped in a generated function whose *call* the
/// profiler counts.
fn wrap_lambda(e: &Syntax, pp: SourceObject) -> Syntax {
    let lambda = Syntax::list(
        vec![
            Rc::new(Syntax::ident("lambda", e.source)),
            Rc::new(Syntax::new(SyntaxBody::List(vec![]), e.source)),
            Rc::new(e.clone()),
        ],
        e.source,
    );
    Syntax::list(vec![Rc::new(lambda)], Some(pp))
}

/// Installs the PGMP API into `interp`, backed by `state`.
///
/// The engine installs this into the expander's meta interpreter (so
/// transformers can query profiles at compile time) and into the runtime
/// interpreter (so example programs can drive `store-profile` themselves).
pub fn install_pgmp_api(interp: &mut Interp, state: Rc<RefCell<PgmpState>>) {
    let st = state.clone();
    interp.define_native("make-profile-point", 0, Some(1), move |_, args| {
        let base = match args.first() {
            None => None,
            Some(v) => want_syntax_or_point(v)?,
        };
        let point = st.borrow_mut().factory.make_profile_point(base);
        Ok(Value::Source(point))
    });

    let st = state.clone();
    interp.define_native("annotate-expr", 2, Some(2), move |_, args| {
        let Value::Syntax(e) = &args[0] else {
            return Err(EvalError::type_error("syntax", &args[0]));
        };
        let Value::Source(pp) = &args[1] else {
            return Err(EvalError::type_error("profile point", &args[1]));
        };
        let annotated = match st.borrow().strategy {
            AnnotateStrategy::Direct => e.with_source(*pp),
            AnnotateStrategy::WrapLambda => wrap_lambda(e, *pp),
        };
        Ok(Value::Syntax(Rc::new(annotated)))
    });

    let st = state.clone();
    interp.define_native("profile-query", 1, Some(1), move |_, args| {
        let weight = match want_syntax_or_point(&args[0])? {
            Some(p) => {
                let mut st = st.borrow_mut();
                let w = st.profile.weight(p);
                if let Some(log) = st.read_log.as_mut() {
                    log.points.push((p, w));
                }
                if observe::enabled() {
                    observe::emit(observe::EventKind::ProfileQuery {
                        point: p.to_string(),
                        weight: st.profile.lookup(p),
                        available: !st.profile.is_empty(),
                    });
                }
                w
            }
            None => 0.0,
        };
        Ok(Value::Float(weight))
    });

    let st = state.clone();
    interp.define_native("profile-count", 1, Some(1), move |_, args| {
        let count = match want_syntax_or_point(&args[0])? {
            Some(p) => {
                let mut st = st.borrow_mut();
                // Live counters mutate under the expander's feet; a form
                // reading them can never be validated for reuse.
                if let Some(log) = st.read_log.as_mut() {
                    log.volatile_reads = true;
                }
                let n = st.counters.count(p);
                if observe::enabled() {
                    observe::emit(observe::EventKind::ProfileCount {
                        point: p.to_string(),
                        count: Some(n as f64),
                    });
                }
                n
            }
            None => 0,
        };
        Ok(Value::Int(count as i64))
    });

    let st = state.clone();
    interp.define_native("profile-data-available?", 0, Some(0), move |_, _| {
        let mut st = st.borrow_mut();
        let available = !st.profile.is_empty();
        if let Some(log) = st.read_log.as_mut() {
            log.availability = Some(available);
        }
        if observe::enabled() {
            observe::emit(observe::EventKind::AvailabilityCheck { available });
        }
        Ok(Value::Bool(available))
    });

    let st = state.clone();
    interp.define_native("current-profile-information", 0, Some(0), move |_, _| {
        let mut st = st.borrow_mut();
        if let Some(log) = st.read_log.as_mut() {
            log.whole_profile = true;
        }
        let st = &*st;
        let mut entries: Vec<(SourceObject, f64)> = st.profile.iter().collect();
        entries.sort_by_key(|a| a.0);
        Ok(Value::list(
            entries
                .into_iter()
                .map(|(p, w)| Value::cons(Value::Source(p), Value::Float(w)))
                .collect(),
        ))
    });

    let st = state.clone();
    interp.define_native("store-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let mut st = st.borrow_mut();
        if let Some(log) = st.read_log.as_mut() {
            log.volatile_reads = true;
        }
        let st = &*st;
        let weights = ProfileInformation::from_dataset(&st.counters.snapshot());
        weights.store_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("store-profile: {e}"))
        })?;
        Ok(Value::Unspecified)
    });

    let st = state.clone();
    interp.define_native("load-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let info = ProfileInformation::load_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("load-profile: {e}"))
        })?;
        let mut st = st.borrow_mut();
        if let Some(log) = st.read_log.as_mut() {
            log.volatile_reads = true;
        }
        st.profile = info;
        Ok(Value::Unspecified)
    });

    interp.define_native(
        "record-optimization-decision",
        4,
        Some(4),
        move |_, args| {
            // Provenance only: with no active recording this is a no-op, so
            // macros can call it unconditionally.
            if !observe::enabled() {
                return Ok(Value::Unspecified);
            }
            let site = want_string(&args[0])?;
            let decision_point = match &args[1] {
                Value::Syntax(s) => match s.first_source() {
                    Some(p) => p.to_string(),
                    None => decision_label(&args[1]),
                },
                other => decision_label(other),
            };
            let alt_vals = args[2]
                .list_elems()
                .ok_or_else(|| EvalError::type_error("list of (label . weight)", &args[2]))?;
            let mut alternatives = Vec::with_capacity(alt_vals.len());
            for v in &alt_vals {
                let Value::Pair(p) = v else {
                    return Err(EvalError::type_error("(label . weight) pair", v));
                };
                let label = decision_label(&p.car.borrow());
                let weight = match &*p.cdr.borrow() {
                    Value::Bool(false) => None,
                    Value::Float(x) => Some(*x),
                    Value::Int(n) => Some(*n as f64),
                    other => return Err(EvalError::type_error("weight or #f", other)),
                };
                alternatives.push(observe::DecisionAlt { label, weight });
            }
            let chosen: Vec<String> = args[3]
                .list_elems()
                .ok_or_else(|| EvalError::type_error("list of labels", &args[3]))?
                .iter()
                .map(decision_label)
                .collect();
            // Source-order rank of the winner: > 0 iff the profile moved
            // some later-written alternative to the front.
            let rank = chosen
                .first()
                .and_then(|c| alternatives.iter().position(|a| &a.label == c))
                .unwrap_or(0) as u32;
            observe::emit(observe::EventKind::Decision {
                site,
                decision_point,
                alternatives,
                chosen,
                rank,
            });
            Ok(Value::Unspecified)
        },
    );

    let st = state.clone();
    interp.define_native("merge-profile", 1, Some(1), move |_, args| {
        let path = want_string(&args[0])?;
        let info = ProfileInformation::load_file(&path).map_err(|e| {
            EvalError::new(EvalErrorKind::Runtime, format!("merge-profile: {e}"))
        })?;
        let mut st = st.borrow_mut();
        if let Some(log) = st.read_log.as_mut() {
            log.volatile_reads = true;
        }
        st.profile = st.profile.merge(&info);
        Ok(Value::Unspecified)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_eval::install_primitives;
    use pgmp_syntax::Symbol;

    fn setup() -> (Interp, Rc<RefCell<PgmpState>>) {
        let mut interp = Interp::new();
        install_primitives(&mut interp);
        let state = Rc::new(RefCell::new(PgmpState::new(AnnotateStrategy::Direct)));
        install_pgmp_api(&mut interp, state.clone());
        (interp, state)
    }

    fn call(i: &mut Interp, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let f = i.global(Symbol::intern(name)).cloned().unwrap();
        i.apply(&f, args)
    }

    fn stx(src: &str) -> Rc<Syntax> {
        pgmp_reader::read_str(src, "api.scm").unwrap().remove(0)
    }

    #[test]
    fn make_profile_point_is_deterministic_per_session() {
        let (mut i, _) = setup();
        let p1 = call(&mut i, "make-profile-point", vec![]).unwrap();
        let p2 = call(&mut i, "make-profile-point", vec![]).unwrap();
        assert!(!p1.eqv(&p2), "fresh points are distinct");
        let (mut j, _) = setup();
        let q1 = call(&mut j, "make-profile-point", vec![]).unwrap();
        assert!(p1.eqv(&q1), "same generation order, same point across sessions");
    }

    #[test]
    fn make_profile_point_from_base_preserves_location() {
        let (mut i, _) = setup();
        let base = Value::Syntax(stx("(f x)"));
        let p = call(&mut i, "make-profile-point", vec![base]).unwrap();
        let Value::Source(p) = p else { panic!("expected source") };
        assert!(p.file.as_str().starts_with("api.scm%pgmp"));
        assert!(p.is_generated());
    }

    #[test]
    fn annotate_direct_replaces_source() {
        let (mut i, _) = setup();
        let p = call(&mut i, "make-profile-point", vec![]).unwrap();
        let Value::Source(pp) = p else { panic!() };
        let e = Value::Syntax(stx("(+ 1 2)"));
        let out = call(&mut i, "annotate-expr", vec![e, Value::Source(pp)]).unwrap();
        let Value::Syntax(s) = out else { panic!() };
        assert_eq!(s.source, Some(pp));
        assert_eq!(s.to_datum().to_string(), "(+ 1 2)");
    }

    #[test]
    fn annotate_wrap_lambda_generates_thunk_call() {
        let (mut i, state) = setup();
        state.borrow_mut().strategy = AnnotateStrategy::WrapLambda;
        let p = call(&mut i, "make-profile-point", vec![]).unwrap();
        let Value::Source(pp) = p else { panic!() };
        let e = Value::Syntax(stx("(+ 1 2)"));
        let out = call(&mut i, "annotate-expr", vec![e, Value::Source(pp)]).unwrap();
        let Value::Syntax(s) = out else { panic!() };
        assert_eq!(s.to_datum().to_string(), "((lambda () (+ 1 2)))");
        assert_eq!(s.source, Some(pp), "the *call* carries the point");
    }

    #[test]
    fn profile_query_returns_loaded_weight() {
        let (mut i, state) = setup();
        let e = stx("(hot)");
        let p = e.source.unwrap();
        state.borrow_mut().profile =
            ProfileInformation::from_weights([(p, 0.75)], 1);
        let w = call(&mut i, "profile-query", vec![Value::Syntax(e)]).unwrap();
        assert!(matches!(w, Value::Float(x) if x == 0.75));
        // Unknown points weigh zero.
        let w = call(&mut i, "profile-query", vec![Value::Syntax(stx("(cold)"))]).unwrap();
        // (cold) and (hot) share a file but the reader gives (cold) the
        // same span 0..5 — use a distinct span via a longer expression.
        let _ = w;
        let other = pgmp_reader::read_str("  (colder)", "api.scm").unwrap().remove(0);
        let w = call(&mut i, "profile-query", vec![Value::Syntax(other)]).unwrap();
        assert!(matches!(w, Value::Float(x) if x == 0.0));
    }

    #[test]
    fn profile_data_available_tracks_state() {
        let (mut i, state) = setup();
        let v = call(&mut i, "profile-data-available?", vec![]).unwrap();
        assert_eq!(v.to_string(), "#f");
        state.borrow_mut().profile = ProfileInformation::from_weights([], 1);
        let v = call(&mut i, "profile-data-available?", vec![]).unwrap();
        assert_eq!(v.to_string(), "#t");
    }

    #[test]
    fn store_then_load_round_trips_weights() {
        let dir = std::env::temp_dir().join("pgmp-api-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.pgmp");
        let (mut i, state) = setup();
        let p = SourceObject::new("x.scm", 1, 2);
        state.borrow().counters.add(p, 10);
        state.borrow().counters.add(SourceObject::new("x.scm", 3, 4), 5);
        call(&mut i, "store-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        call(&mut i, "load-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        assert_eq!(state.borrow().profile.weight(p), 1.0);
        assert_eq!(
            state.borrow().profile.weight(SourceObject::new("x.scm", 3, 4)),
            0.5
        );
    }

    #[test]
    fn merge_profile_averages_datasets() {
        let dir = std::env::temp_dir().join("pgmp-api-test-merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.pgmp");
        let p = SourceObject::new("m.scm", 0, 1);
        ProfileInformation::from_weights([(p, 1.0)], 1)
            .store_file(&path)
            .unwrap();
        let (mut i, state) = setup();
        state.borrow_mut().profile = ProfileInformation::from_weights([(p, 0.0)], 1);
        call(&mut i, "merge-profile", vec![Value::string(path.to_str().unwrap())]).unwrap();
        assert_eq!(state.borrow().profile.weight(p), 0.5);
    }

    #[test]
    fn current_profile_information_lists_points() {
        let (mut i, state) = setup();
        let p = SourceObject::new("l.scm", 0, 1);
        state.borrow_mut().profile = ProfileInformation::from_weights([(p, 0.25)], 1);
        let v = call(&mut i, "current-profile-information", vec![]).unwrap();
        let entries = v.list_elems().unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn read_log_records_queries_and_volatility() {
        let (mut i, state) = setup();
        let e = stx("(hot)");
        let p = e.source.unwrap();
        state.borrow_mut().profile = ProfileInformation::from_weights([(p, 0.75)], 1);
        state.borrow_mut().read_log = Some(ProfileReadLog::default());

        call(&mut i, "profile-query", vec![Value::Syntax(e.clone())]).unwrap();
        call(&mut i, "profile-data-available?", vec![]).unwrap();
        {
            let st = state.borrow();
            let log = st.read_log.as_ref().unwrap();
            assert_eq!(log.points, vec![(p, 0.75)]);
            assert_eq!(log.availability, Some(true));
            assert!(!log.whole_profile);
            assert!(!log.volatile_reads);
        }

        call(&mut i, "current-profile-information", vec![]).unwrap();
        call(&mut i, "profile-count", vec![Value::Syntax(e)]).unwrap();
        let st = state.borrow();
        let log = st.read_log.as_ref().unwrap();
        assert!(log.whole_profile);
        assert!(log.volatile_reads);
        assert!(!log.is_empty());
    }

    #[test]
    fn no_read_log_records_nothing() {
        let (mut i, state) = setup();
        call(&mut i, "profile-query", vec![Value::Syntax(stx("(x)"))]).unwrap();
        assert!(state.borrow().read_log.is_none());
    }

    #[test]
    fn load_profile_missing_file_errors() {
        let (mut i, _) = setup();
        assert!(call(
            &mut i,
            "load-profile",
            vec![Value::string("/nonexistent/profile.pgmp")]
        )
        .is_err());
    }
}
