//! The §4.3 three-pass protocol: consistent source- and block-level PGO.
//!
//! Meta-program optimizations change the generated source, which would
//! invalidate any block-level profile collected earlier. The paper's fix is
//! to compile **three** times:
//!
//! 1. instrument *source* expressions, run, collect source weights;
//! 2. recompile **using** those source weights (meta-programs now
//!    optimize) while instrumenting *basic blocks*, run, collect block
//!    counts — these remain valid because the source weights are held
//!    fixed, so the generated code is stable;
//! 3. recompile using both: the same source weights for meta-programs and
//!    the block counts for block-level PGO (here: profile-guided code
//!    layout).
//!
//! [`run_three_pass`] drives the protocol and checks the stability
//! invariant: the pass-3 CFGs must equal the pass-2 CFGs.
//!
//! Passes 2 and 3 run over one [`IncrementalEngine`]: pass 3 uses the same
//! source weights as pass 2, so every form whose read-set validates is
//! served from the per-form cache — the stability invariant is enforced
//! *structurally* (reused forms keep their chunks, and with them their
//! chunk ids, so pass-2 block counters apply to pass-3 code directly, with
//! no creation-order id translation).

use crate::engine::Engine;
use crate::error::Error;
use crate::incremental::{IncrementalConfig, IncrementalEngine, ReuseStats};
use pgmp_bytecode::{
    canonical_form, optimize_layout, BlockCounters, Chunk, FusionPlan, Vm, VmMetrics,
};
use pgmp_profiler::{ProfileInformation, ProfileMode};

/// Everything the three-pass run observed; see module docs.
#[derive(Debug)]
pub struct ThreePassReport {
    /// Source-level weights collected in pass 1 (the meta-programs'
    /// oracle).
    pub source_weights: ProfileInformation,
    /// Canonical CFGs compiled in pass 2, in creation order.
    pub pass2_chunks: Vec<String>,
    /// Canonical CFGs compiled in pass 3, in creation order.
    pub pass3_chunks: Vec<String>,
    /// The §4.3 invariant: pass-3 code equals pass-2 code.
    pub stable: bool,
    /// Cache accounting for the pass-3 recompile: under unchanged source
    /// weights every form should be reused.
    pub reuse: ReuseStats,
    /// Jump behaviour of the pass-2 (unoptimized layout) code.
    pub baseline_metrics: VmMetrics,
    /// Jump behaviour of the pass-3 (profile-laid-out) code.
    pub optimized_metrics: VmMetrics,
    /// Superinstructions the block profile selected for the final run
    /// (empty when nothing was hot enough).
    pub fused: Vec<&'static str>,
    /// Result of the final run, `write`-printed.
    pub result: String,
}

/// Runs the full three-pass protocol on `src`.
///
/// The program is its own training workload: each pass executes the whole
/// program (so it should be idempotent across re-runs, which all the
/// paper-style benchmarks here are).
///
/// # Errors
///
/// Propagates any read/expand/eval error from any pass.
pub fn run_three_pass(src: &str, file: &str) -> Result<ThreePassReport, Error> {
    // ---- Pass 1: source-level instrumentation -------------------------
    let mut e1 = Engine::new();
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(src, file)?;
    let source_weights = e1.current_weights();

    // ---- Pass 2: optimize with source weights, profile blocks ---------
    let mut incr = IncrementalEngine::with_engine(
        Engine::new(),
        src,
        file,
        IncrementalConfig::default(),
    )?;
    let unit2 = incr.compile(&source_weights)?;

    // ---- Pass 3: recompile with the same source weights ---------------
    // Served from the per-form cache: every read-set still validates, so
    // reuse is total and the pass-3 code *is* the pass-2 code (same
    // chunks, same ids).
    let unit3 = incr.compile(&source_weights)?;
    let stable = unit2.cfgs == unit3.cfgs;
    let reuse = unit3.stats;

    // Profile basic blocks while running the pass-2 code. Lambda bodies
    // compile lazily inside the VM and are shared by both passes (reused
    // forms hand back the same core forms).
    let block_counts = BlockCounters::new();
    let mut vm = Vm::new();
    vm.set_block_profiling(block_counts.clone());
    let interp = incr.engine_mut().interp_mut();
    for chunk in &unit2.chunks {
        vm.run_chunk(interp, chunk)?;
    }
    let baseline_metrics = vm.metrics;
    let lambda_canon: Vec<String> =
        vm.compiled_chunks().iter().map(|c| canonical_form(c)).collect();
    let mut pass2_chunks = unit2.cfgs.clone();
    pass2_chunks.extend(lambda_canon.iter().cloned());
    let mut pass3_chunks = unit3.cfgs.clone();
    pass3_chunks.extend(lambda_canon);

    // Apply the block-level PGO (layout) and measure the final run. The
    // counters apply directly: pass-3 chunks kept their pass-2 ids.
    let laid_out: Vec<Chunk> = unit3
        .chunks
        .iter()
        .map(|c| optimize_layout(c, &block_counts))
        .collect();
    vm.relayout_cached(&block_counts);
    // Block-level PGO step two: fuse the profile-hottest adjacent pairs
    // into superinstructions for the final lowering.
    let lambda_chunks = vm.compiled_chunks();
    let plan = FusionPlan::mine(
        laid_out.iter().chain(lambda_chunks.iter().map(|c| &**c)),
        &block_counts,
        3,
    );
    let fused = plan.labels();
    vm.set_fusion(plan);
    vm.metrics = VmMetrics::default();
    vm.block_counters = None;
    let mut result = String::new();
    let interp = incr.engine_mut().interp_mut();
    for chunk in &laid_out {
        result = vm.run_chunk(interp, chunk)?.write_string();
    }
    let optimized_metrics = vm.metrics;

    Ok(ThreePassReport {
        source_weights,
        pass2_chunks,
        pass3_chunks,
        stable,
        reuse,
        baseline_metrics,
        optimized_metrics,
        fused,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIASED: &str = "
      (define-syntax (if-r stx)
        (syntax-case stx ()
          [(_ test t-branch f-branch)
           (if (< (profile-query #'t-branch) (profile-query #'f-branch))
               #'(if (not test) f-branch t-branch)
               #'(if test t-branch f-branch))]))
      (define (classify n) (if-r (= n 0) 'rare 'common))
      (let loop ([i 0] [acc 0])
        (if (= i 500)
            acc
            (loop (add1 i) (if (eq? (classify i) 'common) (add1 acc) acc))))";

    #[test]
    fn three_pass_is_stable_and_correct() {
        let report = run_three_pass(BIASED, "biased.scm").unwrap();
        assert!(report.stable, "pass-3 CFGs must equal pass-2 CFGs");
        assert_eq!(report.result, "499");
        assert!(!report.source_weights.is_empty());
        assert_eq!(report.pass2_chunks.len(), report.pass3_chunks.len());
        assert!(
            report.reuse.all_reused(),
            "pass 3 under identical weights must be a full cache hit: {:?}",
            report.reuse
        );
    }

    #[test]
    fn three_pass_layout_does_not_hurt_fallthrough() {
        let report = run_three_pass(BIASED, "biased.scm").unwrap();
        assert!(
            report.optimized_metrics.fallthrough_ratio()
                >= report.baseline_metrics.fallthrough_ratio() - 1e-9,
            "layout must not reduce fall-through: {:?} vs {:?}",
            report.optimized_metrics,
            report.baseline_metrics
        );
    }

    #[test]
    fn three_pass_plain_program() {
        // No meta-programs at all: still stable.
        let report =
            run_three_pass("(define (f x) (* x x)) (+ (f 3) (f 4))", "plain.scm").unwrap();
        assert!(report.stable);
        assert_eq!(report.result, "25");
    }
}
