//! The §4.3 three-pass protocol: consistent source- and block-level PGO.
//!
//! Meta-program optimizations change the generated source, which would
//! invalidate any block-level profile collected earlier. The paper's fix is
//! to compile **three** times:
//!
//! 1. instrument *source* expressions, run, collect source weights;
//! 2. recompile **using** those source weights (meta-programs now
//!    optimize) while instrumenting *basic blocks*, run, collect block
//!    counts — these remain valid because the source weights are held
//!    fixed, so the generated code is stable;
//! 3. recompile using both: the same source weights for meta-programs and
//!    the block counts for block-level PGO (here: profile-guided code
//!    layout).
//!
//! [`run_three_pass`] drives the protocol and checks the stability
//! invariant: the pass-3 CFGs must equal the pass-2 CFGs.

use crate::engine::Engine;
use crate::error::Error;
use pgmp_bytecode::{canonical_form, compile_chunk, optimize_layout, BlockCounters, Chunk, Vm, VmMetrics};
use pgmp_profiler::{ProfileInformation, ProfileMode};

/// Everything the three-pass run observed; see module docs.
#[derive(Debug)]
pub struct ThreePassReport {
    /// Source-level weights collected in pass 1 (the meta-programs'
    /// oracle).
    pub source_weights: ProfileInformation,
    /// Canonical CFGs compiled in pass 2, in creation order.
    pub pass2_chunks: Vec<String>,
    /// Canonical CFGs compiled in pass 3, in creation order.
    pub pass3_chunks: Vec<String>,
    /// The §4.3 invariant: pass-3 code equals pass-2 code.
    pub stable: bool,
    /// Jump behaviour of the pass-2 (unoptimized layout) code.
    pub baseline_metrics: VmMetrics,
    /// Jump behaviour of the pass-3 (profile-laid-out) code.
    pub optimized_metrics: VmMetrics,
    /// Result of the final run, `write`-printed.
    pub result: String,
}

/// One pass's artifacts: (toplevel chunks, canonical CFGs, block counters,
/// VM metrics, printed result).
type PassArtifacts = (Vec<Chunk>, Vec<String>, BlockCounters, VmMetrics, String);

fn compile_and_run(
    engine: &mut Engine,
    src: &str,
    file: &str,
    counters: Option<BlockCounters>,
) -> Result<PassArtifacts, Error> {
    let program = engine.expand_to_core(src, file)?;
    let toplevel: Vec<Chunk> = program.iter().map(compile_chunk).collect();
    let counters = counters.unwrap_or_default();
    let mut vm = Vm::new(engine.interp_mut());
    vm.set_block_profiling(counters.clone());
    let mut result = String::new();
    for chunk in &toplevel {
        result = vm.run_chunk(chunk)?.write_string();
    }
    let mut canon: Vec<String> = toplevel.iter().map(canonical_form).collect();
    canon.extend(vm.compiled_chunks().iter().map(|c| canonical_form(c)));
    Ok((toplevel, canon, counters, vm.metrics, result))
}

/// Runs the full three-pass protocol on `src`.
///
/// The program is its own training workload: each pass executes the whole
/// program (so it should be idempotent across re-runs, which all the
/// paper-style benchmarks here are).
///
/// # Errors
///
/// Propagates any read/expand/eval error from any pass.
pub fn run_three_pass(src: &str, file: &str) -> Result<ThreePassReport, Error> {
    // ---- Pass 1: source-level instrumentation -------------------------
    let mut e1 = Engine::new();
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(src, file)?;
    let source_weights = e1.current_weights();

    // ---- Pass 2: optimize with source weights, profile blocks ---------
    let mut e2 = Engine::new();
    e2.set_profile(source_weights.clone());
    let (_top2, canon2, block_counts, baseline_metrics, _) =
        compile_and_run(&mut e2, src, file, None)?;

    // ---- Pass 3: optimize with source weights AND block counts --------
    let mut e3 = Engine::new();
    e3.set_profile(source_weights.clone());
    let program = e3.expand_to_core(src, file)?;
    let toplevel: Vec<Chunk> = program.iter().map(compile_chunk).collect();

    // Discover lambda chunks (and verify CFG stability) with a warm-up
    // run, then translate pass-2 block counts onto pass-3 chunk ids by
    // creation order — valid because expansion under identical source
    // weights is deterministic.
    let mut vm = Vm::new(e3.interp_mut());
    for chunk in &toplevel {
        vm.run_chunk(chunk)?;
    }
    let mut canon3: Vec<String> = toplevel.iter().map(canonical_form).collect();
    canon3.extend(vm.compiled_chunks().iter().map(|c| canonical_form(c)));
    let stable = canon2 == canon3;

    // Translate block counts: i-th pass-2 chunk -> i-th pass-3 chunk.
    let pass2_ids: Vec<u32> = {
        // Recover pass-2 ids from the counters themselves, in ascending
        // order (ids increase in creation order within a pass).
        let mut ids: Vec<u32> = block_counts
            .snapshot()
            .keys()
            .map(|(chunk, _)| *chunk)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let mut pass3_ids: Vec<u32> = toplevel.iter().map(|c| c.id).collect();
    pass3_ids.extend(vm.compiled_chunks().iter().map(|c| c.id));
    pass3_ids.sort_unstable();
    let translated = BlockCounters::new();
    for ((chunk, block), count) in block_counts.snapshot() {
        if let Some(pos) = pass2_ids.iter().position(|id| *id == chunk) {
            if let Some(new_id) = pass3_ids.get(pos) {
                for _ in 0..count {
                    translated.increment(*new_id, block);
                }
            }
        }
    }

    // Apply the block-level PGO (layout) and measure the final run.
    let laid_out: Vec<Chunk> = toplevel
        .iter()
        .map(|c| optimize_layout(c, &translated))
        .collect();
    vm.relayout_cached(&translated);
    vm.metrics = VmMetrics::default();
    vm.block_counters = None;
    let mut result = String::new();
    for chunk in &laid_out {
        result = vm.run_chunk(chunk)?.write_string();
    }
    let optimized_metrics = vm.metrics;

    Ok(ThreePassReport {
        source_weights,
        pass2_chunks: canon2,
        pass3_chunks: canon3,
        stable,
        baseline_metrics,
        optimized_metrics,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIASED: &str = "
      (define-syntax (if-r stx)
        (syntax-case stx ()
          [(_ test t-branch f-branch)
           (if (< (profile-query #'t-branch) (profile-query #'f-branch))
               #'(if (not test) f-branch t-branch)
               #'(if test t-branch f-branch))]))
      (define (classify n) (if-r (= n 0) 'rare 'common))
      (let loop ([i 0] [acc 0])
        (if (= i 500)
            acc
            (loop (add1 i) (if (eq? (classify i) 'common) (add1 acc) acc))))";

    #[test]
    fn three_pass_is_stable_and_correct() {
        let report = run_three_pass(BIASED, "biased.scm").unwrap();
        assert!(report.stable, "pass-3 CFGs must equal pass-2 CFGs");
        assert_eq!(report.result, "499");
        assert!(!report.source_weights.is_empty());
        assert_eq!(report.pass2_chunks.len(), report.pass3_chunks.len());
    }

    #[test]
    fn three_pass_layout_does_not_hurt_fallthrough() {
        let report = run_three_pass(BIASED, "biased.scm").unwrap();
        assert!(
            report.optimized_metrics.fallthrough_ratio()
                >= report.baseline_metrics.fallthrough_ratio() - 1e-9,
            "layout must not reduce fall-through: {:?} vs {:?}",
            report.optimized_metrics,
            report.baseline_metrics
        );
    }

    #[test]
    fn three_pass_plain_program() {
        // No meta-programs at all: still stable.
        let report =
            run_three_pass("(define (f x) (* x x)) (+ (f 3) (f 4))", "plain.scm").unwrap();
        assert!(report.stable);
        assert_eq!(report.result, "25");
    }
}
