//! Profile-guided meta-programming.
//!
//! This crate is the Rust reproduction of the system described in
//! *"Profile-Guided Meta-Programming"* (Bowman, Miller, St-Amour, Dybvig —
//! PLDI 2015): a general-purpose mechanism that gives **meta-programs
//! compile-time access to profile information**, so macros can generate
//! code specialized to how the program actually runs.
//!
//! The pieces:
//!
//! - [`api`] — the paper's Figure 4 API (`make-profile-point`,
//!   `annotate-expr`, `profile-query`, `store-profile`, `load-profile`,
//!   `current-profile-information`), installed as ordinary procedures in
//!   the macro expander's meta interpreter;
//! - [`Engine`] — a compilation session: read → expand (meta-programs can
//!   consult the loaded profile) → run, optionally instrumented in either
//!   of the two profiler models the paper targets (Chez-style
//!   every-expression counters or Racket `errortrace`-style call-only
//!   counters, with `annotate-expr` wrapping expressions in thunk calls);
//! - [`workflow`] — the §4.3 three-pass protocol keeping source-level
//!   PGMP and block-level PGO consistent;
//! - [`incremental`] — a per-form recompilation cache that makes
//!   re-optimization O(changed forms) by tracking which profile points
//!   each top-level form consulted during expansion;
//! - [`persist`] — the on-disk session format behind
//!   [`IncrementalEngine::save_state`] /
//!   [`IncrementalEngine::load_state`], which carries that cache across
//!   *process* boundaries so re-optimization warm-starts in O(changed
//!   forms) from the first compile.
//!
//! [`IncrementalEngine::save_state`]: incremental::IncrementalEngine::save_state
//! [`IncrementalEngine::load_state`]: incremental::IncrementalEngine::load_state
//!
//! # Quickstart
//!
//! ```
//! use pgmp::{AnnotateStrategy, Engine};
//! use pgmp_profiler::ProfileMode;
//!
//! // A meta-program that reorders if branches by profile weight (§2).
//! let program = r#"
//!   (define-syntax (if-r stx)
//!     (syntax-case stx ()
//!       [(_ test t-branch f-branch)
//!        (if (< (profile-query #'t-branch) (profile-query #'f-branch))
//!            #'(if (not test) f-branch t-branch)
//!            #'(if test t-branch f-branch))]))
//!   (define (classify n)
//!     (if-r (< n 10) 'small 'big))
//!   (let loop ([i 0])
//!     (unless (= i 50) (classify 100) (loop (add1 i))))
//! "#;
//!
//! // Pass 1: run instrumented, collect weights.
//! let mut e1 = Engine::new();
//! e1.set_instrumentation(ProfileMode::EveryExpression);
//! e1.run_str(program, "classify.scm")?;
//! let weights = e1.current_weights();
//!
//! // Pass 2: recompile with the profile; if-r now sees real weights and
//! // swaps the branches ('big is hotter).
//! let mut e2 = Engine::with_strategy(AnnotateStrategy::Direct);
//! e2.set_profile(weights);
//! let expansion = e2.expand_str(program, "classify.scm")?;
//! let classify = expansion.iter().map(|s| s.to_string())
//!     .find(|s| s.contains("define (classify"))
//!     .expect("classify definition");
//! assert!(classify.contains("(if (not (< n 10)) (quote big) (quote small))"));
//! # Ok::<(), pgmp::Error>(())
//! ```

pub mod api;
mod engine;
mod error;
pub mod incremental;
pub mod persist;
pub mod workflow;

pub use api::{install_pgmp_api, PgmpState, ProfileReadLog};
pub use engine::{AnnotateStrategy, Engine};
pub use error::Error;
pub use incremental::{CompiledUnit, IncrementalConfig, IncrementalEngine, ReuseStats};
pub use persist::{SaveStats, WarmStart};
