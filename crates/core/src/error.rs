//! Unified error type for compilation sessions.

use pgmp_eval::EvalError;
use pgmp_expander::ExpandError;
use pgmp_profiler::ProfileStoreError;
use pgmp_reader::ReadError;
use std::fmt;

/// Any failure in a [`crate::Engine`] session.
#[derive(Debug)]
pub enum Error {
    /// The reader rejected the source text.
    Read(ReadError),
    /// Macro expansion failed.
    Expand(ExpandError),
    /// Evaluation failed.
    Eval(EvalError),
    /// Profile data could not be stored or loaded.
    Profile(ProfileStoreError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Read(e) => write!(f, "{e}"),
            Error::Expand(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "evaluation error: {e}"),
            Error::Profile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Read(e) => Some(e),
            Error::Expand(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Profile(e) => Some(e),
        }
    }
}

impl From<ReadError> for Error {
    fn from(e: ReadError) -> Error {
        Error::Read(e)
    }
}

impl From<ExpandError> for Error {
    fn from(e: ExpandError) -> Error {
        Error::Expand(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Error {
        Error::Eval(e)
    }
}

impl From<ProfileStoreError> for Error {
    fn from(e: ProfileStoreError) -> Error {
        Error::Profile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e: Error = EvalError::type_error("x", &pgmp_eval::Value::Nil).into();
        assert!(e.to_string().contains("evaluation error"));
        let e: Error = ProfileStoreError::Malformed("bad".into()).into();
        assert!(e.to_string().contains("malformed"));
    }
}
