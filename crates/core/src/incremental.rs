//! Incremental recompilation: re-optimization in O(changed forms).
//!
//! Both the §4.3 three-pass workflow and the adaptive engine re-optimize by
//! re-reading, re-expanding, and re-compiling the *entire* program whenever
//! profile data changes — even though only the forms that actually consult
//! `profile-query` can expand differently. [`IncrementalEngine`] makes
//! re-optimization proportional to the set of profile-dependent forms:
//!
//! 1. The program is parsed **once**; each top-level form gets a stable
//!    fingerprint ([`pgmp_expander::form_hash`]).
//! 2. During a form's expansion, the API entry points record the form's
//!    *read-set* ([`ProfileReadLog`]): every `(point, weight)` answered by
//!    `profile-query`, plus availability / whole-profile / volatile flags.
//! 3. On the next [`IncrementalEngine::compile`], a form is re-expanded
//!    only if one of its recorded reads would now answer differently
//!    (beyond [`IncrementalConfig::epsilon`]); otherwise its cached
//!    expansion, core forms, and compiled chunks are reused as-is.
//! 4. Invalidation is driven by an **inverted point→forms index**: the new
//!    weights are diffed against the last successful compile's, and only
//!    the readers of drifted points (plus forms whose reads cannot be
//!    diffed — volatile, whole-profile, availability on a flip) get the
//!    per-point reuse check. A stable profile revalidates the whole
//!    program in O(changed points), not O(forms × reads).
//!
//! # Why per-form reuse is sound
//!
//! - **Profile-point determinism.** `make-profile-point` is a deterministic
//!   function of the factory's allocation state (§4.1). Each cache entry
//!   snapshots the factory state before and after the form's expansion;
//!   reuse requires the current state to equal the recorded pre-state and
//!   fast-forwards it to the recorded post-state, so a mixed reused /
//!   re-expanded compile allocates exactly the point sequence a from-scratch
//!   compile would.
//! - **Hygiene is invisible in outputs.** Gensym'd binders introduced by
//!   the expander become slot indices in core forms, and marks are stripped
//!   by `syntax->datum`; neither appears in the printed expansion or in
//!   canonical CFGs, so reused output is textually identical to what
//!   re-expansion under equal weights would print.
//! - **Compile-time state.** A re-expanded form that changes meta state
//!   (`define-syntax`, `define-for-syntax`, `begin-for-syntax`)
//!   conservatively invalidates every later form in the same compile
//!   (`Expander::take_meta_dirty`). The cache assumes transformers are
//!   otherwise *functions* of their input syntax and the profile — macros
//!   that mutate meta state per use (rather than per definition) are
//!   outside the cache's soundness and should be compiled from scratch.

use crate::api::ProfileReadLog;
use crate::engine::Engine;
use crate::error::Error;
use crate::persist::{self, SaveStats, WarmStart};
use pgmp_bytecode::{canonical_form, compile_chunk, Chunk};
use pgmp_eval::{core_to_datum_with, Core, StringTable};
use pgmp_expander::form_hash;
use pgmp_observe as observe;
use pgmp_profiler::rebase::{lcs_align, span_map_lockstep, struct_hash};
use pgmp_profiler::{write_atomic, ProfileInformation, ProfileStoreError};
use pgmp_reader::read_str;
use pgmp_syntax::{Datum, SourceFactory, SourceObject, Syntax};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::rc::Rc;

/// Tuning knobs for the incremental cache.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Maximum allowed drift, per consulted profile point, between the
    /// weight a cached expansion saw and the current weight before the
    /// form must be re-expanded. `0.0` (the default) re-expands on any
    /// change; larger values trade re-optimization fidelity for fewer
    /// recompiles.
    pub epsilon: f64,
}

impl Default for IncrementalConfig {
    fn default() -> IncrementalConfig {
        IncrementalConfig { epsilon: 0.0 }
    }
}

/// How much work one [`IncrementalEngine::compile`] call avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Top-level forms in the program.
    pub total_forms: usize,
    /// Forms whose cached expansion was reused untouched.
    pub reused: usize,
    /// Forms that were (re-)expanded and recompiled.
    pub reexpanded: usize,
}

impl ReuseStats {
    /// True iff nothing had to be re-expanded.
    pub fn all_reused(&self) -> bool {
        self.reexpanded == 0 && self.total_forms == self.reused
    }
}

/// The output of one compile: everything downstream consumers need, with
/// per-form provenance erased (reused and fresh forms are indistinguishable
/// by construction).
#[derive(Debug)]
pub struct CompiledUnit {
    /// Printed source-to-source expansion, one string per emitted form.
    pub expansion: Vec<String>,
    /// Expanded core forms, in program order.
    pub cores: Vec<Rc<Core>>,
    /// Compiled top-level chunks, one per core form. Reused forms keep
    /// their original chunk ids, so block counters collected against an
    /// earlier compile remain valid for them.
    pub chunks: Vec<Chunk>,
    /// Canonical CFGs of `chunks`, in order.
    pub cfgs: Vec<String>,
    /// Reuse accounting for this compile.
    pub stats: ReuseStats,
}

/// One top-level form's cache entry.
struct FormEntry {
    reads: ProfileReadLog,
    factory_pre: SourceFactory,
    factory_post: SourceFactory,
    /// Printed expansion, core forms, chunks, canonical CFGs — everything
    /// a compile emits for this form, reusable verbatim.
    expansion: Vec<String>,
    cores: Vec<Rc<Core>>,
    chunks: Vec<Chunk>,
    cfgs: Vec<String>,
    /// Full profile at expansion time — kept only when the form read the
    /// whole profile (`current-profile-information`).
    profile_snapshot: Option<ProfileInformation>,
    /// True when this form's expansion changed compile-time state
    /// (`define-syntax` and friends). Such forms must be *replayed* through
    /// the expander on a warm start — their registered transformers cannot
    /// be serialized.
    meta: bool,
}

/// A persistent compilation session with a per-form recompilation cache.
///
/// # Example
///
/// ```
/// use pgmp::incremental::{IncrementalConfig, IncrementalEngine};
/// use pgmp_profiler::ProfileInformation;
///
/// let src = "(define (f x) (* x x)) (f 4)";
/// let mut incr = IncrementalEngine::new(src, "inc.scm", IncrementalConfig::default())?;
/// let first = incr.compile(&ProfileInformation::empty())?;
/// assert_eq!(first.stats.reexpanded, 2);
/// // Same weights: everything is served from cache.
/// let second = incr.compile(&ProfileInformation::empty())?;
/// assert!(second.stats.all_reused());
/// assert_eq!(first.expansion, second.expansion);
/// # Ok::<(), pgmp::Error>(())
/// ```
pub struct IncrementalEngine {
    engine: Engine,
    forms: Vec<Rc<Syntax>>,
    hashes: Vec<u64>,
    entries: Vec<Option<FormEntry>>,
    config: IncrementalConfig,
    /// Inverted index: profile point → forms whose cached expansion read
    /// it. On a new profile, invalidation starts from the *drifted points*
    /// and walks this index, instead of scanning every form's read-set.
    point_index: HashMap<SourceObject, Vec<usize>>,
    /// The weights of the last *successful* compile. Every cached entry is
    /// within epsilon of these (reuse was checked, or the form re-expanded
    /// under them), so only points whose weight differs from `last_weights`
    /// can invalidate anything. `None` after an error or before the first
    /// compile — then every form is a candidate.
    last_weights: Option<ProfileInformation>,
}

impl IncrementalEngine {
    /// Parses `src` once and prepares an empty cache over a fresh
    /// [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a read error if `src` does not parse.
    pub fn new(src: &str, file: &str, config: IncrementalConfig) -> Result<IncrementalEngine, Error> {
        IncrementalEngine::with_engine(Engine::new(), src, file, config)
    }

    /// As [`IncrementalEngine::new`], but over a caller-prepared engine
    /// (e.g. with case-study libraries already installed).
    ///
    /// # Errors
    ///
    /// Returns a read error if `src` does not parse.
    pub fn with_engine(
        engine: Engine,
        src: &str,
        file: &str,
        config: IncrementalConfig,
    ) -> Result<IncrementalEngine, Error> {
        let forms = read_str(src, file)?;
        let hashes = forms.iter().map(|f| form_hash(f)).collect();
        let entries = forms.iter().map(|_| None).collect();
        Ok(IncrementalEngine {
            engine,
            forms,
            hashes,
            entries,
            config,
            point_index: HashMap::new(),
            last_weights: None,
        })
    }

    /// The underlying engine (for profile access, running compiled code,
    /// or installing libraries before the first compile).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Number of top-level forms under management.
    pub fn form_count(&self) -> usize {
        self.forms.len()
    }

    /// Replaces the program text, invalidating exactly the forms whose
    /// *structure* changed (forms downstream of a changed `define-syntax`
    /// are caught at compile time via the meta-dirty flag).
    ///
    /// Old and new toplevel forms are aligned by LCS over
    /// position-independent structural fingerprints
    /// ([`pgmp_profiler::rebase::struct_hash`]), so inserting or deleting
    /// a toplevel form no longer dirties every later form: a form whose
    /// text merely *moved* carries its cache entry to the new position,
    /// with the entry's recorded profile reads re-keyed to the shifted
    /// spans (matching what a rebased profile — `pgmp-profile rebase` —
    /// keys its weights on). Factory snapshots need no re-keying: point
    /// generation is keyed by file symbol, which an offset shift does not
    /// change. Carried artifacts (cores, chunks) still instrument the
    /// *old* spans until the form next re-expands — see `docs/REBASE.md`
    /// for this limitation.
    ///
    /// # Errors
    ///
    /// Returns a read error if `src` does not parse; the cache is left
    /// unchanged in that case.
    pub fn set_source(&mut self, src: &str, file: &str) -> Result<(), Error> {
        let forms = read_str(src, file)?;
        let hashes: Vec<u64> = forms.iter().map(|f| form_hash(f)).collect();

        let old_struct: Vec<u64> = self.forms.iter().map(|f| struct_hash(f)).collect();
        let new_struct: Vec<u64> = forms.iter().map(|f| struct_hash(f)).collect();
        let pairs = lcs_align(&old_struct, &new_struct);

        let mut entries: Vec<Option<FormEntry>> = (0..forms.len()).map(|_| None).collect();
        // old span -> new span, unioned over every carried-but-shifted
        // form; spans within one file are unique, so a flat map suffices.
        let mut spans: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
        for (i, j) in pairs {
            let Some(entry) = self.entries[i].take() else {
                continue;
            };
            if self.hashes[i] != hashes[j] {
                // Structurally identical but moved: every span inside the
                // form shifted in lockstep.
                span_map_lockstep(&self.forms[i], &forms[j], &mut spans);
            }
            entries[j] = Some(entry);
        }
        if !spans.is_empty() {
            // Re-key recorded reads through the alignment — including
            // cross-form reads and generated `file%pgmpN` points, whose
            // spans are their base form's (the file symbol keeps the
            // suffix and does not move).
            for entry in entries.iter_mut().flatten() {
                for (p, _) in entry.reads.points.iter_mut() {
                    if let Some((nb, ne)) = spans.get(&(p.bfp, p.efp)) {
                        p.bfp = *nb;
                        p.efp = *ne;
                    }
                }
            }
        }
        self.forms = forms;
        self.hashes = hashes;
        self.entries = entries;
        self.rebuild_index();
        Ok(())
    }

    /// Rebuilds the inverted point→forms index from the cache entries
    /// (used after wholesale entry shuffles like [`set_source`]; within a
    /// compile the index is maintained incrementally per re-expanded form).
    ///
    /// [`set_source`]: IncrementalEngine::set_source
    fn rebuild_index(&mut self) {
        self.point_index.clear();
        for i in 0..self.entries.len() {
            self.index_entry(i);
        }
    }

    /// Removes form `i`'s read points from the inverted index.
    fn unindex_entry(&mut self, i: usize) {
        if let Some(entry) = &self.entries[i] {
            for (p, _) in &entry.reads.points {
                if let Some(forms) = self.point_index.get_mut(p) {
                    forms.retain(|&j| j != i);
                }
            }
        }
    }

    /// Adds form `i`'s read points to the inverted index.
    fn index_entry(&mut self, i: usize) {
        if let Some(entry) = &self.entries[i] {
            for (p, _) in &entry.reads.points {
                let forms = self.point_index.entry(*p).or_default();
                if forms.last() != Some(&i) {
                    forms.push(i);
                }
            }
        }
    }

    /// Marks the forms that could possibly fail reuse under `weights`:
    /// forms without a cache entry, forms whose reads cannot be diffed
    /// (volatile, whole-profile, availability on an availability flip), and
    /// — via the inverted index — readers of any point whose weight moved
    /// since the last successful compile. Everything else is provably
    /// within epsilon and skips the per-point scan entirely.
    fn reuse_candidates(&self, weights: &ProfileInformation) -> Vec<bool> {
        let last = match &self.last_weights {
            Some(last) => last,
            None => return vec![true; self.entries.len()],
        };
        let availability_flipped = weights.is_empty() != last.is_empty();
        let mut out: Vec<bool> = self
            .entries
            .iter()
            .map(|entry| match entry {
                None => true,
                Some(e) => {
                    e.reads.volatile_reads
                        || e.reads.whole_profile
                        || (availability_flipped && e.reads.availability.is_some())
                }
            })
            .collect();
        let mut seen = HashSet::new();
        let mark = |p: SourceObject, out: &mut Vec<bool>| {
            if let Some(forms) = self.point_index.get(&p) {
                for &i in forms {
                    out[i] = true;
                }
            }
        };
        for (p, w) in weights.iter() {
            seen.insert(p);
            if last.weight(p) != w {
                mark(p, &mut out);
            }
        }
        for (p, w) in last.iter() {
            if !seen.contains(&p) && weights.weight(p) != w {
                mark(p, &mut out);
            }
        }
        out
    }

    /// True when `entry` can be served from cache under `weights`.
    fn reusable(&self, entry: &FormEntry, weights: &ProfileInformation) -> bool {
        let reads = &entry.reads;
        if reads.volatile_reads {
            return false;
        }
        if self.engine.factory_snapshot() != entry.factory_pre {
            return false;
        }
        if let Some(avail) = reads.availability {
            if avail == weights.is_empty() {
                return false;
            }
        }
        if reads.whole_profile && entry.profile_snapshot.as_ref() != Some(weights) {
            return false;
        }
        reads
            .points
            .iter()
            .all(|(p, w)| (weights.weight(*p) - w).abs() <= self.config.epsilon)
    }

    /// Compiles the program under `weights`, re-expanding only forms whose
    /// recorded profile reads changed beyond epsilon (plus anything
    /// downstream of a re-expanded form that altered compile-time state).
    ///
    /// # Errors
    ///
    /// Propagates read/expand errors from re-expanded forms.
    pub fn compile(&mut self, weights: &ProfileInformation) -> Result<CompiledUnit, Error> {
        self.engine.set_profile(weights.clone());
        self.engine.reset_profile_points();
        // Discard dirt from engine setup (library installation registers
        // macros); only re-expansions *during this compile* invalidate
        // downstream entries.
        let _ = self.engine.expander_mut().take_meta_dirty();

        let compile_timer = observe::timer();
        let candidates = self.reuse_candidates(weights);
        let first_compile = self.last_weights.is_none();
        // Cleared until this compile succeeds: a failed compile leaves the
        // cache with entries recorded under mixed weights, so the next one
        // must fall back to checking every form.
        self.last_weights = None;

        let mut unit = CompiledUnit {
            expansion: Vec::new(),
            cores: Vec::new(),
            chunks: Vec::new(),
            cfgs: Vec::new(),
            stats: ReuseStats {
                total_forms: self.forms.len(),
                ..ReuseStats::default()
            },
        };
        let mut upstream_dirty = false;
        // Indexes forms/entries/candidates in lockstep.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.forms.len() {
            let reuse = !upstream_dirty
                && self.entries[i].as_ref().is_some_and(|e| {
                    if candidates[i] {
                        self.reusable(e, weights)
                    } else {
                        // None of this form's reads drifted; only the
                        // factory replay invariant can still break (an
                        // upstream re-expansion allocating a different
                        // point sequence).
                        self.engine.factory_snapshot() == e.factory_pre
                    }
                });
            if reuse {
                let entry = self.entries[i].as_ref().expect("checked");
                self.engine.restore_factory(entry.factory_post.clone());
                unit.expansion.extend(entry.expansion.iter().cloned());
                unit.cores.extend(entry.cores.iter().cloned());
                unit.chunks.extend(entry.chunks.iter().cloned());
                unit.cfgs.extend(entry.cfgs.iter().cloned());
                unit.stats.reused += 1;
                if observe::enabled() {
                    observe::emit(observe::EventKind::CacheHit { form: i as u32 });
                }
                continue;
            }
            if observe::enabled() {
                observe::emit(observe::EventKind::CacheMiss {
                    form: i as u32,
                    reason: self.miss_reason(i, upstream_dirty, first_compile, weights),
                });
            }

            let form = self.forms[i].clone();
            let factory_pre = self.engine.factory_snapshot();
            self.engine.begin_profile_read_log();
            let syntax_out = self.engine.expander_mut().expand_form_to_syntax(&form)?;
            // Replay point generation so the core pass allocates the same
            // points the syntax pass did.
            self.engine.restore_factory(factory_pre.clone());
            let cores = self.engine.expander_mut().expand_form(&form)?;
            let reads = self.engine.take_profile_read_log();
            let factory_post = self.engine.factory_snapshot();
            // A re-expanded form that changed meta state (define-syntax
            // and friends) invalidates every later form in this compile.
            let meta = self.engine.expander_mut().take_meta_dirty();
            if meta {
                upstream_dirty = true;
            }

            let chunks: Vec<Chunk> = cores.iter().map(compile_chunk).collect();
            let cfgs: Vec<String> = chunks.iter().map(canonical_form).collect();
            let expansion: Vec<String> =
                syntax_out.iter().map(|s| s.to_datum().to_string()).collect();
            let profile_snapshot = reads.whole_profile.then(|| weights.clone());

            unit.expansion.extend(expansion.iter().cloned());
            unit.cores.extend(cores.iter().cloned());
            unit.chunks.extend(chunks.iter().cloned());
            unit.cfgs.extend(cfgs.iter().cloned());
            unit.stats.reexpanded += 1;

            self.unindex_entry(i);
            self.entries[i] = Some(FormEntry {
                reads,
                factory_pre,
                factory_post,
                expansion,
                cores,
                chunks,
                cfgs,
                profile_snapshot,
                meta,
            });
            self.index_entry(i);
        }
        self.last_weights = Some(weights.clone());
        observe::finish(compile_timer, |duration_us| {
            observe::EventKind::IncrementalCompile {
                forms: unit.stats.total_forms as u32,
                reused: unit.stats.reused as u32,
                reexpanded: unit.stats.reexpanded as u32,
                duration_us,
            }
        });
        Ok(unit)
    }

    /// Why form `i` cannot be served from cache — the trace-event reason
    /// vocabulary of `EventKind::CacheMiss`. Mirrors the checks of
    /// [`reusable`](IncrementalEngine::reusable) in order, so the reported
    /// reason is the first check that failed. Only called on the miss path
    /// with tracing enabled.
    fn miss_reason(
        &self,
        i: usize,
        upstream_dirty: bool,
        first_compile: bool,
        weights: &ProfileInformation,
    ) -> String {
        if upstream_dirty {
            return "meta-dirty".into();
        }
        let Some(entry) = self.entries[i].as_ref() else {
            // No cache entry: either nothing was ever compiled, or
            // `set_source` evicted it on a fingerprint change.
            return if first_compile {
                "first-compile".into()
            } else {
                "source-changed".into()
            };
        };
        let reads = &entry.reads;
        if reads.volatile_reads {
            return "volatile-reads".into();
        }
        if self.engine.factory_snapshot() != entry.factory_pre {
            return "factory-mismatch".into();
        }
        if let Some(avail) = reads.availability {
            if avail == weights.is_empty() {
                return "availability-flip".into();
            }
        }
        if reads.whole_profile && entry.profile_snapshot.as_ref() != Some(weights) {
            return "whole-profile".into();
        }
        for (p, w) in &reads.points {
            if (weights.weight(*p) - w).abs() > self.config.epsilon {
                return format!("drifted-point:{p}");
            }
        }
        // Every individual check passed, yet `compile` decided against
        // reuse — conservatively attribute it to upstream meta state.
        "meta-dirty".into()
    }

    /// Serializes the recompilation cache to `path` so a fresh process can
    /// warm-start with [`IncrementalEngine::load_state`]. The write is
    /// atomic (temp file + rename); the format is documented in
    /// [`crate::persist`].
    ///
    /// Forms that cannot be persisted are skipped, not errors: forms never
    /// compiled, forms with volatile profile reads, and forms whose core
    /// artifacts contain residual syntax objects (see
    /// [`pgmp_eval::core_to_datum`]). They simply re-expand on warm start —
    /// a sound degradation, never a wrong reuse.
    ///
    /// # Errors
    ///
    /// [`ProfileStoreError::Malformed`] if no compile has succeeded yet
    /// (there is no cache to save), or an I/O error from the atomic write.
    pub fn save_state(&self, path: impl AsRef<Path>) -> Result<SaveStats, Error> {
        let weights = self.last_weights.as_ref().ok_or_else(|| {
            ProfileStoreError::Malformed("cannot save session: no successful compile yet".into())
        })?;
        let file = self
            .forms
            .iter()
            .find_map(|f| f.first_source())
            .map(|s| s.file.as_str().to_owned())
            .unwrap_or_default();
        let mut stats = SaveStats {
            total_forms: self.forms.len(),
            ..SaveStats::default()
        };
        let mut rendered: Vec<String> = Vec::new();
        // One string table for the whole session: every core tree's file
        // names and global symbols serialize as indices into it.
        let mut table = StringTable::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let entry = match entry {
                Some(e) if !e.reads.volatile_reads => e,
                _ => {
                    stats.skipped += 1;
                    continue;
                }
            };
            if entry.meta {
                // Replayed at load: only the validation data is stored, the
                // artifacts are regenerated by the real expander.
                rendered.push(persist::form_entry_string(
                    i,
                    self.hashes[i],
                    true,
                    &entry.reads,
                    &entry.factory_pre,
                    &entry.factory_post,
                    &[],
                    &[],
                    &[],
                    None,
                ));
                stats.saved += 1;
                continue;
            }
            let cores: Option<Vec<Datum>> = entry
                .cores
                .iter()
                .map(|c| core_to_datum_with(c, &mut table))
                .collect();
            let Some(cores) = cores else {
                stats.skipped += 1;
                continue;
            };
            let chunk_ids: Vec<u32> = entry.chunks.iter().map(|c| c.id).collect();
            rendered.push(persist::form_entry_string(
                i,
                self.hashes[i],
                false,
                &entry.reads,
                &entry.factory_pre,
                &entry.factory_post,
                &entry.expansion,
                &cores,
                &chunk_ids,
                entry.profile_snapshot.as_ref(),
            ));
            stats.saved += 1;
        }
        let text = persist::session_string(&file, weights, table.symbols(), &rendered);
        let t = observe::timer();
        write_atomic(path.as_ref(), &text).map_err(|e| Error::Profile(ProfileStoreError::Io(e)))?;
        observe::finish(t, |duration_us| observe::EventKind::StoreWrite {
            path: path.as_ref().display().to_string(),
            kind: "session".to_string(),
            bytes: text.len() as u64,
            duration_us,
        });
        Ok(stats)
    }

    /// Restores a session saved by [`IncrementalEngine::save_state`],
    /// replacing this engine's cache. After a successful load against an
    /// unchanged program, the next [`compile`] under the stored weights
    /// reuses every form — **zero re-expansions** across the process
    /// boundary.
    ///
    /// Per form, in program order:
    ///
    /// - the stored fingerprint must match the current form's, and the
    ///   stored pre-expansion factory state must match the replayed chain —
    ///   otherwise the form is **skipped** (it re-expands on the next
    ///   compile; sound, never wrong reuse);
    /// - **meta** forms (`define-syntax` and friends) are replayed through
    ///   the real expander, re-registering their transformers. Their
    ///   meta-dirty flag is consumed *without* invalidating downstream
    ///   entries: the stored artifacts were recorded under this very macro
    ///   definition, as witnessed by the fingerprint check;
    /// - value forms are rehydrated from their stored artifacts and their
    ///   chunks recompiled (chunk ids are process-local; the old→new
    ///   mapping is reported in [`WarmStart::chunk_map`]).
    ///
    /// [`compile`]: IncrementalEngine::compile
    ///
    /// # Errors
    ///
    /// Typed [`ProfileStoreError`]s for I/O failures, malformed or
    /// version-incompatible session files (corruption never panics and
    /// never partially mutates the cache — parsing completes before any
    /// state changes), and expansion errors from meta-form replay.
    pub fn load_state(&mut self, path: impl AsRef<Path>) -> Result<WarmStart, Error> {
        let t = observe::timer();
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| Error::Profile(ProfileStoreError::Io(e)))?;
        observe::finish(t, |duration_us| observe::EventKind::StoreRead {
            path: path.as_ref().display().to_string(),
            kind: "session".to_string(),
            bytes: text.len() as u64,
            duration_us,
        });
        let session = persist::parse_session(&text).map_err(Error::Profile)?;
        let stored_weights = session.weights;
        let mut by_index: HashMap<usize, persist::StoredForm> = session
            .forms
            .into_iter()
            .map(|f| (f.index, f))
            .collect();

        self.engine.set_profile(stored_weights.clone());
        self.engine.reset_profile_points();
        // Engine setup (library installation) registers macros; that dirt
        // is not ours.
        let _ = self.engine.expander_mut().take_meta_dirty();

        let mut ws = WarmStart {
            total_forms: self.forms.len(),
            source_file: session.file,
            ..WarmStart::default()
        };
        for i in 0..self.forms.len() {
            let stored = by_index
                .remove(&i)
                .filter(|s| s.hash == self.hashes[i])
                .filter(|s| s.fpre == self.engine.factory_snapshot());
            let Some(stored) = stored else {
                // Missing entry, fingerprint drift, or a broken factory
                // chain: leave the slot cold. The factory chain is *not*
                // advanced, so downstream entries only restore if the
                // skipped form allocated no points — exactly the condition
                // under which their cached artifacts are still reachable.
                self.entries[i] = None;
                ws.skipped += 1;
                continue;
            };
            if stored.meta {
                // Replay through the real expander to re-register the
                // transformer; artifacts are regenerated, validation data
                // (reads, factory states) is taken from the live replay.
                let form = self.forms[i].clone();
                let factory_pre = self.engine.factory_snapshot();
                self.engine.begin_profile_read_log();
                let syntax_out = self.engine.expander_mut().expand_form_to_syntax(&form)?;
                self.engine.restore_factory(factory_pre.clone());
                let cores = self.engine.expander_mut().expand_form(&form)?;
                let reads = self.engine.take_profile_read_log();
                let factory_post = self.engine.factory_snapshot();
                // Consumed without cascading: downstream stored artifacts
                // were recorded under this same (fingerprint-checked) macro
                // definition.
                let _ = self.engine.expander_mut().take_meta_dirty();
                let chunks: Vec<Chunk> = cores.iter().map(compile_chunk).collect();
                let cfgs: Vec<String> = chunks.iter().map(canonical_form).collect();
                let expansion: Vec<String> =
                    syntax_out.iter().map(|s| s.to_datum().to_string()).collect();
                let profile_snapshot = reads.whole_profile.then(|| stored_weights.clone());
                self.entries[i] = Some(FormEntry {
                    reads,
                    factory_pre,
                    factory_post,
                    expansion,
                    cores,
                    chunks,
                    cfgs,
                    profile_snapshot,
                    meta: true,
                });
                ws.replayed_meta += 1;
            } else {
                let chunks: Vec<Chunk> = stored.cores.iter().map(compile_chunk).collect();
                for (old, new) in stored.chunk_ids.iter().zip(chunks.iter()) {
                    ws.chunk_map.push((*old, new.id));
                }
                let cfgs: Vec<String> = chunks.iter().map(canonical_form).collect();
                let profile_snapshot = stored
                    .snapshot
                    .or_else(|| stored.reads.whole_profile.then(|| stored_weights.clone()));
                self.engine.restore_factory(stored.fpost.clone());
                self.entries[i] = Some(FormEntry {
                    reads: stored.reads,
                    factory_pre: stored.fpre,
                    factory_post: stored.fpost,
                    expansion: stored.expansion,
                    cores: stored.cores,
                    chunks,
                    cfgs,
                    profile_snapshot,
                    meta: false,
                });
                ws.restored += 1;
            }
        }
        self.last_weights = Some(stored_weights);
        self.rebuild_index();
        Ok(ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmp_syntax::SourceObject;

    /// An `if-r` program with one profile-dependent form among plain ones.
    const PROGRAM: &str = "
      (define-syntax (if-r stx)
        (syntax-case stx ()
          [(_ test t-branch f-branch)
           (if (< (profile-query #'t-branch) (profile-query #'f-branch))
               #'(if (not test) f-branch t-branch)
               #'(if test t-branch f-branch))]))
      (define (plain-a x) (* x x))
      (define (plain-b x) (+ x 1))
      (define (classify n) (if-r (= n 0) 'rare 'common))
      (plain-a 3)";

    /// Profile points of the two `if-r` branches in `PROGRAM` above.
    fn branch_points(file: &str) -> (SourceObject, SourceObject) {
        let forms = read_str(PROGRAM, file).unwrap();
        let classify = &forms[3];
        let if_r = classify.as_list().unwrap()[2].clone();
        let elems = if_r.as_list().unwrap();
        (elems[2].source.unwrap(), elems[3].source.unwrap())
    }

    #[test]
    fn first_compile_expands_everything() {
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let unit = incr.compile(&ProfileInformation::empty()).unwrap();
        assert_eq!(unit.stats.total_forms, 5);
        assert_eq!(unit.stats.reexpanded, 5);
        assert_eq!(unit.stats.reused, 0);
        // define-syntax emits nothing; the other four forms do.
        assert_eq!(unit.cores.len(), 4);
        assert_eq!(unit.chunks.len(), 4);
    }

    #[test]
    fn unchanged_weights_reuse_everything() {
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let w = ProfileInformation::empty();
        let first = incr.compile(&w).unwrap();
        let second = incr.compile(&w).unwrap();
        assert!(second.stats.all_reused(), "stats: {:?}", second.stats);
        assert_eq!(first.expansion, second.expansion);
        assert_eq!(first.cfgs, second.cfgs);
    }

    #[test]
    fn weight_change_reexpands_only_dependent_forms() {
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let (t, f) = branch_points("i.scm");
        let w1 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1)], 1);
        let first = incr.compile(&w1).unwrap();
        assert!(first
            .expansion
            .iter()
            .any(|s| s.contains("(if (= n 0) (quote rare) (quote common))")));

        // Flip the branch weights: only `classify` consults them.
        let w2 = ProfileInformation::from_weights([(t, 0.1), (f, 0.9)], 1);
        let second = incr.compile(&w2).unwrap();
        assert_eq!(second.stats.reexpanded, 1);
        assert_eq!(second.stats.reused, 4);
        assert!(second
            .expansion
            .iter()
            .any(|s| s.contains("(if (not (= n 0)) (quote common) (quote rare))")));
    }

    #[test]
    fn epsilon_suppresses_small_changes() {
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig { epsilon: 0.2 }).unwrap();
        let (t, f) = branch_points("i.scm");
        let w1 = ProfileInformation::from_weights([(t, 0.5), (f, 0.4)], 1);
        incr.compile(&w1).unwrap();
        // Within epsilon: reuse; crossing epsilon: re-expand.
        let near = ProfileInformation::from_weights([(t, 0.45), (f, 0.5)], 1);
        assert!(incr.compile(&near).unwrap().stats.all_reused());
        let far = ProfileInformation::from_weights([(t, 0.1), (f, 0.9)], 1);
        let unit = incr.compile(&far).unwrap();
        assert_eq!(unit.stats.reexpanded, 1);
    }

    #[test]
    fn availability_flip_invalidates_availability_readers() {
        let src = "
          (define-syntax (maybe stx)
            (syntax-case stx ()
              [(_ e) (if (profile-data-available?) #'e #''untrained)]))
          (maybe 42)";
        let mut incr =
            IncrementalEngine::new(src, "a.scm", IncrementalConfig::default()).unwrap();
        let first = incr.compile(&ProfileInformation::empty()).unwrap();
        assert!(first.expansion.iter().any(|s| s.contains("untrained")));
        let p = SourceObject::new("other.scm", 0, 1);
        let trained = ProfileInformation::from_weights([(p, 1.0)], 1);
        let second = incr.compile(&trained).unwrap();
        assert_eq!(second.stats.reexpanded, 1, "stats: {:?}", second.stats);
        assert!(second.expansion.iter().any(|s| s == "42"));
    }

    #[test]
    fn changed_define_syntax_invalidates_downstream() {
        let v1 = "(define-syntax (k stx) (syntax-case stx () [(_ ) #'1]))\n(k)\n(+ 2 3)";
        let v2 = "(define-syntax (k stx) (syntax-case stx () [(_ ) #'9]))\n(k)\n(+ 2 3)";
        let mut incr =
            IncrementalEngine::new(v1, "d.scm", IncrementalConfig::default()).unwrap();
        let w = ProfileInformation::empty();
        let first = incr.compile(&w).unwrap();
        assert!(first.expansion.contains(&"1".to_owned()));
        incr.set_source(v2, "d.scm").unwrap();
        let second = incr.compile(&w).unwrap();
        // The changed define-syntax re-expands, and so does everything
        // after it (the macro's meaning changed); nothing is stale.
        assert!(second.expansion.contains(&"9".to_owned()));
        assert_eq!(second.stats.reexpanded, 3);
    }

    #[test]
    fn set_source_keeps_unchanged_prefix() {
        let v1 = "(define (a x) x)\n(define (b x) x)";
        let v2 = "(define (a x) x)\n(define (b x) (+ x 1))";
        let mut incr =
            IncrementalEngine::new(v1, "s.scm", IncrementalConfig::default()).unwrap();
        let w = ProfileInformation::empty();
        incr.compile(&w).unwrap();
        incr.set_source(v2, "s.scm").unwrap();
        let unit = incr.compile(&w).unwrap();
        assert_eq!(unit.stats.reused, 1);
        assert_eq!(unit.stats.reexpanded, 1);
    }

    #[test]
    fn inserted_toplevel_form_no_longer_dirties_downstream() {
        // Before LCS alignment, inserting `zz` shifted every later form's
        // positional fingerprint and re-expanded the whole program.
        let v1 = "(define (a x) x)\n(define (b x) x)\n(define (c x) x)";
        let v2 =
            "(define (zz x) (* x 2))\n(define (a x) x)\n(define (b x) x)\n(define (c x) x)";
        let mut incr =
            IncrementalEngine::new(v1, "s.scm", IncrementalConfig::default()).unwrap();
        let w = ProfileInformation::empty();
        incr.compile(&w).unwrap();
        incr.set_source(v2, "s.scm").unwrap();
        let unit = incr.compile(&w).unwrap();
        assert_eq!(unit.stats.reexpanded, 1, "stats: {:?}", unit.stats);
        assert_eq!(unit.stats.reused, 3);
        // Deleting it again re-aligns back: nothing re-expands.
        incr.set_source(v1, "s.scm").unwrap();
        let unit = incr.compile(&w).unwrap();
        assert!(unit.stats.all_reused(), "stats: {:?}", unit.stats);
    }

    #[test]
    fn shifted_profile_reads_rekey_through_the_alignment() {
        // A profile-dependent form that merely *moved* keeps its cache
        // entry, with its recorded reads re-keyed to the shifted spans —
        // so a rebased profile (weights on the new spans) reuses it.
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let (t, f) = branch_points("i.scm");
        let w1 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1)], 1);
        let first = incr.compile(&w1).unwrap();

        let prefix = "(define (zz q) q)\n";
        let shifted_src = format!("{prefix}{PROGRAM}");
        incr.set_source(&shifted_src, "i.scm").unwrap();
        let shift = prefix.len() as u32;
        let t2 = SourceObject {
            file: t.file,
            bfp: t.bfp + shift,
            efp: t.efp + shift,
        };
        let f2 = SourceObject {
            file: f.file,
            bfp: f.bfp + shift,
            efp: f.efp + shift,
        };
        let w2 = ProfileInformation::from_weights([(t2, 0.9), (f2, 0.1)], 1);
        let unit = incr.compile(&w2).unwrap();
        assert_eq!(unit.stats.reexpanded, 1, "only zz is new: {:?}", unit.stats);
        assert_eq!(unit.stats.reused, 5);
        // The reused profile-guided expansion is the one those weights
        // picked originally.
        let hot = first
            .expansion
            .iter()
            .find(|s| s.contains("rare"))
            .unwrap();
        assert!(unit.expansion.iter().any(|s| &s == &hot));
    }

    #[test]
    fn reused_chunks_keep_their_ids() {
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let w = ProfileInformation::empty();
        let first = incr.compile(&w).unwrap();
        let second = incr.compile(&w).unwrap();
        let ids1: Vec<u32> = first.chunks.iter().map(|c| c.id).collect();
        let ids2: Vec<u32> = second.chunks.iter().map(|c| c.id).collect();
        assert_eq!(ids1, ids2, "block counters stay valid across reuse");
    }

    #[test]
    fn unrelated_point_drift_reuses_everything() {
        // A drifted point nobody reads must not invalidate any form: the
        // inverted index finds no readers and the per-form scan is skipped.
        let mut incr =
            IncrementalEngine::new(PROGRAM, "i.scm", IncrementalConfig::default()).unwrap();
        let (t, f) = branch_points("i.scm");
        let w1 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1)], 1);
        incr.compile(&w1).unwrap();
        let stranger = SourceObject::new("elsewhere.scm", 10, 20);
        let w2 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1), (stranger, 0.7)], 1);
        let unit = incr.compile(&w2).unwrap();
        assert!(unit.stats.all_reused(), "stats: {:?}", unit.stats);
    }

    #[test]
    fn failed_compile_falls_back_to_full_checking() {
        // After an error mid-compile the cache may hold entries recorded
        // under mixed weights; the next compile must not trust the drift
        // diff (last_weights is cleared) and still produce correct output.
        let src = "
          (define-syntax (trap stx)
            (syntax-case stx ()
              [(_ e)
               (if (> (profile-query #'e) 0.5)
                   (boom)
                   #'e)]))
          (define (f) (trap (+ 1 2)))";
        let forms = read_str(src, "t.scm").unwrap();
        let point = forms[1].as_list().unwrap()[2].as_list().unwrap()[1]
            .first_source()
            .unwrap();
        let mut incr =
            IncrementalEngine::new(src, "t.scm", IncrementalConfig::default()).unwrap();
        incr.compile(&ProfileInformation::empty()).unwrap();
        let hot = ProfileInformation::from_weights([(point, 1.0)], 1);
        assert!(incr.compile(&hot).is_err(), "hot trap must fail");
        let cold = ProfileInformation::from_weights([(point, 0.1)], 1);
        let unit = incr.compile(&cold).unwrap();
        assert!(unit.expansion.iter().any(|s| s.contains("(+ 1 2)")));
    }

    #[test]
    fn cached_forms_replay_without_slot_re_resolution() {
        // Dense-counter slot ids are cached on Core nodes; reused forms
        // hand back the *same* nodes, so their slots survive recompilation
        // and re-instrumentation interns nothing new.
        use pgmp_eval::resolve_profile_slots;
        use pgmp_profiler::Counters;

        let mut incr =
            IncrementalEngine::new(PROGRAM, "slot.scm", IncrementalConfig::default()).unwrap();
        let (t, f) = branch_points("slot.scm");
        let w1 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1)], 1);
        let first = incr.compile(&w1).unwrap();

        let counters = Counters::new();
        for core in &first.cores {
            resolve_profile_slots(core, &counters);
        }
        let resolved = counters.resolved_slots();
        assert!(resolved > 0);
        let slot_t = counters.resolve(t);
        let slot_f = counters.resolve(f);

        // Flip the branch weights: only `classify` re-expands.
        let w2 = ProfileInformation::from_weights([(t, 0.1), (f, 0.9)], 1);
        let second = incr.compile(&w2).unwrap();
        assert_eq!(second.stats.reused, 4);

        // Reused forms are the identical nodes, already carrying their
        // cached slots for this registry; re-resolving them interns
        // nothing.
        let reused: Vec<_> = second
            .cores
            .iter()
            .filter(|c| first.cores.iter().any(|o| Rc::ptr_eq(o, c)))
            .collect();
        assert!(!reused.is_empty());
        for core in &reused {
            assert!(core.cached_slot(counters.map_id()).is_some());
            resolve_profile_slots(core, &counters);
        }
        assert_eq!(counters.resolved_slots(), resolved, "reused forms re-resolved");

        // The re-expanded form may mint new points (its shape changed),
        // but every pre-existing point keeps its original slot.
        for core in &second.cores {
            resolve_profile_slots(core, &counters);
        }
        assert_eq!(counters.resolve(t), slot_t, "slot ids must be stable");
        assert_eq!(counters.resolve(f), slot_f, "slot ids must be stable");
        assert!(counters.resolved_slots() >= resolved);
    }

    #[test]
    fn warm_start_reuses_everything_across_processes() {
        // "Process 1": compile under real weights and save the session.
        let dir = std::env::temp_dir().join(format!("pgmp-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pgmp");
        let (t, f) = branch_points("w.scm");
        let w = ProfileInformation::from_weights([(t, 0.1), (f, 0.9)], 1);
        let first = {
            let mut incr =
                IncrementalEngine::new(PROGRAM, "w.scm", IncrementalConfig::default()).unwrap();
            let unit = incr.compile(&w).unwrap();
            let stats = incr.save_state(&path).unwrap();
            assert_eq!(stats.total_forms, 5);
            assert_eq!(stats.saved, 5, "stats: {stats:?}");
            unit
        };

        // "Process 2": fresh engine, same program, load the session.
        let mut incr =
            IncrementalEngine::new(PROGRAM, "w.scm", IncrementalConfig::default()).unwrap();
        let ws = incr.load_state(&path).unwrap();
        assert_eq!(ws.skipped, 0, "warm start: {ws:?}");
        assert_eq!(ws.replayed_meta, 1, "the define-syntax form replays");
        assert_eq!(ws.restored, 4);
        assert_eq!(ws.source_file, "w.scm");
        assert_eq!(ws.chunk_map.len(), 4, "one chunk per restored value form");

        // The acceptance criterion: zero re-expansions on the warm path.
        let unit = incr.compile(&w).unwrap();
        assert!(unit.stats.all_reused(), "stats: {:?}", unit.stats);
        assert_eq!(unit.expansion, first.expansion);
        assert_eq!(unit.cfgs, first.cfgs);

        // And the cache is still *live*: flipping the branch weights after
        // a warm start re-expands exactly the dependent form.
        let w2 = ProfileInformation::from_weights([(t, 0.9), (f, 0.1)], 1);
        let unit = incr.compile(&w2).unwrap();
        assert_eq!(unit.stats.reexpanded, 1, "stats: {:?}", unit.stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_skips_changed_forms_only() {
        let dir = std::env::temp_dir().join(format!("pgmp-warmskip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pgmp");
        // Same-length edit: form `b` changes, `c`'s byte offsets (and so
        // its fingerprint — source positions are profile points) do not.
        let v1 = "(define (a x) x)\n(define (b x) x)\n(define (c x) x)";
        let v2 = "(define (a x) x)\n(define (b y) y)\n(define (c x) x)";
        let w = ProfileInformation::empty();
        {
            let mut incr =
                IncrementalEngine::new(v1, "s.scm", IncrementalConfig::default()).unwrap();
            incr.compile(&w).unwrap();
            incr.save_state(&path).unwrap();
        }
        // The program changed between processes: only the changed form
        // misses; `a` and `c` restore (none of these forms allocates
        // generated points, so the factory chain over the gap holds).
        let mut incr =
            IncrementalEngine::new(v2, "s.scm", IncrementalConfig::default()).unwrap();
        let ws = incr.load_state(&path).unwrap();
        assert_eq!(ws.restored, 2, "warm start: {ws:?}");
        assert_eq!(ws.skipped, 1);
        let unit = incr.compile(&w).unwrap();
        assert_eq!(unit.stats.reexpanded, 1, "stats: {:?}", unit.stats);
        assert_eq!(unit.stats.reused, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_skips_volatile_forms_and_load_recovers() {
        // A form with volatile reads (make-profile-point allocation order
        // matters) is persisted; one with volatile queries is not. Here we
        // use the generated-points program: its `tag` uses
        // make-profile-point, whose reads ARE diffable, so everything
        // persists — the volatile path is exercised via random-juice in
        // api tests; what we check here is that generated points survive
        // the round trip.
        let src = "
          (define-syntax (tag stx)
            (syntax-case stx ()
              [(_ e)
               (let ([p (make-profile-point #'e)])
                 (if (> (profile-query p) 0.5)
                     #'(quote hot)
                     (annotate-expr #'e p)))]))
          (define (u) (tag (+ 1 1)))
          (define (v) (tag (+ 2 2)))";
        let dir = std::env::temp_dir().join(format!("pgmp-warmgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pgmp");
        let forms = read_str(src, "g.scm").unwrap();
        let mut factory = SourceFactory::new();
        let base_u = forms[1].as_list().unwrap()[2].as_list().unwrap()[1].first_source();
        let base_v = forms[2].as_list().unwrap()[2].as_list().unwrap()[1].first_source();
        let _pu = factory.make_profile_point(base_u);
        let pv = factory.make_profile_point(base_v);
        let w = ProfileInformation::from_weights([(pv, 1.0)], 1);
        let first = {
            let mut incr =
                IncrementalEngine::new(src, "g.scm", IncrementalConfig::default()).unwrap();
            let unit = incr.compile(&w).unwrap();
            incr.save_state(&path).unwrap();
            unit
        };
        let mut incr =
            IncrementalEngine::new(src, "g.scm", IncrementalConfig::default()).unwrap();
        let ws = incr.load_state(&path).unwrap();
        assert_eq!(ws.skipped, 0, "warm start: {ws:?}");
        let unit = incr.compile(&w).unwrap();
        assert!(unit.stats.all_reused(), "stats: {:?}", unit.stats);
        assert_eq!(unit.expansion, first.expansion);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_session_files_error_without_panic() {
        let dir = std::env::temp_dir().join(format!("pgmp-warmbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pgmp");
        let w = ProfileInformation::empty();
        let mut incr =
            IncrementalEngine::new(PROGRAM, "c.scm", IncrementalConfig::default()).unwrap();
        incr.compile(&w).unwrap();
        incr.save_state(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        let corpus: Vec<String> = vec![
            String::new(),
            "(".to_owned(),
            "(not-a-session)".to_owned(),
            "(pgmp-session)".to_owned(),
            "(pgmp-session (version 99))".to_owned(),
            "(pgmp-session (version 1) (form -1 \"00\"))".to_owned(),
            "(pgmp-session (version 1) (form 0 \"zz\"))".to_owned(),
            "(pgmp-session (version 1) (form 0 \"aa\" (cores (bogus))))".to_owned(),
            good[..good.len() / 2].to_owned(), // truncated mid-file
            good.replace("fpre", "fprE"),      // bit-flipped tag
        ];
        for (i, bad) in corpus.iter().enumerate() {
            std::fs::write(&path, bad).unwrap();
            let mut fresh =
                IncrementalEngine::new(PROGRAM, "c.scm", IncrementalConfig::default()).unwrap();
            let err = fresh.load_state(&path);
            assert!(
                matches!(err, Err(Error::Profile(_))),
                "case {i} must fail with a typed error: {err:?}"
            );
            // And the engine still works after the failed load.
            assert!(fresh.compile(&w).is_ok(), "case {i} poisoned the engine");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_before_compile_is_a_typed_error() {
        let incr =
            IncrementalEngine::new(PROGRAM, "e.scm", IncrementalConfig::default()).unwrap();
        let err = incr.save_state("/nonexistent/never-written.pgmp");
        assert!(matches!(err, Err(Error::Profile(_))), "{err:?}");
    }

    #[test]
    fn generated_points_are_replayed_across_mixed_reuse() {
        // Two forms that each allocate a generated profile point; when the
        // second is invalidated and re-expanded, it must get the *same*
        // generated point as in a from-scratch compile (factory state is
        // fast-forwarded over the reused first form).
        let src = "
          (define-syntax (tag stx)
            (syntax-case stx ()
              [(_ e)
               (let ([p (make-profile-point #'e)])
                 (if (> (profile-query p) 0.5)
                     #'(quote hot)
                     (annotate-expr #'e p)))]))
          (define (u) (tag (+ 1 1)))
          (define (v) (tag (+ 2 2)))";
        let mut incr =
            IncrementalEngine::new(src, "g.scm", IncrementalConfig::default()).unwrap();
        let first = incr.compile(&ProfileInformation::empty()).unwrap();

        // Find the generated point that the second `tag` consulted, then
        // heat it: only form 3 (`v`) re-expands.
        let forms = read_str(src, "g.scm").unwrap();
        let mut factory = SourceFactory::new();
        let base_u = forms[1].as_list().unwrap()[2].as_list().unwrap()[1].first_source();
        let base_v = forms[2].as_list().unwrap()[2].as_list().unwrap()[1].first_source();
        let _pu = factory.make_profile_point(base_u);
        let pv = factory.make_profile_point(base_v);
        let w = ProfileInformation::from_weights([(pv, 1.0)], 1);
        let second = incr.compile(&w).unwrap();
        assert_eq!(second.stats.reused, 2, "stats: {:?}", second.stats);
        assert_eq!(second.stats.reexpanded, 1);
        assert!(second.expansion.iter().any(|s| s.contains("(quote hot)")));
        assert_eq!(first.expansion[0], second.expansion[0]);

        // Oracle: a fresh engine under the same weights prints the same.
        let mut fresh = Engine::new();
        fresh.set_profile(w);
        let scratch = fresh.expand_str(src, "g.scm").unwrap();
        let scratch: Vec<String> = scratch.iter().map(|s| s.to_datum().to_string()).collect();
        assert_eq!(second.expansion, scratch);
    }
}
