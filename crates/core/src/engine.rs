//! The compilation engine: one profile-guided compilation session.

use crate::api::{install_pgmp_api, PgmpState};
use crate::error::Error;
use pgmp_eval::{install_primitives, resolve_profile_slots, Interp, Value};
use pgmp_observe as observe;
use pgmp_expander::{install_expander_support, Expander};
use pgmp_profiler::{
    CounterImpl, Counters, ProfileInformation, ProfileMode, Provenance, StoredProfile,
};
use pgmp_reader::read_str;
use pgmp_syntax::Syntax;
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

/// How `annotate-expr` attaches a profile point to an expression — the
/// axis along which the paper's two implementations differ (§4.1–4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AnnotateStrategy {
    /// Chez model: set the expression's source object directly. Pairs with
    /// [`ProfileMode::EveryExpression`].
    #[default]
    Direct,
    /// Racket `errortrace` model: wrap the expression in a generated
    /// thunk and annotate the *call*, because the profiler counts only
    /// function calls. Pairs with [`ProfileMode::CallsOnly`].
    WrapLambda,
}

/// A profile-guided compilation session.
///
/// Owns the macro expander (whose meta interpreter has the PGMP API
/// installed), the runtime interpreter, profile state, and counters. See
/// the crate-level quickstart.
pub struct Engine {
    expander: Expander,
    interp: Interp,
    state: Rc<RefCell<PgmpState>>,
    mode: ProfileMode,
    warnings: Vec<String>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Creates an engine with the Chez-style [`AnnotateStrategy::Direct`].
    pub fn new() -> Engine {
        Engine::with_strategy(AnnotateStrategy::Direct)
    }

    /// Creates an engine with the given annotation strategy.
    pub fn with_strategy(strategy: AnnotateStrategy) -> Engine {
        let state = Rc::new(RefCell::new(PgmpState::new(strategy)));
        let mut expander = Expander::new();
        install_pgmp_api(&mut expander.meta, state.clone());
        let mut interp = Interp::new();
        install_primitives(&mut interp);
        install_expander_support(&mut interp);
        install_pgmp_api(&mut interp, state.clone());
        Engine {
            expander,
            interp,
            state,
            mode: ProfileMode::Off,
            warnings: Vec::new(),
        }
    }

    /// Chooses the profiler model for subsequent runs. Off by default —
    /// "when the program is not instrumented … profile points need not
    /// introduce any overhead" (§3.1).
    pub fn set_instrumentation(&mut self, mode: ProfileMode) {
        self.mode = mode;
    }

    /// Selects the counter representation for this session's instrumented
    /// runs: dense slot-indexed (the default), the legacy hash-keyed
    /// baseline, or statistical sampling (beacon + sampler thread at
    /// [`pgmp_profiler::DEFAULT_SAMPLE_HZ`]; use [`Engine::set_sampling`]
    /// to pick the rate). Replaces the session counters, so call it before
    /// the first instrumented run.
    pub fn set_counter_impl(&mut self, kind: CounterImpl) {
        self.state.borrow_mut().counters = Counters::with_impl(kind);
    }

    /// Switches this session to sampling counters with a sampler thread
    /// ticking at `hz`. Subsequent instrumented runs cost one relaxed
    /// beacon store per profile point; weights are estimated from samples.
    pub fn set_sampling(&mut self, hz: u32) {
        self.state.borrow_mut().counters = Counters::with_sampling(hz);
    }

    /// Replaces the session counter registry wholesale. This is the
    /// embedding hook for registries the convenience setters cannot build
    /// — e.g. a manually driven sampling registry
    /// ([`Counters::sampling_manual`]) in deterministic tests.
    pub fn set_counters(&mut self, counters: Counters) {
        self.state.borrow_mut().counters = counters;
    }

    /// The counter representation behind this session's registry.
    pub fn counter_impl(&self) -> CounterImpl {
        self.state.borrow().counters.impl_kind()
    }

    /// Replaces the loaded profile information (what meta-programs see).
    pub fn set_profile(&mut self, info: ProfileInformation) {
        self.state.borrow_mut().profile = info;
    }

    /// Merges `info` into the loaded profile (dataset averaging, §3.2).
    pub fn merge_profile(&mut self, info: &ProfileInformation) {
        let mut st = self.state.borrow_mut();
        st.profile = st.profile.merge(info);
    }

    /// The currently loaded profile information.
    pub fn profile(&self) -> ProfileInformation {
        self.state.borrow().profile.clone()
    }

    /// Live counters of this session's instrumented runs.
    pub fn counters(&self) -> Counters {
        self.state.borrow().counters.clone()
    }

    /// Profile weights computed from this session's counters — what
    /// `store-profile` would write (§4.1).
    pub fn current_weights(&self) -> ProfileInformation {
        ProfileInformation::from_dataset(&self.state.borrow().counters.snapshot())
    }

    /// Writes this session's weights to `path` (Figure 4 `store-profile`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Profile`] on I/O failure.
    pub fn store_profile(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        self.current_weights().store_file(path)?;
        Ok(())
    }

    /// Loads profile information from `path`, replacing the current
    /// profile (Figure 4 `load-profile`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Profile`] on I/O or parse failure.
    pub fn load_profile(&mut self, path: impl AsRef<Path>) -> Result<(), Error> {
        let info = ProfileInformation::load_file(path)?;
        self.set_profile(info);
        Ok(())
    }

    /// Writes this session's weights to `path` in profile format **v2**,
    /// carrying the dense slot table alongside the weights so a future
    /// process can preload its counter registry and skip re-interning
    /// (see `docs/PROFILE_FORMAT.md`). Sessions using the hash counter
    /// backend have no slot table; the v2 file then carries weights only.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Profile`] on I/O failure.
    pub fn store_profile_v2(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let (slots, provenance) = {
            let st = self.state.borrow();
            let provenance = match st.counters.sample_hz() {
                Some(hz) => Provenance::Sampled { hz },
                None => Provenance::Exact,
            };
            (st.counters.slot_table(), provenance)
        };
        StoredProfile::v2(self.current_weights(), slots)
            .with_provenance(provenance)
            .store_file(path)?;
        Ok(())
    }

    /// Loads a profile of either format version, replacing the current
    /// profile — and, when the file is v2 with a slot table and this
    /// session uses dense counters, replaces the counter registry with one
    /// preloaded from the stored table: every persisted point keeps its
    /// slot id and instrumentation interns nothing on the warm path.
    ///
    /// Returns the file's format version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Profile`] on I/O or parse failure.
    pub fn load_profile_with_slots(&mut self, path: impl AsRef<Path>) -> Result<u32, Error> {
        let stored = StoredProfile::load_file(path)?;
        if let Some(table) = stored.slots {
            match self.counter_impl() {
                CounterImpl::Dense => {
                    self.state.borrow_mut().counters = Counters::with_slot_table(table);
                }
                CounterImpl::Sampling => {
                    // Preserve the session's sampler rate; only a registry
                    // with a live sampler thread is replaced (a manually
                    // driven one keeps its deterministic test harness).
                    let mut st = self.state.borrow_mut();
                    if st.counters.has_sampler_thread() {
                        let hz = st.counters.sample_hz().unwrap_or(0);
                        st.counters = Counters::with_slot_table_sampling(table, hz);
                    }
                }
                CounterImpl::Hash => {}
            }
        }
        self.set_profile(stored.info);
        Ok(stored.version)
    }

    /// Resets the deterministic profile-point generator, replaying the
    /// suffix sequence from the start — call between two compilations of
    /// the *same* program within one session so both see identical
    /// generated points (§4.1's determinism requirement).
    pub fn reset_profile_points(&mut self) {
        self.state.borrow_mut().factory.reset();
    }

    /// Snapshots the profile-point generator's allocation state. Combined
    /// with [`Engine::restore_factory`], the incremental cache replays
    /// point generation exactly: a reused form fast-forwards the factory
    /// to the state its original expansion left behind.
    pub fn factory_snapshot(&self) -> pgmp_syntax::SourceFactory {
        self.state.borrow().factory.clone()
    }

    /// Restores a previously snapshotted factory state.
    pub fn restore_factory(&mut self, factory: pgmp_syntax::SourceFactory) {
        self.state.borrow_mut().factory = factory;
    }

    /// Starts recording profile reads (the read-set) made by subsequently
    /// expanded forms. See [`ProfileReadLog`](crate::api::ProfileReadLog).
    pub fn begin_profile_read_log(&mut self) {
        self.state.borrow_mut().read_log = Some(crate::api::ProfileReadLog::default());
    }

    /// Stops recording and returns the accumulated read-set (empty if
    /// recording was never started).
    ///
    /// The log is deduplicated: a meta-program that queries the same point
    /// many times (e.g. sorting clauses compares weights O(k log k) times)
    /// contributes one entry per point. The profile is fixed for the
    /// duration of an expansion, so repeats answer identically and add
    /// nothing to the read-set.
    pub fn take_profile_read_log(&mut self) -> crate::api::ProfileReadLog {
        let mut log = self.state.borrow_mut().read_log.take().unwrap_or_default();
        log.points.sort_by_key(|a| a.0);
        log.points.dedup_by(|a, b| a.0 == b.0);
        log
    }

    /// Access to the runtime interpreter (e.g. to inspect globals).
    pub fn interp(&self) -> &Interp {
        &self.interp
    }

    /// Mutable access to the runtime interpreter.
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// Access to the expander (e.g. to register extra macros).
    pub fn expander_mut(&mut self) -> &mut Expander {
        &mut self.expander
    }

    /// Compile-time warnings accumulated so far (e.g. the §6.3
    /// data-structure recommendations), drained.
    pub fn take_warnings(&mut self) -> Vec<String> {
        let mut out = std::mem::take(&mut self.warnings);
        out.extend(self.expander.take_warnings());
        out
    }

    /// Output printed by the program (via `display`/`printf`), drained.
    pub fn take_output(&mut self) -> String {
        self.interp.take_output()
    }

    /// Expands and evaluates `src`, returning the last form's value.
    ///
    /// Instrumentation (per [`Engine::set_instrumentation`]) counts into
    /// this session's counters.
    ///
    /// # Errors
    ///
    /// Returns the first read, expand, or eval error.
    pub fn run_str(&mut self, src: &str, file: &str) -> Result<Value, Error> {
        let forms = read_str(src, file)?;
        let program = self.expander.expand_program(&forms)?;
        self.warnings.extend(self.expander.take_warnings());
        if self.mode.is_on() {
            let counters = self.state.borrow().counters.clone();
            if counters.map_id() != 0 {
                // Slotted registry (dense or sampling): resolve every
                // profile point to its slot now, at instrumentation time,
                // so the run itself never interns — each hit is a
                // cached-slot vector add (dense) or beacon store
                // (sampling).
                let t = observe::timer();
                for form in &program {
                    resolve_profile_slots(form, &counters);
                }
                if t.is_some() {
                    let mut resolved: u32 = 0;
                    for form in &program {
                        form.walk(&mut |n| resolved += u32::from(n.src.is_some()));
                    }
                    observe::finish(t, |duration_us| observe::EventKind::SlotResolve {
                        resolved,
                        duration_us,
                    });
                }
            }
            self.interp.set_profiling(self.mode, counters);
        } else {
            self.interp.clear_profiling();
        }
        let t = observe::timer();
        let mut last = Value::Unspecified;
        let mut failure = None;
        for form in &program {
            match self.interp.eval(form, &None) {
                Ok(v) => last = v,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // The run is over (normally or not): park the sampling beacon so
        // between-run samples attribute nothing, and publish sampler totals
        // into the metrics registry at this boundary.
        if let Some(counters) = &self.interp.counters {
            counters.park();
            if let Some(shared) = counters.sampling_shared() {
                shared.publish_metrics();
            }
        }
        observe::finish(t, |duration_us| observe::EventKind::Run {
            file: file.to_string(),
            mode: match self.mode {
                ProfileMode::Off => "none",
                ProfileMode::EveryExpression => "every-expression",
                ProfileMode::CallsOnly => "calls-only",
            }
            .to_string(),
            duration_us,
        });
        match failure {
            Some(e) => Err(e.into()),
            None => Ok(last),
        }
    }

    /// Reads and runs the program in the file at `path`, using the file
    /// name for source objects.
    ///
    /// # Errors
    ///
    /// I/O failures are reported as [`Error::Profile`]-style read errors;
    /// compilation and evaluation errors as in [`Engine::run_str`].
    pub fn run_file(&mut self, path: impl AsRef<Path>) -> Result<Value, Error> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| {
            Error::Read(pgmp_reader::ReadError {
                message: format!("cannot read file: {e}"),
                file: path.display().to_string(),
                at: 0,
            })
        })?;
        self.run_str(&src, &path.display().to_string())
    }

    /// Loads library source (same as [`Engine::run_str`]; reads more
    /// naturally at call sites that load prelude files).
    ///
    /// # Errors
    ///
    /// As [`Engine::run_str`].
    pub fn load_library(&mut self, src: &str, file: &str) -> Result<(), Error> {
        self.run_str(src, file)?;
        Ok(())
    }

    /// Expands `src` source-to-source: all macros eliminated, core forms
    /// kept. This is how examples and tests inspect what a profile-guided
    /// meta-program generated.
    ///
    /// # Errors
    ///
    /// Returns the first read or expand error.
    pub fn expand_str(&mut self, src: &str, file: &str) -> Result<Vec<Rc<Syntax>>, Error> {
        let forms = read_str(src, file)?;
        let out = self.expander.expand_to_syntax(&forms)?;
        self.warnings.extend(self.expander.take_warnings());
        Ok(out)
    }

    /// Expands `src` to core forms without evaluating (used by the
    /// three-pass workflow to feed the bytecode compiler).
    ///
    /// # Errors
    ///
    /// Returns the first read or expand error.
    pub fn expand_to_core(
        &mut self,
        src: &str,
        file: &str,
    ) -> Result<Vec<Rc<pgmp_eval::Core>>, Error> {
        let forms = read_str(src, file)?;
        let out = self.expander.expand_program(&forms)?;
        self.warnings.extend(self.expander.take_warnings());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_simple_program() {
        let mut e = Engine::new();
        let v = e.run_str("(+ 1 2)", "t.scm").unwrap();
        assert_eq!(v.to_string(), "3");
    }

    #[test]
    fn instrumented_run_counts_expressions() {
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        e.run_str("(define (f) 'x) (f) (f) (f)", "t.scm").unwrap();
        let weights = e.current_weights();
        assert!(!weights.is_empty());
    }

    #[test]
    fn hash_counter_impl_counts_like_dense() {
        let program = "(define (f n) (* n n)) (f 2) (f 3) (f 4)";
        let mut dense = Engine::new();
        assert_eq!(dense.counter_impl(), CounterImpl::Dense);
        dense.set_instrumentation(ProfileMode::EveryExpression);
        dense.run_str(program, "ci.scm").unwrap();

        let mut hash = Engine::new();
        hash.set_counter_impl(CounterImpl::Hash);
        assert_eq!(hash.counter_impl(), CounterImpl::Hash);
        hash.set_instrumentation(ProfileMode::EveryExpression);
        hash.run_str(program, "ci.scm").unwrap();

        assert_eq!(dense.counters().snapshot(), hash.counters().snapshot());
    }

    #[test]
    fn uninstrumented_run_counts_nothing() {
        let mut e = Engine::new();
        e.run_str("(define (f) 'x) (f)", "t.scm").unwrap();
        assert!(e.counters().is_empty());
    }

    #[test]
    fn profile_guided_expansion_sees_weights() {
        // A macro that embeds the queried weight as a constant.
        let program = "(define-syntax (weight-of stx)
                          (syntax-case stx ()
                            [(_ e) #`#,(datum->syntax stx (profile-query #'e))]))
                        (weight-of (hot-spot))";
        let mut e1 = Engine::new();
        e1.set_instrumentation(ProfileMode::EveryExpression);
        // Run something at the same source location to create weights: the
        // location of (hot-spot) inside `program` text.
        // Simpler: run the program uninstrumented first to find it returns 0.
        let v = e1.run_str(program, "w.scm");
        // (hot-spot) is unbound at runtime but weight-of never evaluates it.
        assert_eq!(v.unwrap().to_string(), "0.0");
    }

    #[test]
    fn output_and_warning_capture() {
        let mut e = Engine::new();
        e.run_str("(display \"hi\") (newline)", "t.scm").unwrap();
        assert_eq!(e.take_output(), "hi\n");
        e.run_str(
            "(define-syntax (w stx)
               (syntax-case stx ()
                 [(_ ) (begin (warn \"meta warning ~a\" 1) #''ok)]))
             (w)",
            "t.scm",
        )
        .unwrap();
        assert_eq!(e.take_warnings(), vec!["meta warning 1"]);
    }

    #[test]
    fn profile_round_trip_through_engine() {
        let dir = std::env::temp_dir().join("pgmp-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.pgmp");
        let mut e1 = Engine::new();
        e1.set_instrumentation(ProfileMode::EveryExpression);
        e1.run_str("(define (f n) (* n n)) (f 2) (f 3)", "p.scm").unwrap();
        e1.store_profile(&path).unwrap();
        let mut e2 = Engine::new();
        e2.load_profile(&path).unwrap();
        assert!(!e2.profile().is_empty());
    }

    #[test]
    fn read_errors_surface() {
        let mut e = Engine::new();
        assert!(matches!(e.run_str("(unbalanced", "t.scm"), Err(Error::Read(_))));
        assert!(matches!(e.run_str("(if)", "t.scm"), Err(Error::Expand(_))));
        assert!(matches!(e.run_str("(car 1)", "t.scm"), Err(Error::Eval(_))));
    }

    #[test]
    fn calls_only_mode_with_wrap_lambda_counts_annotated_exprs() {
        // The Racket pairing: annotate-expr wraps in a thunk call;
        // CallsOnly counts that call.
        let program = "
          (define-syntax (annotated stx)
            (syntax-case stx ()
              [(_ e)
               (annotate-expr #'e (make-profile-point))]))
          (define (f) (annotated (+ 1 2)))
          (f) (f) (f)";
        let mut e = Engine::with_strategy(AnnotateStrategy::WrapLambda);
        e.set_instrumentation(ProfileMode::CallsOnly);
        let v = e.run_str(program, "cw.scm").unwrap();
        assert_eq!(v.to_string(), "3");
        // Some generated profile point got 3 counts.
        let counters = e.counters();
        let weights = e.current_weights();
        let generated_hot = weights
            .iter()
            .any(|(p, _)| p.is_generated() && counters.count(p) == 3);
        assert!(generated_hot, "generated point counted 3 times");
    }

    #[test]
    fn direct_strategy_with_every_expression_counts_annotated_exprs() {
        let program = "
          (define-syntax (annotated stx)
            (syntax-case stx ()
              [(_ e)
               (annotate-expr #'e (make-profile-point))]))
          (define (f) (annotated (+ 1 2)))
          (f) (f)";
        let mut e = Engine::new();
        e.set_instrumentation(ProfileMode::EveryExpression);
        e.run_str(program, "cd.scm").unwrap();
        let counters = e.counters();
        let generated = e
            .current_weights()
            .iter()
            .any(|(p, _)| p.is_generated() && counters.count(p) == 2);
        assert!(generated);
    }

    #[test]
    fn sampling_run_estimates_weights_deterministically() {
        // Manual sampling: a native takes the samples, so the test is
        // exact — every call to (sample!) tallies whatever profile point
        // the interpreter entered last.
        let mut e = Engine::new();
        let counters = Counters::sampling_manual();
        let shared = counters.sampling_shared().unwrap();
        e.set_counters(counters);
        assert_eq!(e.counter_impl(), CounterImpl::Sampling);
        e.set_instrumentation(ProfileMode::EveryExpression);
        let s = shared.clone();
        e.interp_mut()
            .define_native("sample!", 0, Some(0), move |_, _| {
                s.sample_now();
                Ok(Value::Unspecified)
            });
        e.run_str("(define (f) (sample!)) (f) (f) (f)", "s.scm").unwrap();
        let (ticks, hits, missed) = shared.stats();
        assert_eq!((ticks, hits, missed), (3, 3, 0));
        let weights = e.current_weights();
        assert!(!weights.is_empty(), "samples produced estimated weights");
        assert!(weights.iter().any(|(_, w)| w == 1.0));
    }

    #[test]
    fn blocking_native_parks_the_beacon() {
        // Satellite: a native that blocks parks the beacon, so samples
        // taken while it sleeps attribute nothing instead of inflating the
        // profile point that happened to be entered last.
        let mut e = Engine::new();
        let counters = Counters::sampling_manual();
        let shared = counters.sampling_shared().unwrap();
        e.set_counters(counters);
        e.set_instrumentation(ProfileMode::EveryExpression);
        let s = shared.clone();
        e.interp_mut()
            .define_native("sleep-blocked", 0, Some(0), move |interp, _| {
                interp.park_profiling();
                // Stand-in for the blocked wait: every sample taken while
                // parked must miss.
                for _ in 0..5 {
                    s.sample_now();
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(Value::Unspecified)
            });
        e.run_str("(sleep-blocked)", "b.scm").unwrap();
        let (ticks, hits, missed) = shared.stats();
        assert_eq!(ticks, 5);
        assert_eq!(hits, 0, "parked beacon must not attribute samples");
        assert_eq!(missed, 5);
        // The run has exited, so the beacon stays parked afterwards too.
        shared.sample_now();
        assert_eq!(shared.stats().2, 6, "post-run samples miss");
        assert_eq!(
            e.current_weights().iter().count(),
            0,
            "no point received an estimated weight"
        );
    }

    #[test]
    fn sampling_profile_v2_records_provenance() {
        let dir = std::env::temp_dir().join("pgmp-engine-sampling-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sampled.pgmp");
        let mut e = Engine::new();
        e.set_sampling(250);
        assert_eq!(e.counter_impl(), CounterImpl::Sampling);
        e.set_instrumentation(ProfileMode::EveryExpression);
        e.run_str("(define (f) 'x) (f)", "p.scm").unwrap();
        e.store_profile_v2(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("(provenance sampled 250)"),
            "v2 file records sampling provenance: {text}"
        );
        let stored = StoredProfile::load_file(&path).unwrap();
        assert_eq!(stored.provenance, Provenance::Sampled { hz: 250 });
        // An exact session stays implicit-exact on disk.
        let exact_path = dir.join("exact.pgmp");
        let mut ex = Engine::new();
        ex.set_instrumentation(ProfileMode::EveryExpression);
        ex.run_str("(define (f) 'x) (f)", "p.scm").unwrap();
        ex.store_profile_v2(&exact_path).unwrap();
        let exact_text = std::fs::read_to_string(&exact_path).unwrap();
        assert!(!exact_text.contains("provenance"));
        let exact = StoredProfile::load_file(&exact_path).unwrap();
        assert_eq!(exact.provenance, Provenance::Exact);
    }

    #[test]
    fn sampling_session_preloads_v2_slot_table() {
        let dir = std::env::temp_dir().join("pgmp-engine-sampling-preload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.pgmp");
        let mut writer = Engine::new();
        writer.set_instrumentation(ProfileMode::EveryExpression);
        writer.run_str("(define (f n) (* n n)) (f 2) (f 3)", "w.scm").unwrap();
        writer.store_profile_v2(&path).unwrap();

        let mut warm = Engine::new();
        warm.set_sampling(500);
        warm.load_profile_with_slots(&path).unwrap();
        assert_eq!(warm.counter_impl(), CounterImpl::Sampling);
        assert_eq!(warm.counters().sample_hz(), Some(500), "rate survives preload");
        assert!(
            warm.counters().slot_table().is_some_and(|t| !t.is_empty()),
            "slot table preloaded into the sampling registry"
        );
    }

    #[test]
    fn both_strategies_agree_on_weights() {
        // §4.2: wrapping "does not change the counters used to calculate
        // profile weights".
        let program = "
          (define-syntax (annotated stx)
            (syntax-case stx ()
              [(_ e) (annotate-expr #'e (make-profile-point))]))
          (define (f n) (if (< n 5) (annotated 'low) (annotated 'high)))
          (let loop ([i 0])
            (unless (= i 10) (f i) (loop (add1 i))))";
        let mut chez = Engine::with_strategy(AnnotateStrategy::Direct);
        chez.set_instrumentation(ProfileMode::EveryExpression);
        chez.run_str(program, "agree.scm").unwrap();
        let mut racket = Engine::with_strategy(AnnotateStrategy::WrapLambda);
        racket.set_instrumentation(ProfileMode::CallsOnly);
        racket.run_str(program, "agree.scm").unwrap();
        // §4.2's claim is about the *counters*: wrapping changes run-time
        // cost, not what gets counted. The generated points must have
        // identical counts under both strategies (weights are normalized
        // by each profiler's own maximum, so they differ across profilers).
        let chez_counters = chez.counters();
        let racket_counters = racket.counters();
        let mut saw_generated = false;
        for (p, _) in chez.current_weights().iter().filter(|(p, _)| p.is_generated()) {
            saw_generated = true;
            assert_eq!(
                chez_counters.count(p),
                racket_counters.count(p),
                "count of {p} differs between strategies"
            );
            assert_eq!(chez_counters.count(p), 5);
        }
        assert!(saw_generated);
    }
}
