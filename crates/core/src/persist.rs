//! On-disk representation of an [`IncrementalEngine`] session.
//!
//! [`IncrementalEngine::save_state`] serializes the per-form recompilation
//! cache — form fingerprints, profile read-sets, factory snapshots, printed
//! expansions, and core trees *with their source objects* — so a fresh
//! process can warm-start re-optimization in O(changed forms) instead of
//! expanding everything from scratch. The file is a single s-expression
//! (like profile files, read back with the system's own reader):
//!
//! ```text
//! (pgmp-session
//!   (version 1)
//!   (file "prog.scm")
//!   (weights (datasets 1) (point "prog.scm" 3 9 1.0))
//!   (strings "f" "prog.scm")
//!   (form 0 "00deadbeef15dead"
//!     (meta)
//!     (reads (point "prog.scm" 3 9 1.0) (avail #t) (whole) (volatile))
//!     (fpre ("prog.scm" 2))
//!     (fpost ("prog.scm" 3))
//!     (expansion "(define (f) 1)")
//!     (cores (defg #f 0 (lambda #f 0 #f 0 #f (const #f 1))))
//!     (chunk-ids 17)
//!     (snapshot (datasets 1) (point "prog.scm" 3 9 1.0))))
//! ```
//!
//! The `(strings …)` section is a string table: file names and global
//! symbols inside `cores` trees appear as integer indices into it (the
//! `0`s in the `defg` above both mean `"f"`). Source objects annotate
//! nearly every core node, so writing each distinct string once keeps
//! session files compact and — the warm-start critical path — spares a
//! string allocation per node at parse time. Verbatim strings remain
//! accepted wherever an index may appear.
//!
//! Per-form sub-entries are optional and default to empty/false; `(meta)`
//! marks a form whose expansion changed compile-time state (`define-syntax`
//! and friends) — such forms are **replayed** through the real expander at
//! load time (transformer closures cannot be serialized), while value forms
//! are rehydrated from their stored artifacts. See DESIGN.md §4d for the
//! soundness argument.
//!
//! Loads are corruption-tolerant: any structural problem surfaces as a
//! typed [`ProfileStoreError`], never a panic, and writes go through
//! [`pgmp_profiler::write_atomic`].
//!
//! [`IncrementalEngine`]: crate::incremental::IncrementalEngine
//! [`IncrementalEngine::save_state`]: crate::incremental::IncrementalEngine::save_state

use crate::api::ProfileReadLog;
use pgmp_eval::{core_from_datum_with, Core};
use pgmp_profiler::{ProfileInformation, ProfileStoreError};
use pgmp_reader::read_datums;
use pgmp_syntax::{Datum, SourceFactory, SourceObject, Symbol};
use std::fmt::Write as _;
use std::rc::Rc;

/// What [`save_state`] wrote: how much of the cache was persistable.
///
/// [`save_state`]: crate::incremental::IncrementalEngine::save_state
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaveStats {
    /// Top-level forms in the program.
    pub total_forms: usize,
    /// Forms whose cache entry was written to the session file.
    pub saved: usize,
    /// Forms with no persistable entry (never compiled, volatile reads, or
    /// artifacts containing residual syntax objects). They re-expand on
    /// warm start.
    pub skipped: usize,
}

/// What [`load_state`] restored: the warm-start ledger.
///
/// [`load_state`]: crate::incremental::IncrementalEngine::load_state
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarmStart {
    /// Top-level forms in the program.
    pub total_forms: usize,
    /// Value forms rehydrated from stored artifacts — no re-expansion.
    pub restored: usize,
    /// Meta forms replayed through the expander to re-register their
    /// transformers (their artifacts cannot be stored).
    pub replayed_meta: usize,
    /// Forms with no usable stored entry (missing, fingerprint drift, or a
    /// broken factory chain). They re-expand on the next compile.
    pub skipped: usize,
    /// Chunk-id reconciliation map: `(stored id, fresh id)` for every
    /// rehydrated chunk. Block-counter data keyed by the saving process's
    /// chunk ids can be carried over with
    /// [`pgmp_bytecode::BlockCounters::remap_chunk`].
    pub chunk_map: Vec<(u32, u32)>,
    /// Source file name recorded by the saving process (diagnostic only —
    /// validity is established per form by fingerprints, not by file name).
    pub source_file: String,
}

/// One form's persisted cache entry, decoded.
pub(crate) struct StoredForm {
    pub(crate) index: usize,
    pub(crate) hash: u64,
    pub(crate) meta: bool,
    pub(crate) reads: ProfileReadLog,
    pub(crate) fpre: SourceFactory,
    pub(crate) fpost: SourceFactory,
    pub(crate) expansion: Vec<String>,
    pub(crate) cores: Vec<Rc<Core>>,
    pub(crate) chunk_ids: Vec<u32>,
    pub(crate) snapshot: Option<ProfileInformation>,
}

/// A whole decoded session file.
pub(crate) struct StoredSession {
    pub(crate) file: String,
    pub(crate) weights: ProfileInformation,
    pub(crate) forms: Vec<StoredForm>,
}

fn malformed(msg: impl Into<String>) -> ProfileStoreError {
    ProfileStoreError::Malformed(msg.into())
}

fn point_datums(p: SourceObject, w: Option<f64>) -> Datum {
    let mut elems = vec![
        Datum::sym("point"),
        Datum::string(p.file.as_str()),
        Datum::Int(p.bfp as i64),
        Datum::Int(p.efp as i64),
    ];
    if let Some(w) = w {
        elems.push(Datum::Float(w));
    }
    Datum::list(elems)
}

fn point_from(args: &[Datum]) -> Result<(SourceObject, Option<f64>), ProfileStoreError> {
    match args {
        [Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), rest @ ..]
            if *bfp >= 0 && *efp >= 0 && rest.len() <= 1 =>
        {
            let w = match rest.first() {
                None => None,
                Some(Datum::Float(x)) => Some(*x),
                Some(Datum::Int(n)) => Some(*n as f64),
                Some(other) => return Err(malformed(format!("bad weight {other}"))),
            };
            Ok((SourceObject::new(file, *bfp as u32, *efp as u32), w))
        }
        _ => Err(malformed("malformed point entry")),
    }
}

/// Emits `(datasets N) (point …)…` entries for `info`, sorted.
fn profile_body(info: &ProfileInformation) -> Vec<Datum> {
    let mut points: Vec<(SourceObject, f64)> = info.iter().collect();
    points.sort_by_key(|a| a.0);
    let mut out = vec![Datum::list(vec![
        Datum::sym("datasets"),
        Datum::Int(info.dataset_count() as i64),
    ])];
    out.extend(points.into_iter().map(|(p, w)| point_datums(p, Some(w))));
    out
}

fn profile_from_body(entries: &[Datum]) -> Result<ProfileInformation, ProfileStoreError> {
    let mut dataset_count = 1usize;
    let mut weights = Vec::new();
    for e in entries {
        let elems = e
            .list_elems()
            .ok_or_else(|| malformed("profile entry must be a list"))?;
        match elems.as_slice() {
            [Datum::Sym(tag), Datum::Int(n)] if tag.as_str() == "datasets" && *n >= 0 => {
                dataset_count = *n as usize;
            }
            [Datum::Sym(tag), rest @ ..] if tag.as_str() == "point" => {
                let (p, w) = point_from(rest)?;
                let w = w.ok_or_else(|| malformed("point entry missing weight"))?;
                if !(0.0..=1.0).contains(&w) {
                    return Err(malformed(format!("weight {w} outside [0,1]")));
                }
                weights.push((p, w));
            }
            _ => return Err(malformed(format!("unknown profile entry {e}"))),
        }
    }
    Ok(ProfileInformation::from_weights(weights, dataset_count))
}

fn factory_datum(tag: &str, f: &SourceFactory) -> Datum {
    let mut elems = vec![Datum::sym(tag)];
    elems.extend(f.entries().into_iter().map(|(file, n)| {
        Datum::list(vec![Datum::string(file.as_str()), Datum::Int(n as i64)])
    }));
    Datum::list(elems)
}

fn factory_from(entries: &[Datum]) -> Result<SourceFactory, ProfileStoreError> {
    let mut out = Vec::new();
    for e in entries {
        match e.list_elems().as_deref() {
            Some([Datum::Str(file), Datum::Int(n)]) if *n >= 0 && *n <= u32::MAX as i64 => {
                out.push((Symbol::intern(file), *n as u32));
            }
            _ => return Err(malformed(format!("bad factory entry {e}"))),
        }
    }
    Ok(SourceFactory::from_entries(out))
}

fn reads_datum(r: &ProfileReadLog) -> Datum {
    let mut elems = vec![Datum::sym("reads")];
    for (p, w) in &r.points {
        elems.push(point_datums(*p, Some(*w)));
    }
    if let Some(a) = r.availability {
        elems.push(Datum::list(vec![Datum::sym("avail"), Datum::Bool(a)]));
    }
    if r.whole_profile {
        elems.push(Datum::list(vec![Datum::sym("whole")]));
    }
    if r.volatile_reads {
        elems.push(Datum::list(vec![Datum::sym("volatile")]));
    }
    Datum::list(elems)
}

fn reads_from(entries: &[Datum]) -> Result<ProfileReadLog, ProfileStoreError> {
    let mut reads = ProfileReadLog::default();
    for e in entries {
        let elems = e
            .list_elems()
            .ok_or_else(|| malformed("reads entry must be a list"))?;
        match elems.as_slice() {
            [Datum::Sym(tag), rest @ ..] if tag.as_str() == "point" => {
                let (p, w) = point_from(rest)?;
                let w = w.ok_or_else(|| malformed("read point missing weight"))?;
                reads.points.push((p, w));
            }
            [Datum::Sym(tag), Datum::Bool(a)] if tag.as_str() == "avail" => {
                reads.availability = Some(*a);
            }
            [Datum::Sym(tag)] if tag.as_str() == "whole" => reads.whole_profile = true,
            [Datum::Sym(tag)] if tag.as_str() == "volatile" => reads.volatile_reads = true,
            _ => return Err(malformed(format!("unknown reads entry {e}"))),
        }
    }
    Ok(reads)
}

/// One form's serialized entry; `cores` are pre-serialized core datums.
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_entry_string(
    index: usize,
    hash: u64,
    meta: bool,
    reads: &ProfileReadLog,
    fpre: &SourceFactory,
    fpost: &SourceFactory,
    expansion: &[String],
    cores: &[Datum],
    chunk_ids: &[u32],
    snapshot: Option<&ProfileInformation>,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "  (form {index} \"{hash:016x}\"");
    if meta {
        out.push_str("\n    (meta)");
    }
    let _ = write!(out, "\n    {}", reads_datum(reads));
    let _ = write!(out, "\n    {}", factory_datum("fpre", fpre));
    let _ = write!(out, "\n    {}", factory_datum("fpost", fpost));
    if !expansion.is_empty() {
        let strs: Vec<Datum> = expansion.iter().map(|s| Datum::string(s)).collect();
        let mut elems = vec![Datum::sym("expansion")];
        elems.extend(strs);
        let _ = write!(out, "\n    {}", Datum::list(elems));
    }
    if !cores.is_empty() {
        let mut elems = vec![Datum::sym("cores")];
        elems.extend(cores.iter().cloned());
        let _ = write!(out, "\n    {}", Datum::list(elems));
    }
    if !chunk_ids.is_empty() {
        let mut elems = vec![Datum::sym("chunk-ids")];
        elems.extend(chunk_ids.iter().map(|id| Datum::Int(*id as i64)));
        let _ = write!(out, "\n    {}", Datum::list(elems));
    }
    if let Some(info) = snapshot {
        let mut elems = vec![Datum::sym("snapshot")];
        elems.extend(profile_body(info));
        let _ = write!(out, "\n    {}", Datum::list(elems));
    }
    out.push(')');
    out
}

/// Serializes the session header plus pre-rendered form entries.
/// `strings` is the string table the entries' core trees were serialized
/// against (indices into it appear inside `cores`).
pub(crate) fn session_string(
    file: &str,
    weights: &ProfileInformation,
    strings: &[Symbol],
    form_entries: &[String],
) -> String {
    let mut out = String::from("(pgmp-session\n  (version 1)\n");
    let _ = writeln!(out, "  (file {})", Datum::string(file));
    let mut welems = vec![Datum::sym("weights")];
    welems.extend(profile_body(weights));
    let _ = writeln!(out, "  {}", Datum::list(welems));
    if !strings.is_empty() {
        let mut selems = vec![Datum::sym("strings")];
        selems.extend(strings.iter().map(|s| Datum::string(s.as_str())));
        let _ = writeln!(out, "  {}", Datum::list(selems));
    }
    for entry in form_entries {
        let _ = writeln!(out, "{entry}");
    }
    out.push(')');
    out
}

fn form_from(args: &[Datum], strings: &[Symbol]) -> Result<StoredForm, ProfileStoreError> {
    let [Datum::Int(index), Datum::Str(hash), rest @ ..] = args else {
        return Err(malformed("malformed form entry header"));
    };
    if *index < 0 {
        return Err(malformed("negative form index"));
    }
    let hash = u64::from_str_radix(hash, 16)
        .map_err(|_| malformed(format!("bad form hash {hash:?}")))?;
    let mut form = StoredForm {
        index: *index as usize,
        hash,
        meta: false,
        reads: ProfileReadLog::default(),
        fpre: SourceFactory::new(),
        fpost: SourceFactory::new(),
        expansion: Vec::new(),
        cores: Vec::new(),
        chunk_ids: Vec::new(),
        snapshot: None,
    };
    for e in rest {
        let elems = e
            .list_elems()
            .ok_or_else(|| malformed("form sub-entry must be a list"))?;
        let [Datum::Sym(tag), args @ ..] = elems.as_slice() else {
            return Err(malformed(format!("form sub-entry missing tag: {e}")));
        };
        match tag.as_str() {
            "meta" => form.meta = true,
            "reads" => form.reads = reads_from(args)?,
            "fpre" => form.fpre = factory_from(args)?,
            "fpost" => form.fpost = factory_from(args)?,
            "expansion" => {
                form.expansion = args
                    .iter()
                    .map(|d| match d {
                        Datum::Str(s) => Ok(s.to_string()),
                        other => Err(malformed(format!("bad expansion entry {other}"))),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "cores" => {
                form.cores = args
                    .iter()
                    .map(|d| core_from_datum_with(d, strings).map_err(malformed))
                    .collect::<Result<_, _>>()?;
            }
            "chunk-ids" => {
                form.chunk_ids = args
                    .iter()
                    .map(|d| match d {
                        Datum::Int(n) if *n >= 0 && *n <= u32::MAX as i64 => Ok(*n as u32),
                        other => Err(malformed(format!("bad chunk id {other}"))),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "snapshot" => form.snapshot = Some(profile_from_body(args)?),
            other => return Err(malformed(format!("unknown form sub-entry `{other}`"))),
        }
    }
    Ok(form)
}

/// Parses a session file.
///
/// # Errors
///
/// [`ProfileStoreError::Malformed`] for any structural problem,
/// [`ProfileStoreError::UnsupportedVersion`] for a version other than 1.
/// Never panics on hostile input.
pub(crate) fn parse_session(text: &str) -> Result<StoredSession, ProfileStoreError> {
    // `read_datums` skips syntax-object construction: session files are
    // machine-written, source attribution would be meaningless, and this
    // parse is the warm-start critical path.
    let forms = read_datums(text, "<session>")
        .map_err(|e| malformed(format!("unreadable: {e}")))?;
    let [datum]: [Datum; 1] = forms
        .try_into()
        .map_err(|_| malformed("expected exactly one top-level form"))?;
    let elems = datum
        .list_elems()
        .ok_or_else(|| malformed("top-level form must be a list"))?;
    let [head, entries @ ..] = elems.as_slice() else {
        return Err(malformed("empty session file"));
    };
    match head {
        Datum::Sym(s) if s.as_str() == "pgmp-session" => {}
        other => return Err(malformed(format!("unexpected header `{other}`"))),
    }
    let mut version: Option<i64> = None;
    let mut file = String::new();
    let mut weights = ProfileInformation::empty();
    let mut strings: Vec<Symbol> = Vec::new();
    let mut out_forms: Vec<StoredForm> = Vec::new();
    // Two passes: form entries reference the string table by index, and
    // the table must be complete before any form decodes, wherever the
    // `(strings …)` section sits in the file.
    for pass in 0..2 {
        for e in entries {
            let elems = e
                .list_elems()
                .ok_or_else(|| malformed("session entry must be a list"))?;
            let [Datum::Sym(tag), args @ ..] = elems.as_slice() else {
                return Err(malformed(format!("session entry missing tag: {e}")));
            };
            match (pass, tag.as_str(), args) {
                (0, "version", [Datum::Int(v)]) => {
                    if version.replace(*v).is_some() {
                        return Err(malformed("duplicate version entry"));
                    }
                }
                (0, "file", [Datum::Str(s)]) => file = s.to_string(),
                (0, "weights", body) => weights = profile_from_body(body)?,
                (0, "strings", body) => {
                    strings = body
                        .iter()
                        .map(|d| match d {
                            Datum::Str(s) => Ok(Symbol::intern(s)),
                            other => Err(malformed(format!("bad string-table entry {other}"))),
                        })
                        .collect::<Result<_, _>>()?;
                }
                (0, "form", _) => {}
                (1, "form", body) => out_forms.push(form_from(body, &strings)?),
                (1, _, _) => {}
                (_, other, _) => {
                    return Err(malformed(format!("unknown session entry `{other}`")));
                }
            }
        }
    }
    match version {
        Some(1) => {}
        Some(v) => return Err(ProfileStoreError::UnsupportedVersion(v)),
        None => return Err(malformed("missing version entry")),
    }
    Ok(StoredSession {
        file,
        weights,
        forms: out_forms,
    })
}
