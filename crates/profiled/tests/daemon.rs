//! In-process integration tests for the fleet daemon: the slot-table
//! handshake gate, the daemon-vs-offline merge oracle, epoch broadcasts,
//! and — the accounting contract — that every hit handed to a
//! [`Publisher`] is either delivered to the daemon or counted as
//! dropped, exactly, with nothing silently lost in between.

use pgmp_profiled::daemon::{Daemon, DaemonConfig};
use pgmp_profiled::wire::{self, Frame};
use pgmp_profiled::{Ack, ClientError, Publisher, Subscriber};
use pgmp_profiler::{Dataset, ProfileInformation, SlotMap, StoredProfile};
use pgmp_syntax::SourceObject;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::time::Duration;

/// Minimal raw-socket HTTP GET against the metrics listener; returns the
/// response body. The server sends `Connection: close`, so read-to-end
/// terminates.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics listener");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pgmp-profiled-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn p(n: u32) -> SourceObject {
    SourceObject::new("fleet.scm", n * 10, n * 10 + 5)
}

fn table(points: &[SourceObject]) -> SlotMap {
    SlotMap::from_points(points.iter().copied()).unwrap()
}

/// Starts a daemon on its own thread; returns a join guard.
fn spawn_daemon(config: DaemonConfig) -> std::thread::JoinHandle<()> {
    let socket = config.socket.clone();
    let handle = std::thread::spawn(move || {
        Daemon::new(config).run().expect("daemon run");
    });
    // Wait for the socket to exist before letting clients connect.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle
}

#[test]
fn fleet_merge_equals_offline_merge_and_subscribers_see_epochs() {
    let dir = scratch("oracle");
    let socket = dir.join("d.sock");
    let profile = dir.join("fleet.pgmp");
    let mut config = DaemonConfig::new(&socket, &profile);
    config.merge_interval = Duration::from_millis(30);
    let daemon = spawn_daemon(config);

    let points = [p(0), p(1), p(2), p(3)];
    // Three skewed workloads: each process hammers a different point.
    let workloads: [Vec<(u32, u64)>; 3] = [
        vec![(0, 1000), (1, 10), (2, 5)],
        vec![(1, 800), (3, 40)],
        vec![(0, 3), (2, 600), (3, 600)],
    ];

    let mut subscriber = Subscriber::connect(&socket).expect("subscribe");
    for counts in &workloads {
        let mut publisher = Publisher::connect(&socket, &table(&points), 64).expect("connect");
        // Split each workload across two deltas to exercise accumulation.
        let mid = counts.len() / 2;
        assert!(publisher.publish(&counts[..mid]));
        assert!(publisher.publish(&counts[mid..]));
        let stats = publisher.close().expect("close");
        assert_eq!(stats.dropped_frames, 0);
        assert_eq!(
            stats.published_hits,
            counts.iter().map(|(_, c)| c).sum::<u64>()
        );
    }

    // All three publishers closed behind the Bye barrier, so their
    // deltas are ingested; the next merge must reflect the whole fleet.
    let update = loop {
        let u = subscriber.next_epoch(Duration::from_secs(10)).expect("epoch");
        if u.datasets == 3 {
            break u;
        }
    };
    assert_eq!(update.points, 4);
    assert!(update.tv >= 0.0 && update.tv <= 1.0, "tv={}", update.tv);

    // The broadcast carries the same profile the daemon wrote.
    let broadcast = StoredProfile::load_from_str(&update.profile).expect("broadcast profile");
    assert_eq!(broadcast.version, 2);

    Daemon::request_shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");

    // Oracle: the offline §3.2 merge of the three per-process datasets.
    let offline = workloads
        .iter()
        .map(|counts| {
            let mut d = Dataset::new();
            for (slot, count) in counts {
                d.record(points[*slot as usize], *count);
            }
            ProfileInformation::from_dataset(&d)
        })
        .reduce(|acc, info| acc.merge(&info))
        .unwrap();

    let canonical = StoredProfile::load_file(&profile).expect("canonical profile");
    assert_eq!(canonical.version, 2);
    assert_eq!(canonical.info.dataset_count(), 3);
    assert_eq!(canonical.info.len(), offline.len());
    for (point, weight) in offline.iter() {
        let daemon_weight = canonical.info.weight(point);
        assert!(
            (daemon_weight - weight).abs() < 1e-9,
            "{point}: daemon {daemon_weight} vs offline {weight}"
        );
        // And the broadcast agreed with the file.
        assert!((broadcast.info.weight(point) - weight).abs() < 1e-9);
    }
    // The canonical slot table covers every fleet point.
    let slots = canonical.slots.expect("v2 slot table");
    assert_eq!(slots.len(), 4);
    for (i, point) in points.iter().enumerate() {
        assert_eq!(slots.get(*point), Some(i as u32));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The handshake's three-way slot-table gate: order-divergent tables of
/// the same program are re-keyed by point identity (dense slot order is
/// process-local — first execution order assigns part of it), compatible
/// extensions stream untranslated, and a table sharing no point with the
/// canonical one (a different program) is refused with the typed error.
#[test]
fn slot_table_gate_remaps_reorders_and_refuses_aliens() {
    let dir = scratch("gate");
    let socket = dir.join("d.sock");
    let profile = dir.join("fleet.pgmp");
    let mut config = DaemonConfig::new(&socket, &profile);
    config.merge_interval = Duration::from_millis(50);
    let daemon = spawn_daemon(config);

    let mut first = Publisher::connect(&socket, &table(&[p(0), p(1)]), 8).expect("first");
    assert!(first.publish(&[(0, 8), (1, 2)]));
    first.close().expect("close first");

    // Same points, swapped interning order: accepted, with each delta
    // slot translated through the client's own table. Slot 0 here means
    // p(1), and must land on p(1) in the canonical profile.
    let mut swapped = Publisher::connect(&socket, &table(&[p(1), p(0)]), 8)
        .expect("order-divergent table of the same program must be accepted");
    assert!(swapped.publish(&[(0, 6), (1, 3)]));
    swapped.close().expect("close swapped");

    // No shared point at all: a different program; combining would alias.
    let alien: Vec<SourceObject> = (0..2).map(|n| SourceObject::new("other.scm", n, n + 1)).collect();
    let err = match Publisher::connect(&socket, &table(&alien), 8) {
        Ok(_) => panic!("alien table accepted"),
        Err(e) => e,
    };
    match err {
        ClientError::Refused(reason) => {
            assert!(
                reason.contains("incompatible slot tables"),
                "unexpected reason: {reason}"
            );
            assert!(reason.contains("slot 0"), "unexpected reason: {reason}");
        }
        other => panic!("expected refusal, got {other:?}"),
    }

    // A compatible extension is welcome and the daemon keeps serving.
    let mut third =
        Publisher::connect(&socket, &table(&[p(0), p(1), p(2)]), 8).expect("extension");
    assert!(third.publish(&[(2, 7)]));
    third.close().expect("close third");

    // A delta slot outside the handshake table is a protocol error.
    let mut loose = Publisher::connect(&socket, &table(&[p(0)]), 8).expect("loose");
    assert!(loose.publish(&[(5, 1)]));
    assert!(loose.close().is_err(), "out-of-range slot must be refused");

    Daemon::request_shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");

    // Per-point attribution across the remap. Dataset weights (each
    // normalized by its own max): first {p0: 1.0, p1: 0.25}, swapped
    // {p0: 0.5, p1: 1.0}, extension {p2: 1.0}. An aliasing ingest would
    // have swapped the middle dataset's two weights.
    let canonical = StoredProfile::load_file(&profile).expect("canonical profile");
    assert_eq!(canonical.info.dataset_count(), 3);
    assert!((canonical.info.weight(p(0)) - 1.5 / 3.0).abs() < 1e-9);
    assert!((canonical.info.weight(p(1)) - 1.25 / 3.0).abs() < 1e-9);
    assert!((canonical.info.weight(p(2)) - 1.0 / 3.0).abs() < 1e-9);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The exact-loss-accounting contract, end to end: against a stalled
/// daemon every hit is either delivered or counted dropped — the two
/// tallies partition what the caller handed in, with nothing silent.
#[test]
fn backpressure_drops_are_accounted_exactly() {
    let dir = scratch("backpressure");
    let socket = dir.join("d.sock");
    let listener = UnixListener::bind(&socket).unwrap();

    // A hand-rolled daemon that handshakes, then stalls on command:
    // it reads nothing until told to drain, forcing the publisher's
    // kernel buffer and bounded channel to fill.
    let (drain_tx, drain_rx) = std::sync::mpsc::channel::<()>();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        match wire::read_frame(&mut stream).unwrap() {
            Frame::Hello(h) => assert!(!h.points.is_empty()),
            other => panic!("expected hello, got {other:?}"),
        }
        wire::write_frame(
            &mut stream,
            &Frame::Ack(Ack {
                dataset: 0,
                epoch: 0,
                inst: 0,
            }),
        )
        .unwrap();
        drain_rx.recv().unwrap();
        let mut received = 0u64;
        loop {
            match wire::read_frame(&mut stream).unwrap() {
                Frame::Delta(d) => received += d.counts.iter().map(|(_, c)| c).sum::<u64>(),
                Frame::Bye(_) => {
                    wire::write_frame(
                        &mut stream,
                        &Frame::Ack(Ack {
                            dataset: 0,
                            epoch: 0,
                            inst: 0,
                        }),
                    )
                    .unwrap();
                    return received;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    });

    let points: Vec<SourceObject> = (0..4).map(p).collect();
    let mut publisher = Publisher::connect(&socket, &table(&points), 1).expect("connect");

    // Big frames fill the kernel socket buffer in a few writes; with a
    // one-slot channel behind it, publishes must start failing.
    let big: Vec<(u32, u64)> = (0..20_000).map(|i| (i % 4, 3)).collect();
    let per_frame: u64 = big.iter().map(|(_, c)| c).sum();
    let mut sent_total = 0u64;
    let mut attempts = 0u32;
    while publisher.stats().dropped_frames < 3 && attempts < 500 {
        publisher.publish(&big);
        sent_total += per_frame;
        attempts += 1;
    }
    let mid_stats = publisher.stats();
    assert!(
        mid_stats.dropped_frames >= 3,
        "never saw backpressure after {attempts} attempts"
    );

    drain_tx.send(()).unwrap();
    let stats = publisher.close().expect("close");
    let received = server.join().expect("server thread");

    // The partition: every hit is in exactly one tally.
    assert_eq!(stats.published_hits + stats.dropped_hits, sent_total);
    assert_eq!(received, stats.published_hits, "accepted hits all arrived");
    assert!(stats.dropped_hits > 0);
    assert_eq!(stats.dropped_hits, stats.dropped_frames * per_frame);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The live metrics endpoint tells the fleet-health story: a scrape of
/// an in-process daemon (the registry is process-global, exactly as in
/// `pgmp-profiled --metrics-listen`) must expose the handshake remap
/// counter, the per-dataset sampled-provenance gauge declared in the
/// publisher's `Hello`, and the merged profile's provenance.
///
/// Metrics are shared with every other test in this binary, so counter
/// assertions are monotone (`>= 1`, not `== 1`) and gauges that other
/// daemons overwrite are polled until our daemon's value lands.
#[test]
fn metrics_scrape_shows_remaps_and_sampled_provenance() {
    let dir = scratch("scrape");
    let socket = dir.join("d.sock");
    let profile = dir.join("fleet.pgmp");
    let mut config = DaemonConfig::new(&socket, &profile);
    config.merge_interval = Duration::from_millis(25);
    let daemon = spawn_daemon(config);
    let server = pgmp_observe::MetricsServer::bind("127.0.0.1:0").expect("bind metrics");

    // A sampling-backed publisher declares `sampled@997hz` at handshake …
    let mut first =
        Publisher::connect_with_provenance(&socket, &table(&[p(0), p(1)]), 8, 997).expect("first");
    assert!(first.publish(&[(0, 8), (1, 2)]));
    first.close().expect("close first");
    // … and an order-divergent table from the same program forces a
    // handshake remap.
    let mut swapped =
        Publisher::connect_with_provenance(&socket, &table(&[p(1), p(0)]), 8, 997).expect("swap");
    assert!(swapped.publish(&[(0, 6)]));
    swapped.close().expect("close swapped");

    let metric = |body: &str, name: &str| -> Option<f64> {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
    };

    // Poll until a scrape observes our daemon's post-merge state: the
    // uniform sampled provenance of a 997 Hz fleet. Gauges written only
    // by this test (the per-dataset ones) must already be exact.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let body = loop {
        let body = scrape(server.addr(), "/metrics");
        if metric(&body, "pgmp_profiled_merged_sampled_hz") == Some(997.0) {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "merged sampled provenance never reached the scrape:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        metric(&body, "pgmp_profiled_handshake_remaps").is_some_and(|v| v >= 1.0),
        "remap counter missing:\n{body}"
    );
    assert_eq!(
        metric(&body, "pgmp_profiled_provenance_sampled_hz_0"),
        Some(997.0),
        "dataset 0 provenance gauge:\n{body}"
    );
    assert_eq!(
        metric(&body, "pgmp_profiled_provenance_sampled_hz_1"),
        Some(997.0),
        "dataset 1 provenance gauge:\n{body}"
    );
    assert!(
        metric(&body, "pgmp_profiled_inst").is_some_and(|v| v >= 1.0),
        "daemon instance gauge missing:\n{body}"
    );
    assert!(
        body.contains("# TYPE pgmp_profiled_handshake_remaps counter"),
        "type metadata missing:\n{body}"
    );

    Daemon::request_shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Publishers that disconnect keep contributing: their dataset stays in
/// the canonical profile, exactly as a stored per-process profile would.
#[test]
fn disconnected_publishers_stay_in_the_canonical_profile() {
    let dir = scratch("sticky");
    let socket = dir.join("d.sock");
    let profile = dir.join("fleet.pgmp");
    let mut config = DaemonConfig::new(&socket, &profile);
    config.merge_interval = Duration::from_millis(20);
    let daemon = spawn_daemon(config);

    let points = [p(0), p(1)];
    let mut early = Publisher::connect(&socket, &table(&points), 8).expect("early");
    assert!(early.publish(&[(0, 100)]));
    early.close().expect("close early");

    let mut late = Publisher::connect(&socket, &table(&points), 8).expect("late");
    assert!(late.publish(&[(1, 50)]));
    late.close().expect("close late");

    Daemon::request_shutdown(&socket).expect("shutdown");
    daemon.join().expect("daemon thread");

    let canonical = StoredProfile::load_file(&profile).expect("canonical profile");
    assert_eq!(canonical.info.dataset_count(), 2);
    // Each dataset's own maximum normalizes to 1.0; the average of
    // {1.0, 0.0} on each point is 0.5.
    assert!((canonical.info.weight(p(0)) - 0.5).abs() < 1e-9);
    assert!((canonical.info.weight(p(1)) - 0.5).abs() < 1e-9);

    let _ = std::fs::remove_dir_all(&dir);
}
