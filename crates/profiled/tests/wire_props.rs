//! Property tests for the fleet wire codec: hostile bytes decode to
//! typed [`WireError`]s, never panics, and every well-formed frame
//! round-trips exactly — the same discipline `pgmp-observe`'s trace
//! reader pins for its JSONL codec, applied to the socket protocol.

use pgmp_profiled::wire::{ByeInfo, Frame, WireError, MAX_FRAME_LEN};
use pgmp_profiled::{Ack, Delta, EpochUpdate, Hello, Role};
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

/// Printable-ASCII labels including `"` and `\`, exercising JSON string
/// escaping in control frames.
const LABEL: &str = "[ -~]{0,16}";

fn arb_point() -> impl Strategy<Value = SourceObject> {
    ("[a-z/.%\"\\\\-]{1,12}", 0u32..10_000, 0u32..10_000)
        .prop_map(|(file, bfp, len)| SourceObject::new(&file, bfp, bfp.saturating_add(len)))
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (
            (any::<bool>(), 0u64..1 << 48),
            (0u64..1 << 48, 0u32..10_000),
            proptest::collection::vec(arb_point(), 0..8)
        )
            .prop_map(|((publisher, pid), (inst, sampled_hz), points)| {
                Frame::Hello(Hello {
                    role: if publisher {
                        Role::Publisher
                    } else {
                        Role::Subscriber
                    },
                    pid,
                    inst,
                    sampled_hz,
                    points,
                })
            }),
        (0u32..1000, 0u64..1 << 48, 0u64..1 << 48)
            .prop_map(|(dataset, epoch, inst)| Frame::Ack(Ack {
                dataset,
                epoch,
                inst
            })),
        LABEL.prop_map(Frame::Error),
        (
            0u64..1 << 48,
            proptest::collection::vec((any::<u32>(), any::<u64>()), 0..32)
        )
            .prop_map(|(epoch, counts)| Frame::Delta(Delta { epoch, counts })),
        (
            (0u64..1 << 48, 0u64..1 << 48, 0u32..64, 0u32..10_000),
            (0u32..4096, 0u32..1025, LABEL, LABEL)
        )
            .prop_map(
                |((epoch, inst, datasets, points), (l1_8ths, tv_1024ths, path, profile))| {
                    // Dyadic drift values are exact in binary, so float
                    // round-trips through JSON are the identity.
                    Frame::Epoch(EpochUpdate {
                        epoch,
                        inst,
                        datasets,
                        points,
                        l1: f64::from(l1_8ths) / 8.0,
                        tv: f64::from(tv_1024ths) / 1024.0,
                        path,
                        profile,
                    })
                }
            ),
        (0u64..1 << 48, 0u64..1 << 48)
            .prop_map(|(inst, epoch)| Frame::Bye(ByeInfo { inst, epoch })),
        Just(Frame::Bye(ByeInfo::default())),
        Just(Frame::Shutdown),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn frames_self_delimit_in_a_stream(frames in proptest::collection::vec(arb_frame(), 0..6)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut decoded = Vec::new();
        let mut rest = &stream[..];
        while !rest.is_empty() {
            let (f, used) = Frame::decode(rest).expect("stream decode");
            decoded.push(f);
            rest = &rest[used..];
        }
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn truncation_is_typed_never_a_panic(frame in arb_frame(), cut_permille in 0u32..1000) {
        let bytes = frame.encode();
        let cut = (bytes.len() * cut_permille as usize) / 1000;
        if cut < bytes.len() {
            prop_assert!(matches!(
                Frame::decode(&bytes[..cut]),
                Err(WireError::Truncated)
            ));
        }
    }

    #[test]
    fn single_bit_flips_never_panic(frame in arb_frame(), bit in any::<u32>()) {
        let mut bytes = frame.encode();
        let n = bytes.len() as u32 * 8;
        let bit = bit % n.max(1);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        // Whatever happens — a different valid frame, or any typed
        // error — decode must return, not panic or over-allocate.
        match Frame::decode(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(
                WireError::Truncated
                | WireError::BadLength(_)
                | WireError::UnknownKind(_)
                | WireError::BadPayload(_)
                | WireError::BadVersion(_),
            ) => {}
            Err(WireError::Io(e)) => prop_assert!(false, "pure decode returned Io: {e}"),
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match Frame::decode(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(WireError::Io(e)) => prop_assert!(false, "pure decode returned Io: {e}"),
            Err(_) => {}
        }
    }

    #[test]
    fn length_header_is_capped_before_allocation(len in any::<u32>(), kind in any::<u8>()) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(kind);
        // However hostile the header, decode must not trust it into a
        // huge allocation: zero/oversized lengths are typed errors, and
        // everything within the cap is at worst Truncated/Unknown.
        match Frame::decode(&bytes) {
            Err(WireError::BadLength(n)) => {
                prop_assert!(n == 0 || n > MAX_FRAME_LEN);
            }
            Err(_) => prop_assert!((1..=MAX_FRAME_LEN).contains(&len)),
            Ok(_) => prop_assert_eq!(len, 1), // only an empty-payload frame fits in 5 bytes
        }
    }
}
