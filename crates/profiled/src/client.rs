//! Client ends of the fleet protocol.
//!
//! [`Publisher`] is built for one job: get counter deltas out of a
//! running interpreter **without ever blocking it**. The handshake is
//! the only blocking exchange; after it, every delta goes through a
//! bounded [`pgmp_observe::BoundedWriter`] channel drained by a
//! background thread. When the channel is full the frame is *dropped on
//! the floor* and accounted — dropped frames and dropped hits exactly —
//! rather than stalling the interpreter behind a slow daemon. Hits in
//! a dropped frame really are lost to the fleet profile — which is why
//! the loss is *exact*: `published_hits + dropped_hits` always equals
//! what the caller handed in ([`PublishStats`]), so operators can see
//! the loss rate and size the channel accordingly.
//!
//! [`Subscriber`] is the opposite: a deliberately blocking reader of
//! [`EpochUpdate`] broadcasts, meant for a dedicated thread that parses
//! `update.profile` and hands the weights to
//! `AdaptiveEngine::apply_fleet_profile`.

use crate::wire::{self, ByeInfo, Delta, EpochUpdate, Frame, Hello, Role, WireError};
use pgmp_observe::{self as observe, BoundedWriter};
use pgmp_profiler::SlotMap;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Connecting to or talking with the daemon failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket I/O failed.
    Io(io::Error),
    /// A frame failed to decode.
    Wire(WireError),
    /// The daemon refused us, e.g. for an incompatible slot table. The
    /// payload is the daemon's reason.
    Refused(String),
    /// No frame arrived within the deadline.
    Timeout,
    /// The peer sent a frame the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "fleet client i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "fleet client wire error: {e}"),
            ClientError::Refused(reason) => write!(f, "daemon refused connection: {reason}"),
            ClientError::Timeout => f.write_str("timed out waiting for the daemon"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        match e {
            WireError::Io(io) if matches!(
                io.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) => ClientError::Timeout,
            other => ClientError::Wire(other),
        }
    }
}

/// What a [`Publisher`] did over its lifetime, returned by
/// [`Publisher::close`] and readable live via [`Publisher::stats`].
/// `published_hits + dropped_hits` is exactly the total the caller ever
/// handed to [`Publisher::publish`] — loss is accounted, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Delta frames accepted into the outgoing channel.
    pub frames: u64,
    /// Counter hits carried by accepted frames.
    pub published_hits: u64,
    /// Delta frames rejected because the channel was full.
    pub dropped_frames: u64,
    /// Counter hits lost with those frames.
    pub dropped_hits: u64,
}

/// The publishing end: streams counter deltas to the daemon without
/// blocking the thread that produces them.
pub struct Publisher {
    /// Handshake/teardown channel; deltas go through `writer`'s clone.
    stream: UnixStream,
    /// Buffered read half: survives read timeouts without tearing frames.
    reader: wire::FrameReader<UnixStream>,
    writer: Option<BoundedWriter>,
    dataset: u32,
    daemon_inst: u64,
    epoch: u64,
    stats: PublishStats,
}

impl Publisher {
    /// Connects, performs the slot-table handshake, and starts the
    /// background flusher with room for `capacity` queued delta frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] when the daemon rejects the slot table —
    /// under [`SlotMap::check_mergeable`], only a table sharing no
    /// profile point with the canonical one; I/O and wire errors
    /// otherwise.
    pub fn connect(
        socket: impl AsRef<Path>,
        table: &SlotMap,
        capacity: usize,
    ) -> Result<Publisher, ClientError> {
        Publisher::connect_with_provenance(socket, table, capacity, 0)
    }

    /// [`Publisher::connect`], declaring the counters' provenance: 0 for
    /// exact counts, otherwise the sampling rate in Hz. A sampling-rate
    /// declaration makes the daemon record `sampled@hz` provenance on
    /// the canonical profile it merges this dataset into (and warn when
    /// the fleet mixes exact and sampled publishers).
    pub fn connect_with_provenance(
        socket: impl AsRef<Path>,
        table: &SlotMap,
        capacity: usize,
        sampled_hz: u32,
    ) -> Result<Publisher, ClientError> {
        let mut stream = UnixStream::connect(socket.as_ref())?;
        wire::write_frame(
            &mut stream,
            &Frame::Hello(Hello {
                role: Role::Publisher,
                pid: u64::from(std::process::id()),
                inst: observe::instance_id(),
                sampled_hz,
                points: table.points().to_vec(),
            }),
        )?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut reader = wire::FrameReader::new(stream.try_clone()?);
        let (dataset, daemon_inst) = match reader.next_frame()? {
            Frame::Ack(ack) => (ack.dataset, ack.inst),
            Frame::Error(reason) => return Err(ClientError::Refused(reason)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected ack to hello, got {other:?}"
                )))
            }
        };
        // The client half of the correlation handshake — pairs with the
        // daemon's `fleet_hello` event for this connection.
        observe::emit(observe::EventKind::FleetConnect {
            role: "publisher".to_string(),
            daemon_inst,
            dataset,
        });
        let writer = BoundedWriter::spawn(stream.try_clone()?, capacity.max(1));
        Ok(Publisher {
            stream,
            reader,
            writer: Some(writer),
            dataset,
            daemon_inst,
            epoch: 0,
            stats: PublishStats::default(),
        })
    }

    /// The dataset id the daemon assigned this process.
    pub fn dataset(&self) -> u32 {
        self.dataset
    }

    /// The daemon's `pgmp_observe::instance_id`, learned from its ack
    /// (0 when talking to a v1 daemon).
    pub fn daemon_inst(&self) -> u64 {
        self.daemon_inst
    }

    /// Queues one delta (as from [`pgmp_profiler::Counters::take_delta`])
    /// for sending. Returns `true` if the frame was accepted, `false` if
    /// the channel was full and the frame was dropped — the drop is
    /// counted in [`PublishStats`] and reported as a `backpressure_drop`
    /// trace event either way. Never blocks; an empty delta is a no-op.
    pub fn publish(&mut self, counts: &[(u32, u64)]) -> bool {
        if counts.is_empty() {
            return true;
        }
        self.epoch += 1;
        let hits: u64 = counts.iter().map(|(_, c)| c).sum();
        let frame = Frame::Delta(Delta {
            epoch: self.epoch,
            counts: counts.to_vec(),
        });
        let accepted = self
            .writer
            .as_mut()
            .is_some_and(|w| w.try_write(frame.encode()));
        if accepted {
            self.stats.frames += 1;
            self.stats.published_hits += hits;
            // The publisher half of the delta join key: this event's
            // (inst, epoch) matches the daemon's `ingest_batch`
            // (peer_inst, epoch) for the same frame.
            observe::emit(observe::EventKind::PublishDelta {
                epoch: self.epoch,
                slots: counts.len() as u32,
                hits,
            });
        } else {
            self.stats.dropped_frames += 1;
            self.stats.dropped_hits += hits;
            observe::emit(observe::EventKind::BackpressureDrop {
                channel: "publish".to_string(),
                dropped: hits,
            });
            observe::metrics().counter_add("profiled.publish_dropped_hits", hits);
        }
        accepted
    }

    /// Lifetime statistics so far.
    pub fn stats(&self) -> PublishStats {
        self.stats
    }

    /// Drains the outgoing channel, sends the [`Frame::Bye`] barrier,
    /// and waits for the daemon's ack — after `close` returns `Ok`,
    /// every accepted delta is in the daemon's dataset.
    pub fn close(mut self) -> Result<PublishStats, ClientError> {
        // Join the flusher first: Bye must be the last frame on the
        // socket or it would overtake still-queued deltas.
        if let Some(writer) = self.writer.take() {
            writer.close().map_err(ClientError::Io)?;
        }
        wire::write_frame(
            &mut self.stream,
            &Frame::Bye(ByeInfo {
                inst: observe::instance_id(),
                epoch: self.epoch,
            }),
        )?;
        self.stream
            .set_read_timeout(Some(Duration::from_secs(10)))?;
        match self.reader.next_frame()? {
            Frame::Ack(_) => Ok(self.stats),
            other => Err(ClientError::Protocol(format!(
                "expected ack to bye, got {other:?}"
            ))),
        }
    }
}

/// The subscribing end: receives every merge epoch the daemon
/// broadcasts.
pub struct Subscriber {
    stream: UnixStream,
    reader: wire::FrameReader<UnixStream>,
    daemon_inst: u64,
}

impl Subscriber {
    /// Connects and registers for epoch broadcasts.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Subscriber, ClientError> {
        let mut stream = UnixStream::connect(socket.as_ref())?;
        wire::write_frame(
            &mut stream,
            &Frame::Hello(Hello {
                role: Role::Subscriber,
                pid: u64::from(std::process::id()),
                inst: observe::instance_id(),
                sampled_hz: 0,
                points: Vec::new(),
            }),
        )?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut reader = wire::FrameReader::new(stream.try_clone()?);
        match reader.next_frame()? {
            Frame::Ack(ack) => {
                observe::emit(observe::EventKind::FleetConnect {
                    role: "subscriber".to_string(),
                    daemon_inst: ack.inst,
                    dataset: 0,
                });
                Ok(Subscriber {
                    stream,
                    reader,
                    daemon_inst: ack.inst,
                })
            }
            Frame::Error(reason) => Err(ClientError::Refused(reason)),
            other => Err(ClientError::Protocol(format!(
                "expected ack to hello, got {other:?}"
            ))),
        }
    }

    /// The daemon's `pgmp_observe::instance_id`, learned from its ack
    /// (0 when talking to a v1 daemon).
    pub fn daemon_inst(&self) -> u64 {
        self.daemon_inst
    }

    /// Blocks until the next [`EpochUpdate`] arrives, up to `timeout`.
    /// Parse `update.profile` with [`pgmp_profiler::StoredProfile::load_from_str`]
    /// and feed the weights to `AdaptiveEngine::apply_fleet_profile`.
    ///
    /// A timeout ([`ClientError::Timeout`]) loses nothing: a partially
    /// received broadcast stays buffered and the next call resumes it.
    pub fn next_epoch(&mut self, timeout: Duration) -> Result<EpochUpdate, ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        match self.reader.next_frame()? {
            Frame::Epoch(update) => Ok(update),
            other => Err(ClientError::Protocol(format!(
                "expected epoch broadcast, got {other:?}"
            ))),
        }
    }
}
