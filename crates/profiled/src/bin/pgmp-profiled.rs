//! `pgmp-profiled` — the fleet profile daemon.
//!
//! ```text
//! pgmp-profiled serve --socket S --profile P [OPTIONS]
//! pgmp-profiled shutdown --socket S
//!
//! serve OPTIONS:
//!   --socket <path>        Unix-domain socket to listen on (required)
//!   --profile <path>       canonical merged profile to maintain (required)
//!   --interval-ms <ms>     merge/broadcast cadence (default 250)
//!   --trace <out.jsonl>    stream a structured trace of the daemon
//!                          (ingest batches, merges, broadcasts) while
//!                          it runs; inspect with `pgmp-trace`
//!   --metrics-listen <addr> serve the live metrics registry over HTTP
//!                          (`/metrics` Prometheus text, `/metrics.json`
//!                          snapshot); `127.0.0.1:0` picks a free port,
//!                          printed to stderr as `metrics: listening on`
//! ```
//!
//! `serve` blocks until a `shutdown` request arrives, then performs one
//! final merge, writes the canonical profile, and exits — so even a
//! short-lived fleet session always leaves a profile behind. See
//! `docs/FLEET.md` for the full operational story.

use pgmp_observe as observe;
use pgmp_profiled::daemon::{Daemon, DaemonConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pgmp-profiled serve --socket S --profile P [--interval-ms MS] [--trace OUT.jsonl] \
         [--metrics-listen ADDR]\n\
         \u{20}      pgmp-profiled shutdown --socket S"
    );
    std::process::exit(2)
}

fn serve(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut socket = None;
    let mut profile = None;
    let mut interval_ms = 250u64;
    let mut trace = None;
    let mut metrics_listen = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => profile = Some(args.next().unwrap_or_else(|| usage())),
            "--interval-ms" => {
                interval_ms = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-listen" => metrics_listen = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (Some(socket), Some(profile)) = (socket, profile) else {
        usage()
    };
    if let Some(path) = &trace {
        // Streaming, not buffered: a daemon runs indefinitely and its
        // trace must survive however it dies.
        observe::start_streaming(path, observe::TraceConfig::default())
            .map_err(|e| e.to_string())?;
    }
    // Held for the daemon's lifetime; dropped (and joined) on the way
    // out so the last scrape either completes or gets a clean close.
    let _metrics_server = match &metrics_listen {
        Some(addr) => {
            let server = observe::MetricsServer::bind(addr)
                .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
            // The bound address on its own line, parseable by scripts
            // (with port 0 the kernel picked the real one).
            eprintln!("metrics: listening on http://{}/metrics", server.addr());
            Some(server)
        }
        None => None,
    };
    let mut config = DaemonConfig::new(socket, profile);
    config.merge_interval = Duration::from_millis(interval_ms.max(1));
    eprintln!(
        "pgmp-profiled: serving {} -> {} every {}ms",
        config.socket.display(),
        config.profile.display(),
        config.merge_interval.as_millis()
    );
    let daemon = Daemon::new(config);
    let result = daemon.run().map_err(|e| e.to_string());
    eprintln!("pgmp-profiled: shut down after {} epoch(s)", daemon.epochs());
    if trace.is_some() {
        match observe::stop_streaming() {
            Ok(summary) => eprintln!(
                "trace: {} event(s), {} bytes streamed, {} dropped",
                summary.events, summary.bytes, summary.dropped
            ),
            Err(e) => eprintln!("pgmp-profiled: failed to finish trace: {e}"),
        }
    }
    result
}

fn shutdown(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut socket = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(socket) = socket else { usage() };
    Daemon::request_shutdown(&socket).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let result = match args.next().as_deref() {
        Some("serve") => serve(args),
        Some("shutdown") => shutdown(args),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pgmp-profiled: {msg}");
            ExitCode::FAILURE
        }
    }
}
