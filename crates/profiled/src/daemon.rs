//! The daemon side: accept loop, slot-table handshake, sharded delta
//! ingestion, and the periodic merge → write → broadcast cycle.
//!
//! ## Data model
//!
//! The daemon owns one **canonical slot table** ([`SlotMap`]) and one
//! [`AtomicSlotArray`] per connected-ever publisher (its *dataset*).
//! The handshake gates on [`SlotMap::check_mergeable`], the same policy
//! `pgmp-profile merge` applies to stored v2 tables. Slot ids are
//! process-local — dense slots are assigned partly at first execution,
//! so two runs of the *same program* under skewed workloads intern the
//! same points in different orders. A publisher whose table agrees with
//! the canonical one on every shared slot extends it and streams deltas
//! with no translation; one whose table merely *reorders* shared points
//! gets a per-connection remap vector (client slot → canonical slot),
//! keeping ingestion integer-only. Only a table sharing no point at all
//! with the canonical one — a different program, whose slot-indexed
//! counters could only alias — is refused with a typed [`Frame::Error`].
//!
//! Datasets are **cumulative**: a delta adds into the array and nothing
//! ever drains it, so the periodic merge sees each process's full
//! history and the result equals the offline §3.2 merge of per-process
//! profiles — the property the fleet e2e test checks against an oracle.
//! Disconnected publishers keep their dataset; their contribution stays
//! in the canonical profile, exactly as their stored profile would.
//!
//! ## Merge cycle
//!
//! Every `merge_interval` (and once more at shutdown) the daemon
//! snapshots every dataset, skips the all-zero ones, folds them with
//! [`ProfileInformation::merge`] in dataset order, writes the result as
//! a v2 [`StoredProfile`] (atomic rename), computes L1 and
//! total-variation drift against the previous merge, and pushes a
//! [`Frame::Epoch`] to every subscriber. Each stage emits
//! `pgmp-observe` events (`ingest_batch`, `merge`, `broadcast`) and
//! metrics, so a trace of the daemon explains every canonical profile
//! it ever wrote.

use crate::wire::{self, Ack, EpochUpdate, Frame, Hello, Role, WireError};
use pgmp_adaptive::{drift, DriftMetric};
use pgmp_observe as observe;
use pgmp_profiler::{Dataset, ProfileInformation, Provenance, SlotMap, StoredProfile};
use pgmp_rt::AtomicSlotArray;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`Daemon`] serves.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path to listen on. A stale socket file left by
    /// a dead daemon is removed at bind time.
    pub socket: PathBuf,
    /// Where the canonical merged profile is (atomically) written.
    pub profile: PathBuf,
    /// How often to merge, write, and broadcast.
    pub merge_interval: Duration,
}

impl DaemonConfig {
    /// A config with the given paths and a 250 ms merge cadence.
    pub fn new(socket: impl Into<PathBuf>, profile: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            profile: profile.into(),
            merge_interval: Duration::from_millis(250),
        }
    }
}

/// Serving failed. Connection-level trouble (a client that sends
/// garbage, disconnects mid-frame, or fails its handshake) is handled
/// per-connection and never surfaces here.
#[derive(Debug)]
pub enum DaemonError {
    /// Binding or accepting on the socket failed.
    Io(io::Error),
    /// Writing the canonical profile failed.
    Store(pgmp_profiler::ProfileStoreError),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon i/o error: {e}"),
            DaemonError::Store(e) => write!(f, "writing canonical profile: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Store(e) => Some(e),
        }
    }
}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> DaemonError {
        DaemonError::Io(e)
    }
}

impl From<pgmp_profiler::ProfileStoreError> for DaemonError {
    fn from(e: pgmp_profiler::ProfileStoreError) -> DaemonError {
        DaemonError::Store(e)
    }
}

/// What the daemon remembers about a dataset's publisher, from its
/// [`Hello`]: the correlation id for trace joins and the declared
/// counter provenance for the merged profile.
#[derive(Debug, Clone, Copy)]
struct PublisherMeta {
    /// The publisher's `pgmp_observe::instance_id` (0: v1 client).
    peer_inst: u64,
    /// 0 for exact counters, else the declared sampling rate in Hz.
    sampled_hz: u32,
}

struct State {
    config: DaemonConfig,
    /// The canonical slot table; grows monotonically as publishers with
    /// longer (compatible) tables connect.
    table: Mutex<SlotMap>,
    /// One cumulative counter array per publisher that ever connected.
    datasets: Mutex<Vec<Arc<AtomicSlotArray>>>,
    /// Handshake-declared provenance per dataset, parallel to `datasets`.
    meta: Mutex<Vec<PublisherMeta>>,
    /// Epoch streams of connected subscribers.
    subscribers: Mutex<Vec<UnixStream>>,
    /// Merge epochs completed so far.
    epoch: AtomicU64,
    /// The previous merge's weights, for drift.
    last_merged: Mutex<ProfileInformation>,
    /// Whether the mixed-provenance warning has been printed yet (it is
    /// worth one line per daemon lifetime, not one per 250 ms merge).
    mixed_warned: AtomicBool,
    shutdown: AtomicBool,
}

/// A running (or runnable) fleet daemon. [`Daemon::run`] blocks the
/// calling thread until a [`Frame::Shutdown`] arrives; embed it in a
/// thread for in-process tests, or use the `pgmp-profiled` binary.
pub struct Daemon {
    state: Arc<State>,
}

impl Daemon {
    /// Creates a daemon for `config`. Nothing is bound until [`run`].
    ///
    /// [`run`]: Daemon::run
    pub fn new(config: DaemonConfig) -> Daemon {
        Daemon {
            state: Arc::new(State {
                config,
                table: Mutex::new(SlotMap::new()),
                datasets: Mutex::new(Vec::new()),
                meta: Mutex::new(Vec::new()),
                subscribers: Mutex::new(Vec::new()),
                epoch: AtomicU64::new(0),
                last_merged: Mutex::new(ProfileInformation::empty()),
                mixed_warned: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Asks a daemon listening on `socket` to merge once more, write the
    /// canonical profile, and exit. Returns once the request is sent.
    pub fn request_shutdown(socket: impl AsRef<Path>) -> Result<(), WireError> {
        let mut stream = UnixStream::connect(socket.as_ref())?;
        wire::write_frame(&mut stream, &Frame::Shutdown)
    }

    /// Binds the socket and serves until shut down. The final merge (and
    /// canonical profile write) happens before this returns, so a profile
    /// file exists even for runs shorter than one merge interval.
    pub fn run(&self) -> Result<(), DaemonError> {
        let state = &self.state;
        // A daemon that died uncleanly leaves its socket file behind;
        // binding over it is the recovery path.
        if state.config.socket.exists() {
            std::fs::remove_file(&state.config.socket)?;
        }
        let listener = UnixListener::bind(&state.config.socket)?;
        listener.set_nonblocking(true)?;
        // The daemon's own correlation id, visible on the metrics
        // endpoint so a scrape can be joined to merged traces.
        observe::metrics().gauge_set("profiled.inst", observe::instance_id() as f64);
        let mut last_merge = Instant::now();
        let mut serving = Vec::new();
        while !state.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(state);
                    serving.push(std::thread::spawn(move || serve_connection(&state, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
            if last_merge.elapsed() >= state.config.merge_interval {
                merge_epoch(state, false)?;
                last_merge = Instant::now();
            }
            serving.retain(|h| !h.is_finished());
        }
        // Give in-flight connection threads a moment to drain their
        // streams before the final merge; each polls the shutdown flag
        // on a short read timeout, so this converges quickly.
        for handle in serving {
            let _ = handle.join();
        }
        merge_epoch(state, true)?;
        let _ = std::fs::remove_file(&state.config.socket);
        Ok(())
    }

    /// Merge epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }
}

/// One connection, one thread, frames processed strictly in order —
/// which is what makes [`Frame::Bye`] a drain barrier: by the time the
/// daemon acks it, every earlier delta on this connection is in the
/// dataset array.
fn serve_connection(state: &Arc<State>, mut stream: UnixStream) {
    // Short read timeouts let the thread notice daemon shutdown even
    // when the peer goes quiet without disconnecting; the FrameReader
    // keeps partially received frames across those timeouts.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = match stream.try_clone() {
        Ok(read_half) => wire::FrameReader::new(read_half),
        Err(_) => return,
    };
    let hello = loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.next_frame() {
            Ok(Frame::Hello(h)) => break h,
            Ok(Frame::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) => {
                refuse(&mut stream, "expected hello");
                return;
            }
            Err(WireError::Io(e)) if would_block(&e) => continue,
            Err(_) => {
                refuse(&mut stream, "malformed handshake");
                return;
            }
        }
    };
    match hello.role {
        Role::Publisher => serve_publisher(state, stream, reader, hello),
        Role::Subscriber => serve_subscriber(state, stream, reader, &hello),
    }
}

fn serve_publisher(
    state: &Arc<State>,
    mut stream: UnixStream,
    mut reader: wire::FrameReader<UnixStream>,
    hello: Hello,
) {
    let client_table = match SlotMap::from_points(hello.points) {
        Ok(t) => t,
        Err(dup) => {
            refuse(&mut stream, &format!("duplicate profile point `{dup}`"));
            return;
        }
    };
    // The handshake's slot-table gate: the same `check_mergeable` policy
    // as `pgmp-profile merge`. Order-compatible tables take the
    // zero-translation path; tables that interned the same points in a
    // different order (dense slots are assigned partly at first
    // execution, so a skewed workload reorders them) get a per-connection
    // remap, keeping the hot path integer-only. Only a table sharing no
    // point with the canonical one — a different program — is refused.
    let client_slots = client_table.len();
    let (dataset, array, remap) = {
        let mut table = state.table.lock().expect("slot table lock poisoned");
        let remap = match table.check_mergeable(&client_table) {
            Ok(pgmp_profiler::SlotCompat::Extends) => {
                for p in client_table.points() {
                    table.resolve(*p);
                }
                None
            }
            Ok(pgmp_profiler::SlotCompat::Rekey(divergence)) => {
                observe::metrics().counter_add("profiled.handshake_remaps", 1);
                eprintln!(
                    "pgmp-profiled: publisher pid {} re-keyed ({divergence})",
                    hello.pid
                );
                Some(
                    client_table
                        .points()
                        .iter()
                        .map(|p| table.resolve(*p))
                        .collect::<Vec<u32>>(),
                )
            }
            Err(mismatch) => {
                drop(table);
                refuse(&mut stream, &mismatch.to_string());
                observe::metrics().counter_add("profiled.handshake_rejects", 1);
                return;
            }
        };
        let mut datasets = state.datasets.lock().expect("datasets lock poisoned");
        let array = Arc::new(AtomicSlotArray::new());
        datasets.push(Arc::clone(&array));
        state
            .meta
            .lock()
            .expect("meta lock poisoned")
            .push(PublisherMeta {
                peer_inst: hello.inst,
                sampled_hz: hello.sampled_hz,
            });
        ((datasets.len() - 1) as u32, array, remap)
    };
    // The daemon half of the correlation handshake: this event and the
    // client's `fleet_connect` carry each other's instance ids, giving
    // `pgmp-trace merge` its cross-process happens-before edge.
    observe::emit(observe::EventKind::FleetHello {
        role: "publisher".to_string(),
        peer_inst: hello.inst,
        dataset,
    });
    let ack = Frame::Ack(Ack {
        dataset,
        epoch: state.epoch.load(Ordering::SeqCst),
        inst: observe::instance_id(),
    });
    if wire::write_frame(&mut stream, &ack).is_err() {
        return;
    }
    observe::metrics().counter_add("profiled.publishers", 1);
    if hello.sampled_hz > 0 {
        observe::metrics().gauge_set(
            &format!("profiled.provenance_sampled_hz.{dataset}"),
            f64::from(hello.sampled_hz),
        );
    }
    loop {
        match reader.next_frame() {
            Ok(Frame::Delta(delta)) => {
                let mut hits = 0u64;
                for (slot, count) in &delta.counts {
                    // Every slot must come from the handshake table — the
                    // canonical table can only attribute those.
                    if *slot as usize >= client_slots {
                        refuse(
                            &mut stream,
                            &format!("delta slot {slot} outside the {client_slots}-slot handshake table"),
                        );
                        return;
                    }
                    let canonical = match &remap {
                        Some(m) => m[*slot as usize],
                        None => *slot,
                    };
                    array.add(canonical, *count);
                    hits += count;
                }
                observe::emit(observe::EventKind::IngestBatch {
                    dataset,
                    epoch: delta.epoch,
                    slots: delta.counts.len() as u32,
                    hits,
                    peer_inst: hello.inst,
                });
                let m = observe::metrics();
                m.counter_add("profiled.ingest_batches", 1);
                m.counter_add("profiled.ingest_hits", hits);
            }
            Ok(Frame::Bye(_)) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Ack(Ack {
                        dataset,
                        epoch: state.epoch.load(Ordering::SeqCst),
                        inst: observe::instance_id(),
                    }),
                );
                return;
            }
            Ok(Frame::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) => {
                refuse(&mut stream, "unexpected frame from publisher");
                return;
            }
            Err(WireError::Io(e)) if would_block(&e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // disconnect or garbage: dataset stays
        }
    }
}

fn serve_subscriber(
    state: &Arc<State>,
    mut stream: UnixStream,
    mut reader: wire::FrameReader<UnixStream>,
    hello: &Hello,
) {
    observe::emit(observe::EventKind::FleetHello {
        role: "subscriber".to_string(),
        peer_inst: hello.inst,
        dataset: 0,
    });
    let ack = Frame::Ack(Ack {
        dataset: 0,
        epoch: state.epoch.load(Ordering::SeqCst),
        inst: observe::instance_id(),
    });
    if wire::write_frame(&mut stream, &ack).is_err() {
        return;
    }
    if let Ok(writer) = stream.try_clone() {
        state
            .subscribers
            .lock()
            .expect("subscribers lock poisoned")
            .push(writer);
        observe::metrics().counter_add("profiled.subscribers", 1);
    }
    // Hold the read side to notice disconnect (broadcast drops the
    // write side on error) and to accept a shutdown request.
    loop {
        match reader.next_frame() {
            Ok(Frame::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Ok(Frame::Bye(_)) => return,
            Err(WireError::Io(e)) if would_block(&e) && state.shutdown.load(Ordering::SeqCst) => {
                return;
            }
            Err(WireError::Io(e)) if would_block(&e) => {} // quiet peer: poll again
            Err(_) => return,
            _ => {}
        }
    }
}

/// One §3.2 merge: snapshot every dataset, fold, write, broadcast.
/// `force_write` (the shutdown path) writes the canonical profile even
/// when no dataset has any hits yet, so the file always exists.
fn merge_epoch(state: &Arc<State>, force_write: bool) -> Result<(), DaemonError> {
    let table = state.table.lock().expect("slot table lock poisoned").clone();
    let (arrays, meta) = {
        let datasets = state.datasets.lock().expect("datasets lock poisoned");
        let meta = state.meta.lock().expect("meta lock poisoned");
        (datasets.clone(), meta.clone())
    };
    let m = observe::metrics();
    let mut datasets = Vec::new();
    let mut participating: Vec<usize> = Vec::new();
    for (i, array) in arrays.iter().enumerate() {
        let mut d = Dataset::new();
        let mut hits = 0u64;
        for slot in 0..table.len() as u32 {
            // `get`, not `take`: datasets are cumulative so the merge
            // always equals the offline merge of full per-process runs.
            let count = array.get(slot);
            if count > 0 {
                d.record(table.point(slot), count);
                hits += count;
            }
        }
        if !d.is_empty() {
            // Per-publisher fleet gauges, keyed by dataset id: the
            // cumulative hits and the publisher's correlation id, so a
            // metrics scrape can be joined to merged traces.
            m.gauge_set(&format!("profiled.dataset_hits.{i}"), hits as f64);
            if let Some(pm) = meta.get(i) {
                m.gauge_set(&format!("profiled.dataset_inst.{i}"), pm.peer_inst as f64);
            }
            participating.push(i);
            datasets.push(d);
        }
    }
    if datasets.is_empty() && !force_write {
        return Ok(());
    }
    // The merge span: everything from the fold to the canonical write
    // is one timed `merge` event (snapshotting above is excluded so an
    // idle tick leaves no half-open span behind).
    let span = observe::timer();
    let merged = datasets
        .iter()
        .map(ProfileInformation::from_dataset)
        .reduce(|acc, info| acc.merge(&info))
        .unwrap_or_else(ProfileInformation::empty);
    let (l1, tv) = {
        let last = state.last_merged.lock().expect("last-merged lock poisoned");
        (
            drift(&merged, &last, DriftMetric::L1),
            drift(&merged, &last, DriftMetric::TotalVariation),
        )
    };
    let epoch = state.epoch.fetch_add(1, Ordering::SeqCst) + 1;
    // Provenance of the canonical profile, from the handshake-declared
    // provenance of every dataset that contributed: a uniform fleet
    // carries its provenance through; a mix of exact counters and
    // sampled estimates degrades to implicit exact with a warning —
    // the same policy as `pgmp-profile merge`.
    let mut provs: Vec<Provenance> = Vec::new();
    for &i in &participating {
        let p = match meta.get(i) {
            Some(pm) if pm.sampled_hz > 0 => Provenance::Sampled { hz: pm.sampled_hz },
            _ => Provenance::Exact,
        };
        if !provs.contains(&p) {
            provs.push(p);
        }
    }
    let provenance = match provs.as_slice() {
        [] => Provenance::Exact,
        [one] => *one,
        mixed => {
            m.counter_add("profiled.mixed_provenance_merges", 1);
            if !state.mixed_warned.swap(true, Ordering::SeqCst) {
                eprintln!(
                    "pgmp-profiled: warning: fleet mixes publisher provenances ({}); \
                     merged weights inherit the estimates' sampling error",
                    mixed
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(" + ")
                );
            }
            Provenance::Exact
        }
    };
    let stored = StoredProfile::v2(merged.clone(), Some(table)).with_provenance(provenance);
    stored.store_file(&state.config.profile)?;
    observe::finish(span, |duration_us| observe::EventKind::Merge {
        epoch,
        datasets: datasets.len() as u32,
        points: merged.len() as u32,
        l1,
        tv,
        duration_us,
    });
    m.counter_add("profiled.merges", 1);
    m.gauge_set("profiled.fleet_l1", l1);
    m.gauge_set("profiled.fleet_tv", tv);
    m.gauge_set("profiled.datasets", datasets.len() as f64);
    m.gauge_set(
        "profiled.merged_sampled_hz",
        match provenance {
            Provenance::Sampled { hz } => f64::from(hz),
            _ => 0.0,
        },
    );
    *state.last_merged.lock().expect("last-merged lock poisoned") = merged.clone();

    let update = Frame::Epoch(EpochUpdate {
        epoch,
        inst: observe::instance_id(),
        datasets: datasets.len() as u32,
        points: merged.len() as u32,
        l1,
        tv,
        path: state.config.profile.display().to_string(),
        profile: stored.store_to_string(),
    });
    let bytes = update.encode();
    let mut subscribers = state.subscribers.lock().expect("subscribers lock poisoned");
    let before = subscribers.len();
    subscribers.retain_mut(|s| io::Write::write_all(s, &bytes).is_ok());
    let reached = subscribers.len();
    drop(subscribers);
    if before > 0 {
        observe::emit(observe::EventKind::Broadcast {
            epoch,
            subscribers: reached as u32,
            bytes: (bytes.len() * reached) as u64,
        });
    }
    Ok(())
}

fn refuse(stream: &mut UnixStream, reason: &str) {
    let _ = wire::write_frame(stream, &Frame::Error(reason.to_string()));
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
