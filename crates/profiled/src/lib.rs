//! `pgmp-profiled` — the fleet-scale profile daemon.
//!
//! One machine, many runner processes, one canonical profile. Each
//! `pgmp-run` process profiles its own workload and streams **counter
//! deltas** — `(slot, u64)` pairs under the v2 dense slot table, no
//! strings on the hot path — over a local Unix-domain socket to a single
//! daemon. The daemon folds every process's stream into a per-dataset
//! [`pgmp_rt::AtomicSlotArray`], periodically merges all datasets with
//! the paper's §3.2 dataset-weighted average, writes the canonical
//! [`pgmp_profiler::StoredProfile`] v2 atomically, and broadcasts each
//! merge epoch (merged weights plus L1/total-variation fleet drift) to
//! subscribed processes, which feed it straight into
//! `pgmp_adaptive::AdaptiveEngine::apply_fleet_profile`.
//!
//! The crate splits into:
//!
//! - [`wire`] — the versioned, length-prefixed frame protocol. JSON
//!   control frames (handshake, acks, epoch broadcasts) with the same
//!   strict typed-error discipline as `pgmp-observe`'s JSONL codec;
//!   a binary hot-path delta frame.
//! - [`daemon`] — the server: slot-table handshake gated on
//!   [`pgmp_profiler::SlotMap::check_compatible`], sharded atomic
//!   ingestion, the periodic merge/write/broadcast loop.
//! - [`client`] — [`client::Publisher`] (bounded, never blocks the
//!   interpreter; drops are counted exactly) and [`client::Subscriber`]
//!   (blocking epoch reader).
//!
//! The binary `pgmp-profiled` serves a socket; `pgmp-run --publish` /
//! `--subscribe` are the client ends. `docs/FLEET.md` is the normative
//! protocol and operations guide.

pub mod client;
pub mod daemon;
pub mod wire;

pub use client::{ClientError, PublishStats, Publisher, Subscriber};
pub use daemon::{Daemon, DaemonConfig, DaemonError};
pub use wire::{Ack, Delta, EpochUpdate, Frame, Hello, Role, WireError, MAX_FRAME_LEN};
