//! The versioned, length-prefixed frame protocol between runner
//! processes and `pgmp-profiled`.
//!
//! Every message is one frame:
//!
//! ```text
//! u32 length (LE) | u8 kind | payload (length - 1 bytes)
//! ```
//!
//! The *control channel* (handshake, acknowledgements, epoch broadcasts)
//! carries JSON payloads — same single-line discipline, version stamping,
//! and typed decode errors as `pgmp-observe`'s JSONL trace codec. The
//! *hot path* is the [`Frame::Delta`] frame: a binary `(slot, u64)` pair
//! list keyed against the slot table exchanged at handshake, so steady
//! publishing moves no strings at all. The normative spec lives in
//! `docs/FLEET.md`; the codec is fixture-free but property-tested
//! (`tests/wire_props.rs`): truncation, bit flips, and garbage decode to
//! typed [`WireError`]s, never panics.

use pgmp_observe::json::{self, Json};
use pgmp_syntax::SourceObject;
use std::io::{Read, Write};

/// Version stamped into every JSON control payload as `"v"`.
///
/// v2 added causal-correlation fields: `inst` (the sender's
/// `pgmp_observe::instance_id`) and `sampled_hz` provenance on
/// [`Hello`], the daemon's `inst` on [`Ack`] and [`EpochUpdate`], and a
/// `{v, inst, epoch}` payload on [`Frame::Bye`]. Every v2 field has a
/// zero/absent default, so v1 peers keep decoding: the reader accepts
/// any version in `MIN_WIRE_VERSION..=WIRE_VERSION` and fills the
/// missing fields with those defaults.
pub const WIRE_VERSION: u64 = 2;

/// Oldest control-payload version the decoder still accepts.
pub const MIN_WIRE_VERSION: u64 = 1;

/// Upper bound on one frame's length field. Anything larger is rejected
/// before allocation — a garbage or hostile header cannot make the
/// daemon reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Who a connecting process is, declared in its [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Streams counter deltas in; owns one daemon-side dataset.
    Publisher,
    /// Receives epoch broadcasts (merged weights + fleet drift).
    Subscriber,
}

impl Role {
    fn as_str(self) -> &'static str {
        match self {
            Role::Publisher => "publisher",
            Role::Subscriber => "subscriber",
        }
    }
}

/// The handshake a client opens its connection with. A publisher sends
/// its dense slot table (`points`, in slot order) so every later
/// [`Frame::Delta`] can name points by bare `u32` slot; a subscriber
/// sends an empty table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    pub role: Role,
    /// Client process id, for provenance in daemon logs and traces.
    pub pid: u64,
    /// The client's `pgmp_observe::instance_id` — the join key that
    /// correlates this connection's daemon-side trace events with the
    /// client's own trace. 0 from v1 clients (unknown).
    pub inst: u64,
    /// Counter provenance a publisher declares: 0 for exact counts,
    /// otherwise the sampling rate in Hz (`sampled@hz`). The daemon
    /// records it on the merged canonical profile and warns when a
    /// fleet mixes exact and sampled publishers.
    pub sampled_hz: u32,
    /// The client's slot table: `points[i]` is the point its deltas call
    /// slot `i`. Gated by `SlotMap::check_mergeable` against the daemon's
    /// canonical table — order-compatible tables stream untranslated,
    /// reordered tables of the same program are re-keyed per connection,
    /// and only a table sharing no point is refused.
    pub points: Vec<SourceObject>,
}

/// Daemon acceptance of a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The dataset id assigned to a publisher (0 for subscribers).
    pub dataset: u32,
    /// The daemon's current merge epoch at accept time.
    pub epoch: u64,
    /// The daemon's `pgmp_observe::instance_id`, so client traces can
    /// name which daemon they joined. 0 from v1 daemons.
    pub inst: u64,
}

/// The hot-path frame: counts accrued since the publisher's previous
/// delta, as `(slot, additional_hits)` pairs under the handshake table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// The publisher's own epoch counter at flush time (provenance; the
    /// daemon's merge cadence is independent).
    pub epoch: u64,
    pub counts: Vec<(u32, u64)>,
}

/// One epoch broadcast: the daemon merged every dataset and pushed the
/// outcome to its subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochUpdate {
    /// Daemon merge epoch (monotone).
    pub epoch: u64,
    /// The daemon's `pgmp_observe::instance_id`: together with `epoch`
    /// this is the join key a subscriber stamps on its `fleet_apply`
    /// trace event, linking its re-optimization back to the exact
    /// daemon merge that caused it. 0 from v1 daemons.
    pub inst: u64,
    /// Datasets that participated in the merge.
    pub datasets: u32,
    /// Profile points in the merged result.
    pub points: u32,
    /// L1 drift of the merged weights vs the previous merge.
    pub l1: f64,
    /// Total-variation drift vs the previous merge (`[0, 1]`).
    pub tv: f64,
    /// Path of the canonical profile the daemon just wrote.
    pub path: String,
    /// The merged canonical profile itself, serialized in the stored
    /// v2 format — subscribers re-optimize from this without touching
    /// the filesystem.
    pub profile: String,
}

/// Correlation ids carried on a publisher's drain barrier (v2). A v1
/// `Bye` has no payload and decodes as the all-zero default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByeInfo {
    /// The departing client's `pgmp_observe::instance_id` (0: unknown).
    pub inst: u64,
    /// The publisher's final flush epoch, so the daemon trace records
    /// exactly how much of the client's stream it drained.
    pub epoch: u64,
}

/// Every message the protocol knows.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon: identify and (for publishers) exchange the table.
    Hello(Hello),
    /// Daemon → client: handshake accepted / drain barrier reached.
    Ack(Ack),
    /// Daemon → client: refusal, with a human-readable reason. The
    /// connection closes after this frame.
    Error(String),
    /// Publisher → daemon: the binary hot-path delta.
    Delta(Delta),
    /// Daemon → subscriber: one merge epoch's outcome.
    Epoch(EpochUpdate),
    /// Publisher → daemon: drain barrier before disconnect. The daemon
    /// replies [`Frame::Ack`] once every earlier delta is ingested.
    Bye(ByeInfo),
    /// Control client → daemon: merge once more, write the canonical
    /// profile, and exit (`pgmp-profiled shutdown`).
    Shutdown,
}

const KIND_HELLO: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_DELTA: u8 = 4;
const KIND_EPOCH: u8 = 5;
const KIND_BYE: u8 = 6;
const KIND_SHUTDOWN: u8 = 7;

/// Decoding or transporting a frame failed. Every hostile input maps
/// here; the codec never panics.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file I/O failed (includes EOF mid-frame when
    /// reading from a stream).
    Io(std::io::Error),
    /// The buffer ends before the frame does (truncation).
    Truncated,
    /// The length field is 0 or exceeds [`MAX_FRAME_LEN`].
    BadLength(u32),
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// The payload does not decode under its kind's schema.
    BadPayload(String),
    /// A JSON control payload declared an unsupported `"v"`.
    BadVersion(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::BadLength(n) => write!(f, "bad frame length {n}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPayload(m) => write!(f, "malformed frame payload: {m}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> WireError {
    WireError::BadPayload(msg.into())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn get_u64(obj: &Json, name: &str) -> Result<u64, WireError> {
    obj.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or malformed field `{name}`")))
}

/// A field added by a later wire version: absent (a v1 peer) means
/// `default`, present-but-malformed is still a typed error.
fn get_u64_or(obj: &Json, name: &str, default: u64) -> Result<u64, WireError> {
    match obj.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("malformed field `{name}`"))),
    }
}

fn get_f64(obj: &Json, name: &str) -> Result<f64, WireError> {
    obj.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or malformed field `{name}`")))
}

fn get_str<'a>(obj: &'a Json, name: &str) -> Result<&'a str, WireError> {
    obj.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing or malformed field `{name}`")))
}

/// Parses and version-checks a JSON control payload. Any version in
/// `MIN_WIRE_VERSION..=WIRE_VERSION` is accepted — later-version fields
/// default when absent — so a v2 daemon serves a v1 fleet unchanged;
/// versions outside the range are the typed [`WireError::BadVersion`].
fn control_payload(payload: &[u8]) -> Result<Json, WireError> {
    let text = std::str::from_utf8(payload).map_err(|_| bad("control payload not UTF-8"))?;
    let obj = json::parse(text).map_err(|e| bad(format!("control payload: {e}")))?;
    match obj.get("v").and_then(Json::as_u64) {
        Some(v) if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&v) => Ok(obj),
        Some(v) => Err(WireError::BadVersion(v)),
        None => Err(bad("control payload missing version")),
    }
}

impl Frame {
    fn kind_byte(&self) -> u8 {
        match self {
            Frame::Hello(_) => KIND_HELLO,
            Frame::Ack(_) => KIND_ACK,
            Frame::Error(_) => KIND_ERROR,
            Frame::Delta(_) => KIND_DELTA,
            Frame::Epoch(_) => KIND_EPOCH,
            Frame::Bye(_) => KIND_BYE,
            Frame::Shutdown => KIND_SHUTDOWN,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            Frame::Hello(h) => {
                let slots = h
                    .points
                    .iter()
                    .map(|p| {
                        Json::Arr(vec![
                            Json::Str(p.file.as_str().to_string()),
                            num(u64::from(p.bfp)),
                            num(u64::from(p.efp)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("v".into(), num(WIRE_VERSION)),
                    ("role".into(), Json::Str(h.role.as_str().into())),
                    ("pid".into(), num(h.pid)),
                    ("inst".into(), num(h.inst)),
                    ("sampled_hz".into(), num(u64::from(h.sampled_hz))),
                    ("slots".into(), Json::Arr(slots)),
                ])
                .to_string()
                .into_bytes()
            }
            Frame::Ack(a) => Json::Obj(vec![
                ("v".into(), num(WIRE_VERSION)),
                ("dataset".into(), num(u64::from(a.dataset))),
                ("epoch".into(), num(a.epoch)),
                ("inst".into(), num(a.inst)),
            ])
            .to_string()
            .into_bytes(),
            Frame::Error(msg) => Json::Obj(vec![
                ("v".into(), num(WIRE_VERSION)),
                ("error".into(), Json::Str(msg.clone())),
            ])
            .to_string()
            .into_bytes(),
            Frame::Delta(d) => {
                let mut out = Vec::with_capacity(12 + d.counts.len() * 12);
                out.extend_from_slice(&d.epoch.to_le_bytes());
                out.extend_from_slice(&(d.counts.len() as u32).to_le_bytes());
                for (slot, count) in &d.counts {
                    out.extend_from_slice(&slot.to_le_bytes());
                    out.extend_from_slice(&count.to_le_bytes());
                }
                out
            }
            Frame::Epoch(e) => Json::Obj(vec![
                ("v".into(), num(WIRE_VERSION)),
                ("epoch".into(), num(e.epoch)),
                ("inst".into(), num(e.inst)),
                ("datasets".into(), num(u64::from(e.datasets))),
                ("points".into(), num(u64::from(e.points))),
                ("l1".into(), Json::Num(e.l1)),
                ("tv".into(), Json::Num(e.tv)),
                ("path".into(), Json::Str(e.path.clone())),
                ("profile".into(), Json::Str(e.profile.clone())),
            ])
            .to_string()
            .into_bytes(),
            // A correlation-free Bye keeps the v1 empty payload, so old
            // daemons still drain gracefully behind a new client that
            // has nothing to correlate.
            Frame::Bye(b) if *b == ByeInfo::default() => Vec::new(),
            Frame::Bye(b) => Json::Obj(vec![
                ("v".into(), num(WIRE_VERSION)),
                ("inst".into(), num(b.inst)),
                ("epoch".into(), num(b.epoch)),
            ])
            .to_string()
            .into_bytes(),
            Frame::Shutdown => Vec::new(),
        }
    }

    /// Encodes the whole frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let len = (payload.len() + 1) as u32;
        let mut out = Vec::with_capacity(payload.len() + 5);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.kind_byte());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a frame's body (kind byte already consumed).
    fn decode_body(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        match kind {
            KIND_HELLO => {
                let obj = control_payload(payload)?;
                let role = match get_str(&obj, "role")? {
                    "publisher" => Role::Publisher,
                    "subscriber" => Role::Subscriber,
                    other => return Err(bad(format!("unknown role `{other}`"))),
                };
                let pid = get_u64(&obj, "pid")?;
                let inst = get_u64_or(&obj, "inst", 0)?;
                let sampled_hz = u32::try_from(get_u64_or(&obj, "sampled_hz", 0)?)
                    .map_err(|_| bad("sampled_hz out of range"))?;
                let slots = obj
                    .get("slots")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing or malformed field `slots`"))?;
                let mut points = Vec::with_capacity(slots.len());
                for entry in slots {
                    let triple = entry
                        .as_arr()
                        .filter(|t| t.len() == 3)
                        .ok_or_else(|| bad("slot entry must be [file, bfp, efp]"))?;
                    let file = triple[0].as_str().ok_or_else(|| bad("slot file"))?;
                    let bfp = triple[1]
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| bad("slot bfp"))?;
                    let efp = triple[2]
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| bad("slot efp"))?;
                    points.push(SourceObject::new(file, bfp, efp));
                }
                Ok(Frame::Hello(Hello {
                    role,
                    pid,
                    inst,
                    sampled_hz,
                    points,
                }))
            }
            KIND_ACK => {
                let obj = control_payload(payload)?;
                Ok(Frame::Ack(Ack {
                    dataset: u32::try_from(get_u64(&obj, "dataset")?)
                        .map_err(|_| bad("dataset id out of range"))?,
                    epoch: get_u64(&obj, "epoch")?,
                    inst: get_u64_or(&obj, "inst", 0)?,
                }))
            }
            KIND_ERROR => {
                let obj = control_payload(payload)?;
                Ok(Frame::Error(get_str(&obj, "error")?.to_string()))
            }
            KIND_DELTA => {
                if payload.len() < 12 {
                    return Err(bad("delta shorter than its header"));
                }
                let epoch = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                let n = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
                let body = &payload[12..];
                if body.len() != n * 12 {
                    return Err(bad(format!(
                        "delta declares {n} pairs but carries {} bytes",
                        body.len()
                    )));
                }
                let mut counts = Vec::with_capacity(n);
                for pair in body.chunks_exact(12) {
                    let slot = u32::from_le_bytes(pair[0..4].try_into().unwrap());
                    let count = u64::from_le_bytes(pair[4..12].try_into().unwrap());
                    counts.push((slot, count));
                }
                Ok(Frame::Delta(Delta { epoch, counts }))
            }
            KIND_EPOCH => {
                let obj = control_payload(payload)?;
                Ok(Frame::Epoch(EpochUpdate {
                    epoch: get_u64(&obj, "epoch")?,
                    inst: get_u64_or(&obj, "inst", 0)?,
                    datasets: u32::try_from(get_u64(&obj, "datasets")?)
                        .map_err(|_| bad("datasets out of range"))?,
                    points: u32::try_from(get_u64(&obj, "points")?)
                        .map_err(|_| bad("points out of range"))?,
                    l1: get_f64(&obj, "l1")?,
                    tv: get_f64(&obj, "tv")?,
                    path: get_str(&obj, "path")?.to_string(),
                    profile: get_str(&obj, "profile")?.to_string(),
                }))
            }
            KIND_BYE => {
                // v1 sends no payload; v2 carries the correlation ids.
                if payload.is_empty() {
                    Ok(Frame::Bye(ByeInfo::default()))
                } else {
                    let obj = control_payload(payload)?;
                    Ok(Frame::Bye(ByeInfo {
                        inst: get_u64_or(&obj, "inst", 0)?,
                        epoch: get_u64_or(&obj, "epoch", 0)?,
                    }))
                }
            }
            KIND_SHUTDOWN => {
                if payload.is_empty() {
                    Ok(Frame::Shutdown)
                } else {
                    Err(bad("shutdown carries no payload"))
                }
            }
            other => Err(WireError::UnknownKind(other)),
        }
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// bytes consumed. [`WireError::Truncated`] when `buf` holds less
    /// than one whole frame — never a panic, whatever the bytes.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len));
        }
        let total = 4 + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let frame = Frame::decode_body(buf[4], &buf[5..total])?;
        Ok((frame, total))
    }
}

/// Reads exactly one frame from `r` (blocking). EOF before a complete
/// frame is [`WireError::Io`] with `UnexpectedEof`.
///
/// Only safe on a stream with no read timeout: a timeout mid-frame
/// would lose the bytes already consumed. Connections that poll with
/// read timeouts must use a [`FrameReader`], which buffers partial
/// frames across `WouldBlock`.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Frame::decode_body(body[0], &body[1..])
}

/// An incremental frame reader that survives read timeouts.
///
/// Bytes already received stay buffered when the underlying read
/// returns `WouldBlock`/`TimedOut`, so a poll loop can keep calling
/// [`FrameReader::next_frame`] without ever tearing a frame in half —
/// the property the daemon relies on to poll its shutdown flag between
/// reads.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`; reads are buffered internally from here on.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Returns the next complete frame. [`WireError::Io`] with
    /// `WouldBlock`/`TimedOut` means "no complete frame yet" — call
    /// again, nothing was lost. `UnexpectedEof` means the peer closed
    /// the stream (mid-frame or cleanly).
    pub fn next_frame(&mut self) -> Result<Frame, WireError> {
        loop {
            match Frame::decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Err(WireError::Truncated) => {} // need more bytes
                Err(e) => return Err(e),
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed the stream",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

/// Writes one frame to `w` (no flush policy of its own).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("w.scm", n, n + 1)
    }

    fn exemplars() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                role: Role::Publisher,
                pid: 4242,
                inst: 0xBEEF_CAFE,
                sampled_hz: 997,
                points: vec![p(0), p(1), SourceObject::new("lib/\"q\".scm", 7, 9)],
            }),
            Frame::Hello(Hello {
                role: Role::Subscriber,
                pid: 7,
                inst: 0,
                sampled_hz: 0,
                points: vec![],
            }),
            Frame::Ack(Ack {
                dataset: 3,
                epoch: 17,
                inst: 0xD00D,
            }),
            Frame::Error("incompatible slot tables: slot 4 differs".into()),
            Frame::Delta(Delta {
                epoch: 5,
                counts: vec![(0, 1), (9, u64::MAX), (1024, 77)],
            }),
            Frame::Delta(Delta {
                epoch: 0,
                counts: vec![],
            }),
            Frame::Epoch(EpochUpdate {
                epoch: 6,
                inst: 0xD00D,
                datasets: 3,
                points: 57,
                l1: 12.5,
                tv: 0.25,
                path: "/tmp/fleet.pgmp".into(),
                profile: "(pgmp-profile\n  (version 2)\n  (datasets 3))".into(),
            }),
            Frame::Bye(ByeInfo::default()),
            Frame::Bye(ByeInfo {
                inst: 0xBEEF_CAFE,
                epoch: 12,
            }),
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in exemplars() {
            let bytes = frame.encode();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "whole frame consumed: {frame:?}");
            assert_eq!(back, frame);
            // And through the stream reader.
            let mut cursor = &bytes[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        for frame in exemplars() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(WireError::Truncated) => {}
                    other => panic!("truncated at {cut}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected_before_allocation() {
        let mut oversized = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        oversized.push(KIND_BYE);
        assert!(matches!(
            Frame::decode(&oversized),
            Err(WireError::BadLength(n)) if n == MAX_FRAME_LEN + 1
        ));
        let zero = 0u32.to_le_bytes().to_vec();
        assert!(matches!(Frame::decode(&zero), Err(WireError::BadLength(0))));
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(99);
        assert!(matches!(
            Frame::decode(&buf),
            Err(WireError::UnknownKind(99))
        ));
    }

    #[test]
    fn delta_length_mismatch_is_typed() {
        let mut frame = Frame::Delta(Delta {
            epoch: 1,
            counts: vec![(1, 2)],
        })
        .encode();
        // Lie about the pair count without changing the frame length.
        let payload_n_offset = 4 + 1 + 8;
        frame[payload_n_offset] = 2;
        assert!(matches!(
            Frame::decode(&frame),
            Err(WireError::BadPayload(_))
        ));
    }

    #[test]
    fn control_version_skew_is_typed() {
        let bytes = Frame::Ack(Ack {
            dataset: 0,
            epoch: 0,
            inst: 0,
        })
        .encode();
        let text = String::from_utf8(bytes[5..].to_vec()).unwrap();
        let skewed = text.replace("\"v\":2", "\"v\":9");
        let mut frame = ((skewed.len() + 1) as u32).to_le_bytes().to_vec();
        frame.push(KIND_ACK);
        frame.extend_from_slice(skewed.as_bytes());
        assert!(matches!(
            Frame::decode(&frame),
            Err(WireError::BadVersion(9))
        ));
    }

    /// Builds a raw control frame from a literal payload, as a v1 peer
    /// would put it on the wire.
    fn raw(kind: u8, payload: &str) -> Vec<u8> {
        let mut frame = ((payload.len() + 1) as u32).to_le_bytes().to_vec();
        frame.push(kind);
        frame.extend_from_slice(payload.as_bytes());
        frame
    }

    #[test]
    fn v1_control_frames_decode_with_zero_defaults() {
        // Frames exactly as a v1 build wrote them: no inst, no
        // sampled_hz, empty bye. A v2 daemon must serve that fleet.
        let hello = raw(
            KIND_HELLO,
            r#"{"v":1,"role":"publisher","pid":42,"slots":[["w.scm",0,1]]}"#,
        );
        match Frame::decode(&hello).unwrap().0 {
            Frame::Hello(h) => {
                assert_eq!((h.pid, h.inst, h.sampled_hz), (42, 0, 0));
                assert_eq!(h.points, vec![SourceObject::new("w.scm", 0, 1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let ack = raw(KIND_ACK, r#"{"v":1,"dataset":3,"epoch":17}"#);
        assert_eq!(
            Frame::decode(&ack).unwrap().0,
            Frame::Ack(Ack {
                dataset: 3,
                epoch: 17,
                inst: 0
            })
        );
        let epoch = raw(
            KIND_EPOCH,
            r#"{"v":1,"epoch":6,"datasets":1,"points":2,"l1":0.5,"tv":0.25,"path":"p","profile":"q"}"#,
        );
        match Frame::decode(&epoch).unwrap().0 {
            Frame::Epoch(e) => assert_eq!((e.epoch, e.inst), (6, 0)),
            other => panic!("unexpected {other:?}"),
        }
        let bye = raw(KIND_BYE, "");
        assert_eq!(
            Frame::decode(&bye).unwrap().0,
            Frame::Bye(ByeInfo::default())
        );
    }
}
