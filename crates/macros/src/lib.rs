//! Profile-guided meta-programming for Rust's own meta-programming
//! system: procedural macros.
//!
//! This is the workspace's second implementation of the paper's design
//! (the paper validates generality with Chez Scheme + Racket; we use the
//! embedded Scheme system + Rust proc macros). The mapping:
//!
//! - **profile points** are string names (`"site#index"`), generated
//!   deterministically from a site label and the arm's source position —
//!   the same determinism `make-profile-point` guarantees;
//! - **`annotate-expr`** is the instrumentation these macros insert:
//!   `pgmp_rt::hit("…")` calls;
//! - **`profile-query`** is a profile file read *at macro expansion time*
//!   (the `profile "path"` clause, or the `PGMP_PROFILE_PATH` environment
//!   variable), parsed with [`pgmp_rt::Weights`];
//! - **`store-profile`** is [`pgmp_rt::store_profile`] at run time.
//!
//! # `exclusive_cond!`
//!
//! The §6.1 case study, ported: a multi-way conditional whose arms the
//! programmer asserts are mutually exclusive, reordered at compile time by
//! profile weight.
//!
//! ```ignore
//! let class = exclusive_cond!(
//!     profile "profiles/parse.pgmp";   // optional; else $PGMP_PROFILE_PATH
//!     site "parse";
//!     (c == ' ' || c == '\t') => ('w');
//!     (c.is_ascii_digit()) => ('d');
//!     (c == '(') => ('o');
//!     else => ('x')
//! );
//! ```
//!
//! Without a profile the arms keep their source order; with one, they are
//! sorted hottest-first (the `else` arm always stays last). Each arm body
//! is instrumented with `pgmp_rt::hit("parse#i")` where `i` is the arm's
//! *source* index, so counts stay attached to the same arm across
//! reordered builds — exactly the profile-point stability §3.1 requires.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?})").parse().expect("valid error tokens")
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), String> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}`, found {:?}", self.peek().map(|t| t.to_string())))
        }
    }

    fn expect_string_literal(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                if s.starts_with('"') && s.ends_with('"') && s.len() >= 2 {
                    Ok(s[1..s.len() - 1].to_owned())
                } else {
                    Err(format!("expected string literal, found {s}"))
                }
            }
            other => Err(format!("expected string literal, found {:?}", other.map(|t| t.to_string()))),
        }
    }

    fn expect_group(&mut self, delim: Delimiter, what: &str) -> Result<Group, String> {
        match self.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == delim => Ok(g),
            other => Err(format!(
                "expected parenthesized {what}, found {:?}",
                other.map(|t| t.to_string())
            )),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Resolves `path` against `CARGO_MANIFEST_DIR` when relative, and loads
/// the profile. Missing or malformed profiles yield empty weights (the
/// unprofiled build must always succeed).
fn load_weights(path: Option<&str>) -> pgmp_rt::Weights {
    let path = match path {
        Some(p) => Some(p.to_owned()),
        None => std::env::var("PGMP_PROFILE_PATH").ok(),
    };
    let Some(path) = path else {
        return pgmp_rt::Weights::empty();
    };
    let resolved = if std::path::Path::new(&path).is_absolute() {
        std::path::PathBuf::from(&path)
    } else {
        let base = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        std::path::Path::new(&base).join(&path)
    };
    pgmp_rt::Weights::load(resolved).unwrap_or_else(|_| pgmp_rt::Weights::empty())
}

struct Arm {
    /// Condition tokens (absent for the `else` arm).
    cond: Option<String>,
    body: String,
    /// Source index, used as the stable profile-point name.
    index: usize,
}

/// `exclusive_cond!` — see the crate docs for grammar and semantics.
#[proc_macro]
pub fn exclusive_cond(input: TokenStream) -> TokenStream {
    match exclusive_cond_impl(input) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&format!("exclusive_cond!: {msg}")),
    }
}

fn exclusive_cond_impl(input: TokenStream) -> Result<TokenStream, String> {
    let mut cur = Cursor::new(input);

    // Optional: profile "path";
    let mut profile_path: Option<String> = None;
    if cur.at_ident("profile") {
        cur.bump();
        profile_path = Some(cur.expect_string_literal()?);
        cur.expect_punct(';')?;
    }
    // Required: site "label";
    if !cur.at_ident("site") {
        return Err("expected `site \"label\";`".into());
    }
    cur.bump();
    let site = cur.expect_string_literal()?;
    cur.expect_punct(';')?;

    // Arms.
    let mut arms: Vec<Arm> = Vec::new();
    let mut else_arm: Option<Arm> = None;
    let mut index = 0usize;
    while !cur.done() {
        if cur.at_ident("else") {
            cur.bump();
            cur.expect_punct('=')?;
            cur.expect_punct('>')?;
            let body = cur.expect_group(Delimiter::Parenthesis, "else body")?;
            else_arm = Some(Arm {
                cond: None,
                body: body.stream().to_string(),
                index: usize::MAX,
            });
            cur.eat_punct(';');
            if !cur.done() {
                return Err("`else` arm must be last".into());
            }
            break;
        }
        let cond = cur.expect_group(Delimiter::Parenthesis, "condition")?;
        cur.expect_punct('=')?;
        cur.expect_punct('>')?;
        let body = cur.expect_group(Delimiter::Parenthesis, "arm body")?;
        arms.push(Arm {
            cond: Some(cond.stream().to_string()),
            body: body.stream().to_string(),
            index,
        });
        index += 1;
        cur.eat_punct(';');
    }
    if arms.is_empty() {
        return Err("needs at least one condition arm".into());
    }

    // The profile-guided reordering: sort arms hottest-first (stable, so
    // an empty profile keeps source order).
    let weights = load_weights(profile_path.as_deref());
    arms.sort_by(|a, b| {
        let wa = weights.weight(&format!("{site}#{}", a.index));
        let wb = weights.weight(&format!("{site}#{}", b.index));
        wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
    });

    // Code generation.
    let mut out = String::from("{ ");
    for (i, arm) in arms.iter().enumerate() {
        let kw = if i == 0 { "if" } else { "else if" };
        let cond = arm.cond.as_ref().expect("non-else arm");
        out.push_str(&format!(
            "{kw} {cond} {{ ::pgmp_rt::hit({point:?}); {body} }} ",
            point = format!("{site}#{}", arm.index),
            body = arm.body,
        ));
    }
    match else_arm {
        Some(arm) => out.push_str(&format!(
            "else {{ ::pgmp_rt::hit({point:?}); {body} }} ",
            point = format!("{site}#else"),
            body = arm.body,
        )),
        None => out.push_str(
            "else { panic!(\"exclusive_cond!: no clause matched (arms must be exhaustive or provide else)\") } ",
        ),
    }
    out.push('}');
    out.parse()
        .map_err(|e| format!("generated code failed to parse: {e}"))
}

/// `profile!("point", expr)` — the `annotate-expr` analogue: evaluates
/// `expr`, counting executions under the named profile point.
///
/// ```ignore
/// let v = profile!("hot-path", compute());
/// ```
#[proc_macro]
pub fn profile(input: TokenStream) -> TokenStream {
    match profile_impl(input) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&format!("profile!: {msg}")),
    }
}

fn profile_impl(input: TokenStream) -> Result<TokenStream, String> {
    let mut cur = Cursor::new(input);
    let point = cur.expect_string_literal()?;
    cur.expect_punct(',')?;
    let rest: String = cur.toks[cur.pos..]
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string();
    if rest.trim().is_empty() {
        return Err("expected an expression after the point name".into());
    }
    format!("{{ ::pgmp_rt::hit({point:?}); {rest} }}")
        .parse()
        .map_err(|e| format!("generated code failed to parse: {e}"))
}

/// `static_weight!("point")` or `static_weight!("point", "profile-path")`
/// — the `profile-query` analogue: expands to the point's weight as an
/// `f64` literal, read from the profile at **compile time**.
#[proc_macro]
pub fn static_weight(input: TokenStream) -> TokenStream {
    match static_weight_impl(input) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&format!("static_weight!: {msg}")),
    }
}

fn static_weight_impl(input: TokenStream) -> Result<TokenStream, String> {
    let mut cur = Cursor::new(input);
    let point = cur.expect_string_literal()?;
    let path = if cur.eat_punct(',') {
        Some(cur.expect_string_literal()?)
    } else {
        None
    };
    if !cur.done() {
        return Err("unexpected trailing tokens".into());
    }
    let w = load_weights(path.as_deref()).weight(&point);
    format!("{w:?}f64")
        .parse()
        .map_err(|e| format!("generated code failed to parse: {e}"))
}

/// `#[profiled]` — instruments a function: its body is preceded by a
/// `pgmp_rt::hit("fn:<name>")`, giving per-function counters like GHC
/// cost-centres (§5.1's default granularity).
#[proc_macro_attribute]
pub fn profiled(_attr: TokenStream, item: TokenStream) -> TokenStream {
    match profiled_impl(item) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&format!("#[profiled]: {msg}")),
    }
}

fn profiled_impl(item: TokenStream) -> Result<TokenStream, String> {
    let toks: Vec<TokenTree> = item.into_iter().collect();
    // Find the function name: the identifier following `fn`.
    let mut name = None;
    for w in toks.windows(2) {
        if let (TokenTree::Ident(kw), TokenTree::Ident(n)) = (&w[0], &w[1]) {
            if kw.to_string() == "fn" {
                name = Some(n.to_string());
                break;
            }
        }
    }
    let name = name.ok_or("can only be applied to `fn` items")?;
    // The body is the final brace group.
    let Some(TokenTree::Group(body)) = toks.last() else {
        return Err("function has no body".into());
    };
    if body.delimiter() != Delimiter::Brace {
        return Err("function has no brace-delimited body".into());
    }
    let signature: String = toks[..toks.len() - 1]
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string();
    format!(
        "{signature} {{ ::pgmp_rt::hit({point:?}); {body} }}",
        point = format!("fn:{name}"),
        body = body.stream(),
    )
    .parse()
    .map_err(|e| format!("generated code failed to parse: {e}"))
}
