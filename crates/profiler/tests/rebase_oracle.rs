//! Property-based edit-script oracle for profile rebasing.
//!
//! Programs are a sequence of distinct toplevel defines; edit scripts
//! insert fresh forms, rename defines, delete forms, and swap pairs.
//! The properties pin down the guarantees `docs/REBASE.md` makes
//! normative:
//!
//! 1. **Identity** — an empty edit script rebases bit-identically: the
//!    stored text of the rebased profile equals the original.
//! 2. **Pure insertion is lossless** — inserting toplevel forms never
//!    kills or decays a point; every weight survives exactly, merely
//!    re-anchored (the failure mode of positional invalidation).
//! 3. **Soundness** — under *arbitrary* edit scripts, no weight ever
//!    amplifies, confidences stay in [0,1], untouched forms keep their
//!    weights bit-exactly, and the rebased profile round-trips through
//!    the v2 store text with its confidence provenance intact
//!    (DESIGN.md §4i).
//! 4. **Monotone decay** — over prefixes of a rename-only (resp.
//!    delete-only) script targeting distinct forms, retained weight is
//!    monotonically non-increasing in edit distance.

use pgmp_profiler::{rebase, ProfileInformation, RebaseConfig, SlotMap, StoredProfile};
use pgmp_reader::read_str;
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

const FILE: &str = "oracle.scm";

/// Form `i` of the base program. Distinct body constants keep structural
/// fingerprints distinct and make the shape-tier argmax unambiguous.
fn form(i: usize) -> String {
    format!("(define (f{i} x) (+ x {i}))")
}

/// Same form with its define renamed (same length, so offsets past the
/// name do not move — the decay measured is purely structural).
fn renamed(i: usize) -> String {
    format!("(define (r{i} x) (+ x {i}))")
}

/// A freshly inserted form, unrelated to any base form.
fn inserted(k: usize) -> String {
    format!("(define (z{k} a) (list a a {k}))")
}

fn program(forms: &[String]) -> String {
    forms.join("\n")
}

/// One point per toplevel-form root span, weights `(i+1)/n` so every
/// form carries distinct, nonzero weight; slot table in point order.
fn profile_for(src: &str) -> StoredProfile {
    let forms = read_str(src, FILE).expect("oracle program reads");
    let n = forms.len() as f64;
    let points: Vec<SourceObject> = forms
        .iter()
        .map(|f| f.source.expect("toplevel forms carry spans"))
        .collect();
    let weights: Vec<(SourceObject, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, (i as f64 + 1.0) / n))
        .collect();
    let slots = SlotMap::from_points(points).expect("distinct points");
    StoredProfile::v2(ProfileInformation::from_weights(weights, 1), Some(slots))
}

fn retained(old: &StoredProfile, old_src: &str, new_src: &str) -> f64 {
    rebase(old, old_src, new_src, FILE, &RebaseConfig::default())
        .expect("oracle rebase")
        .report
        .retained_weight_fraction()
}

/// `0 = keep, 1 = rename, 2 = delete` per base form, from a raw byte.
fn op_of(b: u8) -> u8 {
    b % 3
}

proptest! {
    #[test]
    fn empty_edit_script_is_bit_identical(nforms in 1usize..12) {
        let src = program(&(0..nforms).map(form).collect::<Vec<_>>());
        let old = profile_for(&src);
        let r = rebase(&old, &src, &src, FILE, &RebaseConfig::default()).unwrap();
        prop_assert_eq!(r.report.exact, nforms);
        prop_assert_eq!(r.report.dead + r.report.shifted + r.report.structural, 0);
        prop_assert_eq!(r.profile.store_to_string(), old.store_to_string());
    }

    #[test]
    fn insertion_only_scripts_are_lossless(
        nforms in 1usize..10,
        inserts in proptest::collection::vec(0usize..64, 1..5),
    ) {
        let base: Vec<String> = (0..nforms).map(form).collect();
        let src = program(&base);
        let mut edited = base;
        for (k, pos) in inserts.iter().enumerate() {
            edited.insert(pos % (edited.len() + 1), inserted(k));
        }
        let old = profile_for(&src);
        let r = rebase(&old, &src, &program(&edited), FILE, &RebaseConfig::default())
            .unwrap();
        prop_assert_eq!(r.report.dead, 0);
        prop_assert_eq!(r.report.structural, 0);
        prop_assert_eq!(r.report.retained_weight_fraction(), 1.0);
        for o in &r.outcomes {
            prop_assert_eq!(o.new_weight, o.old_weight);
            prop_assert_eq!(r.profile.confidence(o.new_point.unwrap()), 1.0);
        }
    }

    #[test]
    fn arbitrary_edit_scripts_are_sound(
        ops in proptest::collection::vec(0u8..6, 3..12),
        inserts in proptest::collection::vec(0usize..64, 0..4),
        swap in proptest::collection::vec(0usize..64, 0..3),
    ) {
        let nforms = ops.len();
        let base: Vec<String> = (0..nforms).map(form).collect();
        let src = program(&base);
        // Per-form op, then optional swap of two kept survivors, then
        // inserts — a representative mixed script.
        let mut edited: Vec<String> = Vec::new();
        let mut untouched: Vec<usize> = Vec::new();
        for (i, b) in ops.iter().enumerate() {
            match op_of(*b) {
                0 => {
                    untouched.push(i);
                    edited.push(form(i));
                }
                1 => edited.push(renamed(i)),
                _ => {} // delete
            }
        }
        if let [a, b] = swap[..] {
            if edited.len() >= 2 {
                let (a, b) = (a % edited.len(), b % edited.len());
                edited.swap(a, b);
                // A swap is an inversion: the LCS can keep only one side
                // of it, so every form in the swapped range (inclusive)
                // may fall out of the alignment and re-anchor decayed.
                let range = &edited[a.min(b)..=a.max(b)];
                if a != b {
                    untouched.retain(|i| !range.contains(&form(*i)));
                }
            }
        }
        for (k, pos) in inserts.iter().enumerate() {
            edited.insert(pos % (edited.len() + 1), inserted(k));
        }
        let old = profile_for(&src);
        let r = rebase(&old, &src, &program(&edited), FILE, &RebaseConfig::default())
            .unwrap();

        // Soundness: decay only — no weight amplifies, ever.
        let mut total_outcomes = 0;
        for o in &r.outcomes {
            total_outcomes += 1;
            prop_assert!(o.new_weight <= o.old_weight + 1e-12, "{:?}", o);
            prop_assert!((0.0..=1.0).contains(&o.confidence));
        }
        prop_assert_eq!(total_outcomes, nforms, "one outcome per old point");
        prop_assert!(r.report.retained_weight_fraction() <= 1.0 + 1e-12);

        // Untouched forms (kept, not swapped) survive bit-exactly.
        let forms_new = read_str(&program(&edited), FILE).unwrap();
        for i in &untouched {
            let text = form(*i);
            let target = forms_new
                .iter()
                .find(|f| f.to_datum().to_string() == read_str(&text, FILE).unwrap()[0].to_datum().to_string())
                .and_then(|f| f.source)
                .expect("untouched form present in edited program");
            let o = r
                .outcomes
                .iter()
                .find(|o| o.new_point == Some(target))
                .expect("untouched form rebased");
            prop_assert_eq!(o.new_weight, o.old_weight);
            prop_assert_eq!(o.confidence, 1.0);
        }

        // The rebased profile round-trips through the v2 store text with
        // weights and confidence provenance intact.
        let text = r.profile.store_to_string();
        let back = StoredProfile::load_from_str(&text).unwrap();
        prop_assert_eq!(&back.info, &r.profile.info);
        prop_assert_eq!(&back.confidence, &r.profile.confidence);
        for c in back.confidence.values() {
            prop_assert!(*c > 0.0 && *c < 1.0, "stored confidence must be decayed");
        }
    }

    #[test]
    fn rename_scripts_decay_monotonically_with_edit_distance(
        targets in proptest::collection::vec(0usize..64, 1..8),
        nforms in 8usize..12,
    ) {
        let base: Vec<String> = (0..nforms).map(form).collect();
        let src = program(&base);
        let old = profile_for(&src);
        // Distinct targets, one per prefix step.
        let mut seen = std::collections::HashSet::new();
        let targets: Vec<usize> = targets
            .iter()
            .map(|t| t % nforms)
            .filter(|t| seen.insert(*t))
            .collect();
        let mut edited = base;
        let mut last = retained(&old, &src, &program(&edited));
        prop_assert_eq!(last, 1.0);
        for t in targets {
            edited[t] = renamed(t);
            let now = retained(&old, &src, &program(&edited));
            prop_assert!(
                now < last,
                "renaming f{t} must strictly decay retention: {last} -> {now}"
            );
            prop_assert!(now > 0.0, "renames decay, they do not kill");
            last = now;
        }
    }

    #[test]
    fn delete_scripts_decay_monotonically_with_edit_distance(
        targets in proptest::collection::vec(0usize..64, 1..6),
        nforms in 8usize..12,
    ) {
        let base: Vec<String> = (0..nforms).map(form).collect();
        let src = program(&base);
        let old = profile_for(&src);
        let mut seen = std::collections::HashSet::new();
        let targets: Vec<usize> = targets
            .iter()
            .map(|t| t % nforms)
            .filter(|t| seen.insert(*t))
            .collect();
        // Delete by emptying slots so remaining indices stay aligned.
        let mut edited: Vec<Option<String>> = (0..nforms).map(|i| Some(form(i))).collect();
        let mut last = 1.0;
        for t in targets {
            edited[t] = None;
            let text = program(&edited.iter().flatten().cloned().collect::<Vec<_>>());
            let r = rebase(&old, &src, &text, FILE, &RebaseConfig::default()).unwrap();
            let now = r.report.retained_weight_fraction();
            prop_assert!(
                now < last,
                "deleting f{t} must strictly lose its weight: {last} -> {now}"
            );
            // With no other edits there is nothing to pair with: dead.
            prop_assert!(r.outcomes.iter().any(|o| o.new_point.is_none()));
            last = now;
        }
    }
}
