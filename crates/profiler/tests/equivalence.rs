//! Property-based equivalence oracle: the dense slot-indexed counter
//! backend, the legacy hash-keyed backend, and the sampling backend's
//! *exact surface* are observationally identical. Any interleaving of
//! increments, bulk adds, slot-cached bumps, and clears produces the same
//! counts and the same [`Dataset`] snapshot from every representation.
//!
//! Only [`Counters::record_hit`] diverges between backends (dense counts,
//! sampling publishes a beacon) — everything else, including `add_slot`,
//! `clear`, deltas, and `SlotMap` re-keying, is exact everywhere, which is
//! what lets sampled estimates flow through §3.2 merging, the v2 store,
//! and fleet deltas unchanged.

use pgmp_profiler::{CounterImpl, Counters, Dataset};
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

fn point(n: u32) -> SourceObject {
    SourceObject::new("oracle.scm", n, n + 1)
}

/// The three registries under comparison. The sampling one is manually
/// driven (no sampler thread), so its exact ops are fully deterministic.
fn all() -> [Counters; 3] {
    [
        Counters::with_impl(CounterImpl::Dense),
        Counters::with_impl(CounterImpl::Hash),
        Counters::sampling_manual(),
    ]
}

/// One step of the randomized workload.
#[derive(Clone, Debug)]
enum Op {
    Increment(u32),
    Add(u32, u64),
    /// Bump through the dense slot API where available (resolve + add_slot
    /// on slotted registries, keyed add on the hash registry) — the paths
    /// must be indistinguishable.
    SlotAdd(u32, u64),
    Clear,
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is uniform; repeating the increment arm
    // weights the workload toward the hot path.
    prop_oneof![
        (0u32..12).prop_map(Op::Increment),
        (0u32..12).prop_map(Op::Increment),
        ((0u32..12), (1u64..1000)).prop_map(|(p, n)| Op::Add(p, n)),
        ((0u32..12), (1u64..1000)).prop_map(|(p, n)| Op::SlotAdd(p, n)),
        Just(Op::Clear),
    ]
}

fn apply(c: &Counters, op: &Op) {
    match *op {
        Op::Increment(p) => c.increment(point(p)),
        Op::Add(p, n) => c.add(point(p), n),
        Op::SlotAdd(p, n) => {
            // map_id != 0 means the registry hands out dense slots —
            // dense and sampling both do.
            if c.map_id() != 0 {
                let slot = c.resolve(point(p));
                c.add_slot(slot, n);
            } else {
                c.add(point(p), n);
            }
        }
        Op::Clear => c.clear(),
    }
}

proptest! {
    /// All three backends agree on every observable — per-point counts,
    /// population size, and the full snapshot — after any op sequence.
    #[test]
    fn backends_are_observationally_equal(
        ops in proptest::collection::vec(op(), 0..80),
    ) {
        let [dense, hash, sampling] = all();
        for op in &ops {
            apply(&dense, op);
            apply(&hash, op);
            apply(&sampling, op);
        }
        for other in [&hash, &sampling] {
            for p in 0..12 {
                prop_assert_eq!(
                    dense.count(point(p)),
                    other.count(point(p)),
                    "point {} on {:?}", p, other.impl_kind()
                );
            }
            prop_assert_eq!(dense.len(), other.len());
            prop_assert_eq!(dense.is_empty(), other.is_empty());
            prop_assert_eq!(dense.snapshot(), other.snapshot());
        }
    }

    /// Snapshots round-trip through the dataset pipeline identically:
    /// feeding every backend the same dataset reproduces it.
    #[test]
    fn absorbed_datasets_round_trip(
        counts in proptest::collection::vec((0u32..16, 1u64..500), 0..32),
    ) {
        let expected: Dataset = {
            let mut m = std::collections::HashMap::new();
            for (p, c) in &counts {
                *m.entry(point(*p)).or_insert(0u64) += c;
            }
            m.into_iter().collect()
        };
        for c in all() {
            for (p, n) in &counts {
                c.add(point(*p), *n);
            }
            prop_assert_eq!(c.snapshot(), expected.clone(), "{:?}", c.impl_kind());
        }
    }

    /// Slot ids are stable across clears for the registry's whole
    /// lifetime, on both slotted backends: whatever ops ran in between,
    /// re-resolving a point always yields its original slot.
    #[test]
    fn slots_stay_stable_under_any_workload(
        ops in proptest::collection::vec(op(), 0..60),
    ) {
        for c in [Counters::new(), Counters::sampling_manual()] {
            let pinned: Vec<u32> = (0..4).map(|p| c.resolve(point(p))).collect();
            for op in &ops {
                apply(&c, op);
            }
            for (p, slot) in pinned.iter().enumerate() {
                prop_assert_eq!(c.resolve(point(p as u32)), *slot);
            }
        }
    }

    /// `take_delta` partitions hits identically on both slotted backends,
    /// across clears (which rebase the reported baseline) and re-keying.
    #[test]
    fn take_delta_agrees_across_slotted_backends(
        ops in proptest::collection::vec(op(), 0..60),
        cut in 0usize..60,
    ) {
        let dense = Counters::new();
        let sampling = Counters::sampling_manual();
        let cut = cut.min(ops.len());
        for op in &ops[..cut] {
            apply(&dense, op);
            apply(&sampling, op);
        }
        prop_assert_eq!(dense.take_delta(), sampling.take_delta());
        for op in &ops[cut..] {
            apply(&dense, op);
            apply(&sampling, op);
        }
        prop_assert_eq!(dense.take_delta(), sampling.take_delta());
    }
}
