//! Property-based equivalence oracle: the dense slot-indexed counter
//! backend and the legacy hash-keyed backend are observationally
//! identical. Any interleaving of increments, bulk adds, slot-cached
//! bumps, and clears produces the same counts and the same [`Dataset`]
//! snapshot from both representations.

use pgmp_profiler::{CounterImpl, Counters, Dataset};
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

fn point(n: u32) -> SourceObject {
    SourceObject::new("oracle.scm", n, n + 1)
}

/// One step of the randomized workload.
#[derive(Clone, Debug)]
enum Op {
    Increment(u32),
    Add(u32, u64),
    /// Bump through the dense slot API where available (resolve + add_slot
    /// on the dense registry, keyed add on the hash registry) — the two
    /// paths must be indistinguishable.
    SlotAdd(u32, u64),
    Clear,
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is uniform; repeating the increment arm
    // weights the workload toward the hot path.
    prop_oneof![
        (0u32..12).prop_map(Op::Increment),
        (0u32..12).prop_map(Op::Increment),
        ((0u32..12), (1u64..1000)).prop_map(|(p, n)| Op::Add(p, n)),
        ((0u32..12), (1u64..1000)).prop_map(|(p, n)| Op::SlotAdd(p, n)),
        Just(Op::Clear),
    ]
}

fn apply(c: &Counters, op: &Op) {
    match *op {
        Op::Increment(p) => c.increment(point(p)),
        Op::Add(p, n) => c.add(point(p), n),
        Op::SlotAdd(p, n) => {
            if c.impl_kind() == CounterImpl::Dense {
                let slot = c.resolve(point(p));
                c.add_slot(slot, n);
            } else {
                c.add(point(p), n);
            }
        }
        Op::Clear => c.clear(),
    }
}

proptest! {
    /// Dense and hash backends agree on every observable — per-point
    /// counts, population size, and the full snapshot — after any op
    /// sequence.
    #[test]
    fn dense_and_hash_are_observationally_equal(
        ops in proptest::collection::vec(op(), 0..80),
    ) {
        let dense = Counters::with_impl(CounterImpl::Dense);
        let hash = Counters::with_impl(CounterImpl::Hash);
        for op in &ops {
            apply(&dense, op);
            apply(&hash, op);
        }
        for p in 0..12 {
            prop_assert_eq!(dense.count(point(p)), hash.count(point(p)), "point {}", p);
        }
        prop_assert_eq!(dense.len(), hash.len());
        prop_assert_eq!(dense.is_empty(), hash.is_empty());
        prop_assert_eq!(dense.snapshot(), hash.snapshot());
    }

    /// Snapshots round-trip through the dataset pipeline identically:
    /// feeding both backends the same dataset reproduces it.
    #[test]
    fn absorbed_datasets_round_trip(
        counts in proptest::collection::vec((0u32..16, 1u64..500), 0..32),
    ) {
        let expected: Dataset = {
            let mut m = std::collections::HashMap::new();
            for (p, c) in &counts {
                *m.entry(point(*p)).or_insert(0u64) += c;
            }
            m.into_iter().collect()
        };
        for kind in [CounterImpl::Dense, CounterImpl::Hash] {
            let c = Counters::with_impl(kind);
            for (p, n) in &counts {
                c.add(point(*p), *n);
            }
            prop_assert_eq!(c.snapshot(), expected.clone(), "{:?}", kind);
        }
    }

    /// Dense slot ids are stable across clears for the registry's whole
    /// lifetime: whatever ops ran in between, re-resolving a point always
    /// yields its original slot.
    #[test]
    fn slots_stay_stable_under_any_workload(
        ops in proptest::collection::vec(op(), 0..60),
    ) {
        let c = Counters::new();
        let pinned: Vec<u32> = (0..4).map(|p| c.resolve(point(p))).collect();
        for op in &ops {
            apply(&c, op);
        }
        for (p, slot) in pinned.iter().enumerate() {
            prop_assert_eq!(c.resolve(point(p as u32)), *slot);
        }
    }
}
