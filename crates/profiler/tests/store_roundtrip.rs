//! Property-based persistence oracle for the profile store.
//!
//! Three families of guarantees from the format spec
//! (`docs/PROFILE_FORMAT.md`):
//!
//! 1. **Round trip is the identity** — for arbitrary weights and slot
//!    tables, `load(store(x)) == x` in both format versions, bit-exact on
//!    weights (the writer emits shortest-round-trip floats).
//! 2. **v1 → v2 migration is lossless and reversible** — upgrading a v1
//!    file to v2 (with a synthesized slot table) preserves every weight,
//!    and downgrading reproduces the original v1 bytes.
//! 3. **Hostile bytes are typed errors** — truncating or bit-flipping a
//!    good file never panics; truncation always yields a typed
//!    [`ProfileStoreError`].

use pgmp_profiler::{ProfileInformation, ProfileStoreError, SlotMap, StoredProfile};
use pgmp_syntax::SourceObject;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn point(n: u32) -> SourceObject {
    // Mix files (including a generated-point name with `%pgmp`) so slot
    // tables span multiple source files, as real profiles do.
    let file = match n % 3 {
        0 => "a.scm",
        1 => "lib/b.scm",
        _ => "gen.scm%pgmp1",
    };
    SourceObject::new(file, n, n + 1)
}

/// Arbitrary weight map: distinct points, weights in the legal [0,1]
/// range (quantized — the vendored proptest has no float strategies; the
/// identity property is unaffected). BTreeMap keys guarantee
/// distinctness.
fn weight_map() -> impl Strategy<Value = BTreeMap<u32, f64>> {
    proptest::collection::vec((0u32..60, 0u32..1001), 0..24)
        .prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(n, w)| (n, f64::from(w) / 1000.0))
                .collect()
        })
}

fn info_from(weights: &BTreeMap<u32, f64>, datasets: usize) -> ProfileInformation {
    ProfileInformation::from_weights(
        weights.iter().map(|(n, w)| (point(*n), *w)),
        datasets,
    )
}

/// A slot table covering the weighted points plus some never-executed
/// extras (interned but weightless — the table is allowed to be a
/// superset of the weight map).
fn slots_for(weights: &BTreeMap<u32, f64>, extras: &[u32]) -> SlotMap {
    let mut points: Vec<SourceObject> = weights.keys().map(|n| point(*n)).collect();
    points.extend(extras.iter().map(|n| point(*n + 100)));
    SlotMap::from_points(points).expect("distinct points")
}

proptest! {
    /// v1 store → load is the identity on weights and dataset count.
    #[test]
    fn v1_round_trip_is_identity(weights in weight_map(), datasets in 0usize..9) {
        let info = info_from(&weights, datasets);
        let back = ProfileInformation::load_from_str(&info.store_to_string()).unwrap();
        prop_assert_eq!(&back, &info);
        prop_assert_eq!(back.dataset_count(), datasets);
        for (n, w) in &weights {
            // Bit-exact, not approximate: the writer uses shortest
            // round-trip floats.
            prop_assert_eq!(back.lookup(point(*n)), Some(*w));
        }
    }

    /// v2 store → load is the identity on weights, slot ids, and slot
    /// order — a reloading process re-derives the exact interning.
    #[test]
    fn v2_round_trip_preserves_weights_and_slot_ids(
        weights in weight_map(),
        datasets in 0usize..9,
        extras in proptest::collection::vec(0u32..40, 0..6),
    ) {
        let mut extras = extras;
        extras.sort_unstable();
        extras.dedup();
        let table = slots_for(&weights, &extras);
        let sp = StoredProfile::v2(info_from(&weights, datasets), Some(table.clone()));
        let back = StoredProfile::load_from_str(&sp.store_to_string()).unwrap();
        prop_assert_eq!(back.version, 2);
        prop_assert_eq!(&back.info, &sp.info);
        if table.is_empty() {
            // An empty table has no on-disk representation; it loads as
            // "no table", which preloads identically (nothing interned).
            prop_assert!(back.slots.is_none());
        } else {
            let got = back.slots.expect("table survives");
            prop_assert_eq!(got.points(), table.points());
            for p in table.points() {
                prop_assert_eq!(got.get(*p), table.get(*p));
            }
        }
    }

    /// Storing is deterministic: same profile, same bytes, every time.
    #[test]
    fn storing_is_deterministic(weights in weight_map()) {
        let info = info_from(&weights, 1);
        prop_assert_eq!(info.store_to_string(), info.store_to_string());
        let sp = StoredProfile::v2(info, Some(slots_for(&weights, &[])));
        prop_assert_eq!(sp.store_to_string(), sp.store_to_string());
    }

    /// v1 → v2 → v1 migration: the upgrade preserves every weight and the
    /// downgrade reproduces the original v1 file byte for byte.
    #[test]
    fn v1_to_v2_migration_is_lossless(weights in weight_map(), datasets in 1usize..9) {
        let v1_text = info_from(&weights, datasets).store_to_string();
        let loaded = StoredProfile::load_from_str(&v1_text).unwrap();
        prop_assert_eq!(loaded.version, 1);

        // Upgrade: synthesize a dense table from the sorted points, the
        // same procedure `pgmp-profile convert --to 2 --slots` uses.
        let mut points: Vec<SourceObject> = loaded.info.iter().map(|(p, _)| p).collect();
        points.sort();
        let table = SlotMap::from_points(points).expect("weights have distinct points");
        let v2 = StoredProfile::v2(loaded.info.clone(), Some(table));
        let v2_back = StoredProfile::load_from_str(&v2.store_to_string()).unwrap();
        prop_assert_eq!(&v2_back.info, &loaded.info);

        // Downgrade: dropping the table reproduces the original bytes.
        let downgraded = StoredProfile::v1(v2_back.info).store_to_string();
        prop_assert_eq!(downgraded, v1_text);
    }

    /// Truncating a good file at any byte boundary is a typed error —
    /// never a panic, never a silently short profile.
    #[test]
    fn truncation_is_a_typed_error(weights in weight_map(), cut in 0u32..1000) {
        let sp = StoredProfile::v2(info_from(&weights, 1), Some(slots_for(&weights, &[])));
        let text = sp.store_to_string();
        let mut at = text.len() * cut as usize / 1000;
        while !text.is_char_boundary(at) {
            at -= 1;
        }
        let result = StoredProfile::load_from_str(&text[..at]);
        prop_assert!(
            matches!(
                result,
                Err(ProfileStoreError::Malformed(_)
                    | ProfileStoreError::SlotTable(_)
                    | ProfileStoreError::UnsupportedVersion(_))
            ),
            "truncation at {}/{} must be a typed parse error, got {:?}",
            at,
            text.len(),
            result
        );
    }

    /// Flipping one bit anywhere in a good file never panics: the loader
    /// either rejects it with a typed error or parses a (different but
    /// well-formed) profile.
    #[test]
    fn bit_flips_never_panic(
        weights in weight_map(),
        pos in 0u32..1000,
        bit in 0u8..7,
    ) {
        let sp = StoredProfile::v2(info_from(&weights, 1), Some(slots_for(&weights, &[])));
        let mut bytes = sp.store_to_string().into_bytes();
        let at = (bytes.len() - 1) * pos as usize / 1000;
        bytes[at] ^= 1 << bit;
        // Lossy round-trip keeps it a &str parse even when the flip makes
        // invalid UTF-8.
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = StoredProfile::load_from_str(&mutated);
    }
}

/// Hand-picked corruption corpus: each case must be the *specific* typed
/// error a tool (or a user reading stderr) relies on.
#[test]
fn corruption_corpus_yields_specific_errors() {
    let good = StoredProfile::v2(
        ProfileInformation::from_weights(
            [(point(0), 0.25), (point(1), 1.0), (point(2), 0.5)],
            2,
        ),
        Some(SlotMap::from_points(vec![point(0), point(1), point(2)]).unwrap()),
    )
    .store_to_string();

    // Structural damage → Malformed.
    for bad in [
        good[..good.len() - 1].to_string(),       // lost final paren
        good.replace("pgmp-profile", "pgmp-porfile"),
        good.replace("(datasets 2)", "(datasets 2.5)"),
        good.replace("(version 2)", "(version 2)\n  (version 2)"),
    ] {
        assert!(
            matches!(
                StoredProfile::load_from_str(&bad),
                Err(ProfileStoreError::Malformed(_))
            ),
            "expected Malformed for {bad:?}"
        );
    }

    // Slot-section damage → SlotTable.
    let shifted = good.replace("(slot 1 ", "(slot 4 ");
    assert!(matches!(
        StoredProfile::load_from_str(&shifted),
        Err(ProfileStoreError::SlotTable(_))
    ));

    // Future version → UnsupportedVersion, carrying the version read.
    let future = good.replace("(version 2)", "(version 9)");
    assert!(matches!(
        StoredProfile::load_from_str(&future),
        Err(ProfileStoreError::UnsupportedVersion(9))
    ));

    // And the undamaged file still loads, proving the corpus edits were
    // the only difference.
    assert!(StoredProfile::load_from_str(&good).is_ok());
}

/// The compatibility promise in one test: a frozen v1 file from the
/// original release loads, and re-storing it reproduces the bytes.
#[test]
fn frozen_v1_fixture_loads_byte_identically() {
    let fixture = "(pgmp-profile\n  (version 1)\n  (datasets 3)\n  (point \"classify.scm\" 10 30 0.25)\n  (point \"classify.scm\" 40 60 1)\n  (point \"gen.scm%pgmp0\" 0 4 0.5)\n)";
    let loaded = StoredProfile::load_from_str(fixture).unwrap();
    assert_eq!(loaded.version, 1);
    assert_eq!(loaded.info.dataset_count(), 3);
    assert_eq!(
        loaded.info.lookup(SourceObject::new("classify.scm", 40, 60)),
        Some(1.0)
    );
    // Canonical re-store (integer weight normalizes to float form).
    let restored = loaded.info.store_to_string();
    let reloaded = ProfileInformation::load_from_str(&restored).unwrap();
    assert_eq!(reloaded, loaded.info);
    assert_eq!(restored, reloaded.store_to_string());
}
