//! Convergence oracle for the sampling backend: on the same deterministic
//! workload, sampled weight estimates land within ε of the exact-counter
//! weights, and rank well-separated alternatives identically.
//!
//! The workload generator spreads each slot's hits evenly through the
//! event stream (largest-remainder weighted round-robin), which is what
//! steady-state interpreter loops look like; the sampler is driven
//! manually with LCG-jittered gaps (fixed seed — the test is fully
//! deterministic) so the tick train cannot resonate with the schedule's
//! period. Two properties pin the estimator model of DESIGN.md §4h:
//!
//! 1. **Stride-1 anchor** — sampling after *every* hit reproduces the
//!    exact counts bit-for-bit: the estimator is unbiased with no
//!    systematic loss; all error comes from not looking often enough.
//! 2. **ε-convergence** — at a realistic sampling ratio (mean gap 4) over
//!    tens of thousands of events, every normalized weight is within
//!    EPSILON of the exact weight, and any two slots whose exact weights
//!    differ by more than 2·EPSILON keep their relative order.

use pgmp_profiler::Counters;
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

/// Acceptance bound on |sampled_weight - exact_weight| per slot, at the
/// mean-gap-4 sampling ratio and ≥10k-event workloads below. Weights are
/// normalized by the *estimated* maximum, so each bound compares a ratio
/// of two estimates — the observed worst case across seeds is ~0.06. E18
/// maps how the bound tightens as the rate rises.
const EPSILON: f64 = 0.08;

fn point(n: u32) -> SourceObject {
    SourceObject::new("converge.scm", n, n + 1)
}

/// Largest-remainder weighted round-robin: an event stream of `total`
/// slot hits where slot `i` appears `targets[i]` times, spread evenly.
fn schedule(targets: &[u64]) -> Vec<u32> {
    let total: u64 = targets.iter().sum();
    let mut emitted = vec![0u64; targets.len()];
    let mut out = Vec::with_capacity(total as usize);
    for step in 1..=total {
        // Pick the slot with the largest deficit against its ideal share.
        let mut best = 0usize;
        let mut best_deficit = f64::MIN;
        for (i, (&t, &e)) in targets.iter().zip(&emitted).enumerate() {
            let deficit = (t as f64) * (step as f64) / (total as f64) - e as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        emitted[best] += 1;
        out.push(best as u32);
    }
    out
}

/// Deterministic LCG (Numerical Recipes constants) driving the jittered
/// sample gaps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Runs `events` through a manual sampling registry, sampling after a hit
/// whenever the jittered countdown expires. `mean_gap` = 1 samples after
/// every hit (the stride-1 anchor); larger gaps model a real rate.
fn run_sampled(events: &[u32], slots: &[u32], mean_gap: u64, seed: u64) -> Counters {
    let c = Counters::sampling_manual();
    let resolved: Vec<u32> = slots.iter().map(|s| c.resolve(point(*s))).collect();
    let mut lcg = Lcg(seed);
    let mut countdown = 1u64;
    for &e in events {
        c.record_hit(resolved[e as usize]);
        countdown -= 1;
        if countdown == 0 {
            c.sample_now();
            countdown = if mean_gap <= 1 {
                1
            } else {
                // Uniform on [1, 2*mean_gap - 1]: mean `mean_gap`, never 0.
                1 + lcg.next() % (2 * mean_gap - 1)
            };
        }
    }
    c
}

/// Normalized weights (count / max_count — §3's definition) per slot id.
fn weights(c: &Counters, slots: &[u32]) -> Vec<f64> {
    let counts: Vec<u64> = slots.iter().map(|s| c.count(point(*s))).collect();
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    counts.iter().map(|&n| n as f64 / max as f64).collect()
}

proptest! {
    /// Stride-1 anchor: sampling after every hit reproduces the exact
    /// counts, bit for bit.
    #[test]
    fn stride_one_sampling_is_exact(
        targets in proptest::collection::vec(1u64..400, 2..6),
    ) {
        let slots: Vec<u32> = (0..targets.len() as u32).collect();
        let events = schedule(&targets);
        let sampled = run_sampled(&events, &slots, 1, 7);
        for (i, &t) in targets.iter().enumerate() {
            prop_assert_eq!(sampled.count(point(i as u32)), t, "slot {}", i);
        }
    }

    /// ε-convergence at mean gap 4: sampled weights are within EPSILON of
    /// exact weights, and well-separated pairs keep their order.
    #[test]
    fn sampled_weights_converge_to_exact_weights(
        // Per-slot shares of a ~40k-event workload. The minimum share
        // keeps every slot visible at the sampling ratio; the oracle's ε
        // claim is about estimation error, not about points the sampler
        // never had a statistical chance to see.
        shares in proptest::collection::vec(1u32..21, 3..6),
        seed in 0u64..1000,
    ) {
        let unit: u64 = 40_000 / shares.iter().map(|&s| s as u64).sum::<u64>().max(1);
        let targets: Vec<u64> = shares.iter().map(|&s| s as u64 * unit).collect();
        let slots: Vec<u32> = (0..targets.len() as u32).collect();
        let events = schedule(&targets);

        let exact = Counters::new();
        let resolved: Vec<u32> = slots.iter().map(|s| exact.resolve(point(*s))).collect();
        for &e in &events {
            exact.record_hit(resolved[e as usize]);
        }
        let sampled = run_sampled(&events, &slots, 4, seed);

        let we = weights(&exact, &slots);
        let ws = weights(&sampled, &slots);
        for (i, (a, b)) in we.iter().zip(&ws).enumerate() {
            prop_assert!(
                (a - b).abs() <= EPSILON,
                "slot {}: exact weight {:.4} vs sampled {:.4} (|Δ| > {})",
                i, a, b, EPSILON
            );
        }
        // Ranking: pairs separated by more than 2ε cannot swap order.
        for i in 0..we.len() {
            for j in 0..we.len() {
                if we[i] - we[j] > 2.0 * EPSILON {
                    prop_assert!(
                        ws[i] > ws[j],
                        "slots {} and {} swapped rank: exact {:.4} > {:.4} \
                         but sampled {:.4} <= {:.4}",
                        i, j, we[i], we[j], ws[i], ws[j]
                    );
                }
            }
        }
    }
}
