//! Live profile counters and per-run datasets.

use pgmp_syntax::SourceObject;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The live counter registry for one profiled execution.
///
/// A `Counters` handle is cheaply cloneable and shared: the engine hands one
/// to the evaluator, which bumps counters as annotated expressions execute,
/// and later snapshots it into a [`Dataset`].
///
/// # Example
///
/// ```
/// use pgmp_profiler::Counters;
/// use pgmp_syntax::SourceObject;
/// let c = Counters::new();
/// let p = SourceObject::new("x.scm", 0, 5);
/// c.increment(p);
/// c.increment(p);
/// assert_eq!(c.count(p), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counters {
    counts: Rc<RefCell<HashMap<SourceObject, u64>>>,
}

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds one to the counter for profile point `p`, saturating at
    /// `u64::MAX`.
    pub fn increment(&self, p: SourceObject) {
        self.add(p, 1);
    }

    /// Adds `n` to the counter for profile point `p`.
    ///
    /// Saturates at `u64::MAX` rather than wrapping: a long-running
    /// adaptive loop can genuinely exhaust a `u64` on a hot point, and a
    /// wrapped counter would silently invert every weight derived from it.
    pub fn add(&self, p: SourceObject, n: u64) {
        let mut counts = self.counts.borrow_mut();
        let c = counts.entry(p).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Current count for `p` (0 if never incremented).
    pub fn count(&self, p: SourceObject) -> u64 {
        self.counts.borrow().get(&p).copied().unwrap_or(0)
    }

    /// Number of profile points with a nonzero count.
    pub fn len(&self) -> usize {
        self.counts.borrow().len()
    }

    /// True iff nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.borrow().is_empty()
    }

    /// Zeroes all counters.
    pub fn clear(&self) {
        self.counts.borrow_mut().clear();
    }

    /// Snapshots the current counts into an immutable [`Dataset`].
    pub fn snapshot(&self) -> Dataset {
        Dataset {
            counts: self.counts.borrow().clone(),
        }
    }
}

/// Profile counts from one run on one input — one "data set" in the paper's
/// terminology (§3.2). Absolute counts are only comparable *within* a
/// dataset; convert to weights before comparing across datasets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    pub(crate) counts: HashMap<SourceObject, u64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Records an absolute count for `p`, replacing any previous value.
    pub fn record(&mut self, p: SourceObject, count: u64) {
        self.counts.insert(p, count);
    }

    /// Count for `p` (0 if absent).
    pub fn count(&self, p: SourceObject) -> u64 {
        self.counts.get(&p).copied().unwrap_or(0)
    }

    /// The largest count in the dataset, i.e. the count of "the most
    /// executed profile point in the same data set" (§3.2).
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Number of recorded profile points.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True iff no counts were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(point, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceObject, u64)> + '_ {
        self.counts.iter().map(|(p, c)| (*p, *c))
    }
}

impl FromIterator<(SourceObject, u64)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (SourceObject, u64)>>(iter: I) -> Dataset {
        Dataset {
            counts: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("t.scm", n, n + 1)
    }

    #[test]
    fn increment_accumulates() {
        let c = Counters::new();
        c.increment(p(0));
        c.increment(p(0));
        c.increment(p(1));
        assert_eq!(c.count(p(0)), 2);
        assert_eq!(c.count(p(1)), 1);
        assert_eq!(c.count(p(2)), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let c = Counters::new();
        let c2 = c.clone();
        c2.increment(p(0));
        assert_eq!(c.count(p(0)), 1);
    }

    #[test]
    fn add_bulk() {
        let c = Counters::new();
        c.add(p(3), 10);
        c.add(p(3), 5);
        assert_eq!(c.count(p(3)), 15);
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        let c = Counters::new();
        c.add(p(4), u64::MAX - 1);
        c.increment(p(4));
        c.increment(p(4));
        assert_eq!(c.count(p(4)), u64::MAX);
        c.add(p(4), 100);
        assert_eq!(c.count(p(4)), u64::MAX);
    }

    #[test]
    fn snapshot_is_independent() {
        let c = Counters::new();
        c.increment(p(0));
        let snap = c.snapshot();
        c.increment(p(0));
        assert_eq!(snap.count(p(0)), 1);
        assert_eq!(c.count(p(0)), 2);
    }

    #[test]
    fn clear_resets() {
        let c = Counters::new();
        c.increment(p(0));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn dataset_max_count() {
        let d: Dataset = [(p(0), 5), (p(1), 10)].into_iter().collect();
        assert_eq!(d.max_count(), 10);
        assert_eq!(Dataset::new().max_count(), 0);
    }
}
