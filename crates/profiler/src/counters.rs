//! Live profile counters and per-run datasets.
//!
//! Three representations live behind the same [`Counters`] handle:
//!
//! - **Dense** (the default): each profile point is resolved once — at
//!   instrumentation time — to a stable `u32` slot in a [`SlotMap`], and a
//!   bump is an unsynchronized `Vec<Cell<u64>>` index. This is the cost
//!   model the paper assumes ("a profile point compiles down to a plain
//!   counter increment").
//! - **Hash**: the legacy `HashMap<SourceObject, u64>` keyed by profile
//!   point, kept as an interop view and as the baseline the e7 overhead
//!   experiment measures against.
//! - **Sampling**: the always-on backend. A profiled event publishes a
//!   current-position beacon (one relaxed atomic store, see
//!   [`crate::sampling`]); a decoupled sampler thread ticking at a
//!   configurable rate reads the beacon and accumulates *estimated*
//!   tallies into the same slot space, so weights are statistical
//!   estimates rather than exact counts. Direct keyed/slot adds
//!   ([`Counters::add`], [`Counters::add_slot`]) still land exactly,
//!   which is what dataset absorption, merging, and the equivalence
//!   oracle rely on; only the hot-path [`Counters::record_hit`] trades
//!   exactness for ~zero mutator overhead.
//!
//! All three snapshot into the same [`Dataset`], so weight normalization,
//! dataset merging, and `store-profile`/`load-profile` are unchanged.

use crate::sampling::{Sampler, SamplingShared, DEFAULT_SAMPLE_HZ};
use crate::slots::SlotMap;
use pgmp_syntax::SourceObject;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Which counter representation a [`Counters`] registry uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CounterImpl {
    /// Dense slot-indexed counters (resolve once, then vector bumps).
    #[default]
    Dense,
    /// Legacy hash-keyed counters (one `SourceObject` hash per bump).
    Hash,
    /// Statistical sampling: hot-path events publish a position beacon
    /// (one relaxed store) and a sampler estimates counts from it.
    Sampling,
}

impl std::str::FromStr for CounterImpl {
    type Err = String;

    fn from_str(s: &str) -> Result<CounterImpl, String> {
        match s {
            "dense" => Ok(CounterImpl::Dense),
            "hash" => Ok(CounterImpl::Hash),
            "sampling" => Ok(CounterImpl::Sampling),
            other => Err(format!(
                "unknown counter impl `{other}` (dense|hash|sampling)"
            )),
        }
    }
}

/// Process-global id generator for dense maps. Ids start at 1 so that 0
/// can mean both "hash-keyed registry" and "unresolved cache entry" — a
/// slot cached on an AST node under map id `m` is valid only against the
/// `Counters` whose [`Counters::map_id`] is exactly `m`.
static NEXT_MAP_ID: AtomicU32 = AtomicU32::new(1);

#[derive(Debug)]
enum Backend {
    Dense {
        map_id: u32,
        slots: RefCell<SlotMap>,
        counts: RefCell<Vec<Cell<u64>>>,
        /// Per-slot count as of the last [`Counters::take_delta`], the
        /// baseline the next delta is computed against.
        reported: RefCell<Vec<u64>>,
    },
    Hash {
        counts: RefCell<HashMap<SourceObject, u64>>,
    },
    Sampling {
        map_id: u32,
        slots: RefCell<SlotMap>,
        /// Beacon + estimated tallies, shared with the sampler.
        shared: Arc<SamplingShared>,
        /// Per-slot tally as of the last [`Counters::take_delta`].
        reported: RefCell<Vec<u64>>,
        /// Wall-clock sampler thread; `None` when tests/benches drive
        /// [`Counters::sample_now`] deterministically instead.
        sampler: Option<Sampler>,
        /// Nominal tick rate (0 when manually driven) — recorded as
        /// `sampled@hz` provenance when the profile is stored.
        hz: u32,
    },
}

/// The live counter registry for one profiled execution.
///
/// A `Counters` handle is cheaply cloneable and shared: the engine hands one
/// to the evaluator, which bumps counters as annotated expressions execute,
/// and later snapshots it into a [`Dataset`].
///
/// # Example
///
/// ```
/// use pgmp_profiler::Counters;
/// use pgmp_syntax::SourceObject;
/// let c = Counters::new();
/// let p = SourceObject::new("x.scm", 0, 5);
/// c.increment(p);
/// c.increment(p);
/// assert_eq!(c.count(p), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Counters {
    backend: Rc<Backend>,
}

impl Default for Counters {
    fn default() -> Counters {
        Counters::new()
    }
}

impl Counters {
    /// Creates an empty dense slot-indexed registry.
    pub fn new() -> Counters {
        Counters::with_impl(CounterImpl::Dense)
    }

    /// Creates an empty registry with an explicit representation. A
    /// sampling registry gets a wall-clock sampler at
    /// [`DEFAULT_SAMPLE_HZ`]; use [`Counters::with_sampling`] to pick the
    /// rate.
    pub fn with_impl(kind: CounterImpl) -> Counters {
        let backend = match kind {
            CounterImpl::Dense => Backend::Dense {
                map_id: NEXT_MAP_ID.fetch_add(1, Ordering::Relaxed),
                slots: RefCell::new(SlotMap::new()),
                counts: RefCell::new(Vec::new()),
                reported: RefCell::new(Vec::new()),
            },
            CounterImpl::Hash => Backend::Hash {
                counts: RefCell::new(HashMap::new()),
            },
            CounterImpl::Sampling => {
                return Counters::with_sampling(DEFAULT_SAMPLE_HZ);
            }
        };
        Counters {
            backend: Rc::new(backend),
        }
    }

    /// Creates a sampling registry whose sampler thread ticks at `hz`.
    pub fn with_sampling(hz: u32) -> Counters {
        Counters::sampling_with(SlotMap::new(), hz, true)
    }

    /// Creates a sampling registry with *no* sampler thread: tests and
    /// benchmarks call [`Counters::sample_now`] to take each sample
    /// deterministically.
    pub fn sampling_manual() -> Counters {
        Counters::sampling_with(SlotMap::new(), 0, false)
    }

    fn sampling_with(table: SlotMap, hz: u32, spawn: bool) -> Counters {
        let shared = Arc::new(SamplingShared::new());
        let sampler = spawn.then(|| Sampler::spawn(shared.clone(), hz));
        Counters {
            backend: Rc::new(Backend::Sampling {
                map_id: NEXT_MAP_ID.fetch_add(1, Ordering::Relaxed),
                slots: RefCell::new(table),
                shared,
                reported: RefCell::new(Vec::new()),
                sampler,
                hz,
            }),
        }
    }

    /// Creates a dense registry whose slot map is preloaded from `table`
    /// (as reloaded from a v2 profile file, see
    /// [`crate::StoredProfile`]): every point in `table` already has its
    /// slot, with all counts zero, so instrumentation that re-resolves the
    /// same points does no interning work and gets identical slot ids.
    ///
    /// The registry still gets a fresh [`Counters::map_id`] — slot caches
    /// packed against the *saving* process's map id are revalidated, not
    /// trusted.
    pub fn with_slot_table(table: SlotMap) -> Counters {
        let counts = vec![Cell::new(0); table.len()];
        Counters {
            backend: Rc::new(Backend::Dense {
                map_id: NEXT_MAP_ID.fetch_add(1, Ordering::Relaxed),
                slots: RefCell::new(table),
                counts: RefCell::new(counts),
                reported: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The sampling analog of [`Counters::with_slot_table`]: slots
    /// preloaded from a v2 profile file, tallies zero, sampler ticking at
    /// `hz`.
    pub fn with_slot_table_sampling(table: SlotMap, hz: u32) -> Counters {
        Counters::sampling_with(table, hz, true)
    }

    /// A snapshot of the slot table (`None` for hash-keyed registries).
    /// This is what a v2 profile file persists so the next process can
    /// skip re-interning.
    pub fn slot_table(&self) -> Option<SlotMap> {
        match &*self.backend {
            Backend::Dense { slots, .. } | Backend::Sampling { slots, .. } => {
                Some(slots.borrow().clone())
            }
            Backend::Hash { .. } => None,
        }
    }

    /// The representation behind this registry.
    pub fn impl_kind(&self) -> CounterImpl {
        match &*self.backend {
            Backend::Dense { .. } => CounterImpl::Dense,
            Backend::Hash { .. } => CounterImpl::Hash,
            Backend::Sampling { .. } => CounterImpl::Sampling,
        }
    }

    /// Identity of this registry's slot map, or 0 for hash-keyed
    /// registries. A slot id is only meaningful together with the map id it
    /// was resolved under; callers caching slots must revalidate against
    /// this before using [`Counters::add_slot`].
    pub fn map_id(&self) -> u32 {
        match &*self.backend {
            Backend::Dense { map_id, .. } | Backend::Sampling { map_id, .. } => *map_id,
            Backend::Hash { .. } => 0,
        }
    }

    /// The nominal sampler rate: `Some(hz)` for sampling registries (0
    /// when manually driven), `None` for exact backends. This is what a
    /// stored profile records as `sampled@hz` provenance.
    pub fn sample_hz(&self) -> Option<u32> {
        match &*self.backend {
            Backend::Sampling { hz, .. } => Some(*hz),
            _ => None,
        }
    }

    /// The beacon/tally state shared with the sampler (`None` for exact
    /// backends). Exposed for boundary-time metric publication and for
    /// tests that inspect tick/hit/miss accounting.
    pub fn sampling_shared(&self) -> Option<Arc<SamplingShared>> {
        match &*self.backend {
            Backend::Sampling { shared, .. } => Some(shared.clone()),
            _ => None,
        }
    }

    /// Takes one sample deterministically (no-op on exact backends).
    /// Pairs with [`Counters::sampling_manual`] in tests and benchmarks.
    pub fn sample_now(&self) {
        if let Backend::Sampling { shared, .. } = &*self.backend {
            shared.sample_now();
        }
    }

    /// True when a wall-clock sampler thread is attached to this registry
    /// (always false for exact backends and manually driven sampling
    /// registries).
    pub fn has_sampler_thread(&self) -> bool {
        matches!(
            &*self.backend,
            Backend::Sampling {
                sampler: Some(_),
                ..
            }
        )
    }

    /// Resolves profile point `p` to its dense slot, interning it on first
    /// resolution. Stable: the same point always maps to the same slot for
    /// the lifetime of the registry (clearing counts does not disturb
    /// slots).
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry — check `map_id() != 0` first.
    pub fn resolve(&self, p: SourceObject) -> u32 {
        match &*self.backend {
            Backend::Dense { slots, counts, .. } => {
                let slot = slots.borrow_mut().resolve(p);
                let mut counts = counts.borrow_mut();
                if counts.len() <= slot as usize {
                    counts.resize(slot as usize + 1, Cell::new(0));
                }
                slot
            }
            Backend::Sampling { slots, .. } => slots.borrow_mut().resolve(p),
            Backend::Hash { .. } => {
                panic!("Counters::resolve on a hash-keyed registry (map_id 0)")
            }
        }
    }

    /// Adds `n` to the counter in `slot`, saturating at `u64::MAX`. The
    /// dense fast path: no hashing, no entry allocation.
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry or if `slot` was never resolved.
    #[inline]
    pub fn add_slot(&self, slot: u32, n: u64) {
        match &*self.backend {
            Backend::Dense { counts, .. } => {
                let counts = counts.borrow();
                let c = &counts[slot as usize];
                c.set(c.get().saturating_add(n));
            }
            Backend::Sampling { shared, .. } => shared.tallies().add(slot, n),
            Backend::Hash { .. } => {
                panic!("Counters::add_slot on a hash-keyed registry (map_id 0)")
            }
        }
    }

    /// Records one hot-path hit in `slot` — the per-event operation the
    /// instrumented interpreter emits. On exact backends this *counts*
    /// the hit ([`Counters::add_slot`] by one); on the sampling backend it
    /// only *publishes* the position beacon (one relaxed store) and the
    /// sampler supplies the estimated count.
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry or if `slot` was never resolved.
    #[inline]
    pub fn record_hit(&self, slot: u32) {
        match &*self.backend {
            Backend::Dense { counts, .. } => {
                let counts = counts.borrow();
                let c = &counts[slot as usize];
                c.set(c.get().saturating_add(1));
            }
            Backend::Sampling { map_id, shared, .. } => shared.publish(*map_id, slot),
            Backend::Hash { .. } => {
                panic!("Counters::record_hit on a hash-keyed registry (map_id 0)")
            }
        }
    }

    /// Clears the published position beacon (no-op on exact backends).
    /// Called on run exit and around blocking waits so the sampler never
    /// attributes idle time to the last-executed profile point.
    #[inline]
    pub fn park(&self) {
        if let Backend::Sampling { shared, .. } = &*self.backend {
            shared.park();
        }
    }

    /// Current count in `slot` (the slot-indexed dual of
    /// [`Counters::count`]).
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry or if `slot` was never resolved.
    pub fn count_slot(&self, slot: u32) -> u64 {
        match &*self.backend {
            Backend::Dense { counts, .. } => counts.borrow()[slot as usize].get(),
            Backend::Sampling { shared, .. } => shared.tallies().get(slot),
            Backend::Hash { .. } => {
                panic!("Counters::count_slot on a hash-keyed registry (map_id 0)")
            }
        }
    }

    /// Number of slots resolved so far (0 for hash-keyed registries).
    /// Unlike [`Counters::len`], this counts *instrumented* points, not
    /// *executed* ones, and is unaffected by [`Counters::clear`] — tests
    /// use it to assert that cached code replays without re-resolution.
    pub fn resolved_slots(&self) -> usize {
        match &*self.backend {
            Backend::Dense { slots, .. } | Backend::Sampling { slots, .. } => slots.borrow().len(),
            Backend::Hash { .. } => 0,
        }
    }

    /// Adds one to the counter for profile point `p`, saturating at
    /// `u64::MAX`.
    pub fn increment(&self, p: SourceObject) {
        self.add(p, 1);
    }

    /// Adds `n` to the counter for profile point `p`.
    ///
    /// Saturates at `u64::MAX` rather than wrapping: a long-running
    /// adaptive loop can genuinely exhaust a `u64` on a hot point, and a
    /// wrapped counter would silently invert every weight derived from it.
    pub fn add(&self, p: SourceObject, n: u64) {
        match &*self.backend {
            Backend::Dense { .. } | Backend::Sampling { .. } => {
                let slot = self.resolve(p);
                self.add_slot(slot, n);
            }
            Backend::Hash { counts } => {
                let mut counts = counts.borrow_mut();
                let c = counts.entry(p).or_insert(0);
                *c = c.saturating_add(n);
            }
        }
    }

    /// Current count for `p` (0 if never incremented).
    pub fn count(&self, p: SourceObject) -> u64 {
        match &*self.backend {
            Backend::Dense { slots, counts, .. } => match slots.borrow().get(p) {
                Some(slot) => counts.borrow()[slot as usize].get(),
                None => 0,
            },
            Backend::Sampling { slots, shared, .. } => match slots.borrow().get(p) {
                Some(slot) => shared.tallies().get(slot),
                None => 0,
            },
            Backend::Hash { counts } => counts.borrow().get(&p).copied().unwrap_or(0),
        }
    }

    /// Number of profile points with a nonzero count.
    pub fn len(&self) -> usize {
        match &*self.backend {
            Backend::Dense { counts, .. } => {
                counts.borrow().iter().filter(|c| c.get() > 0).count()
            }
            Backend::Sampling { slots, shared, .. } => {
                let n = slots.borrow().len() as u32;
                (0..n).filter(|&s| shared.tallies().get(s) > 0).count()
            }
            Backend::Hash { counts } => counts.borrow().values().filter(|c| **c > 0).count(),
        }
    }

    /// True iff nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes all counters. On a dense registry the slot assignment is
    /// preserved, so slot ids cached on AST nodes or embedded in bytecode
    /// stay valid across profile resets.
    pub fn clear(&self) {
        match &*self.backend {
            Backend::Dense { counts, .. } => {
                for c in counts.borrow().iter() {
                    c.set(0);
                }
            }
            Backend::Sampling { shared, .. } => shared.tallies().clear(),
            Backend::Hash { counts } => counts.borrow_mut().clear(),
        }
    }

    /// Extracts the counts accrued since the previous `take_delta` as
    /// dense `(slot, additional_hits)` pairs, and advances the baseline —
    /// each hit appears in exactly one delta. Slots whose count did not
    /// grow are omitted. This is the publisher-side extraction the fleet
    /// daemon's wire format consumes: no strings, no hashing, one pass
    /// over the dense counter vector.
    ///
    /// A [`Counters::clear`] between deltas rebases the baseline silently
    /// (counts that went *down* report nothing rather than underflowing).
    ///
    /// # Panics
    ///
    /// Panics on a hash-keyed registry — check `map_id() != 0` first.
    pub fn take_delta(&self) -> Vec<(u32, u64)> {
        match &*self.backend {
            Backend::Dense {
                counts, reported, ..
            } => {
                let counts = counts.borrow();
                let mut reported = reported.borrow_mut();
                if reported.len() < counts.len() {
                    reported.resize(counts.len(), 0);
                }
                let mut delta = Vec::new();
                for (i, c) in counts.iter().enumerate() {
                    let current = c.get();
                    let base = reported[i];
                    if current > base {
                        delta.push((i as u32, current - base));
                    }
                    reported[i] = current;
                }
                delta
            }
            Backend::Sampling {
                slots,
                shared,
                reported,
                ..
            } => {
                let n = slots.borrow().len();
                let mut reported = reported.borrow_mut();
                if reported.len() < n {
                    reported.resize(n, 0);
                }
                let mut delta = Vec::new();
                for (i, base) in reported.iter_mut().enumerate() {
                    let current = shared.tallies().get(i as u32);
                    if current > *base {
                        delta.push((i as u32, current - *base));
                    }
                    *base = current;
                }
                delta
            }
            Backend::Hash { .. } => {
                panic!("Counters::take_delta on a hash-keyed registry (map_id 0)")
            }
        }
    }

    /// Snapshots the current counts into an immutable [`Dataset`]. Points
    /// with a zero count are omitted, so dense and hash registries fed the
    /// same increments snapshot to *identical* datasets.
    pub fn snapshot(&self) -> Dataset {
        let counts = match &*self.backend {
            Backend::Dense { slots, counts, .. } => {
                let slots = slots.borrow();
                counts
                    .borrow()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.get() > 0)
                    .map(|(i, c)| (slots.point(i as u32), c.get()))
                    .collect()
            }
            Backend::Sampling { slots, shared, .. } => {
                let slots = slots.borrow();
                (0..slots.len() as u32)
                    .map(|i| (i, shared.tallies().get(i)))
                    .filter(|(_, c)| *c > 0)
                    .map(|(i, c)| (slots.point(i), c))
                    .collect()
            }
            Backend::Hash { counts } => counts
                .borrow()
                .iter()
                .filter(|(_, c)| **c > 0)
                .map(|(p, c)| (*p, *c))
                .collect(),
        };
        Dataset { counts }
    }
}

/// Profile counts from one run on one input — one "data set" in the paper's
/// terminology (§3.2). Absolute counts are only comparable *within* a
/// dataset; convert to weights before comparing across datasets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    pub(crate) counts: HashMap<SourceObject, u64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Records an absolute count for `p`, replacing any previous value.
    pub fn record(&mut self, p: SourceObject, count: u64) {
        self.counts.insert(p, count);
    }

    /// Count for `p` (0 if absent).
    pub fn count(&self, p: SourceObject) -> u64 {
        self.counts.get(&p).copied().unwrap_or(0)
    }

    /// The largest count in the dataset, i.e. the count of "the most
    /// executed profile point in the same data set" (§3.2).
    pub fn max_count(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Number of recorded profile points.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True iff no counts were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(point, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceObject, u64)> + '_ {
        self.counts.iter().map(|(p, c)| (*p, *c))
    }
}

impl FromIterator<(SourceObject, u64)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (SourceObject, u64)>>(iter: I) -> Dataset {
        Dataset {
            counts: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("t.scm", n, n + 1)
    }

    /// One registry per backend. The sampling one is manually driven (no
    /// thread): with no `record_hit`/`sample_now` in sight its keyed and
    /// slot APIs must behave exactly like the exact backends.
    fn all_impls() -> [Counters; 3] {
        [
            Counters::with_impl(CounterImpl::Dense),
            Counters::with_impl(CounterImpl::Hash),
            Counters::sampling_manual(),
        ]
    }

    #[test]
    fn increment_accumulates() {
        for c in all_impls() {
            c.increment(p(0));
            c.increment(p(0));
            c.increment(p(1));
            assert_eq!(c.count(p(0)), 2);
            assert_eq!(c.count(p(1)), 1);
            assert_eq!(c.count(p(2)), 0);
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn clones_share_state() {
        for c in all_impls() {
            let c2 = c.clone();
            c2.increment(p(0));
            assert_eq!(c.count(p(0)), 1);
        }
    }

    #[test]
    fn add_bulk() {
        for c in all_impls() {
            c.add(p(3), 10);
            c.add(p(3), 5);
            assert_eq!(c.count(p(3)), 15);
        }
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        for c in all_impls() {
            c.add(p(4), u64::MAX - 1);
            c.increment(p(4));
            c.increment(p(4));
            assert_eq!(c.count(p(4)), u64::MAX);
            c.add(p(4), 100);
            assert_eq!(c.count(p(4)), u64::MAX);
        }
    }

    #[test]
    fn snapshot_is_independent() {
        for c in all_impls() {
            c.increment(p(0));
            let snap = c.snapshot();
            c.increment(p(0));
            assert_eq!(snap.count(p(0)), 1);
            assert_eq!(c.count(p(0)), 2);
        }
    }

    #[test]
    fn clear_resets() {
        for c in all_impls() {
            c.increment(p(0));
            c.clear();
            assert!(c.is_empty());
        }
    }

    /// The two slot-indexed backends: same slot/take_delta surface, exact
    /// vs estimated storage.
    fn slotted() -> [Counters; 2] {
        [Counters::new(), Counters::sampling_manual()]
    }

    #[test]
    fn dense_slots_survive_clear() {
        for c in slotted() {
            let s0 = c.resolve(p(0));
            let s1 = c.resolve(p(1));
            c.add_slot(s0, 3);
            c.clear();
            assert_eq!(c.count_slot(s0), 0);
            assert_eq!(c.resolve(p(0)), s0, "slot ids are stable across clear");
            assert_eq!(c.resolve(p(1)), s1);
            assert_eq!(c.resolved_slots(), 2);
            c.add_slot(s1, 7);
            assert_eq!(c.count(p(1)), 7);
        }
    }

    #[test]
    fn slot_and_keyed_apis_agree() {
        for c in slotted() {
            let s = c.resolve(p(9));
            c.add_slot(s, 4);
            c.increment(p(9));
            assert_eq!(c.count(p(9)), 5);
            assert_eq!(c.count_slot(s), 5);
        }
    }

    #[test]
    fn map_ids_distinguish_registries() {
        let a = Counters::new();
        let b = Counters::new();
        assert_ne!(a.map_id(), b.map_id());
        assert_ne!(a.map_id(), 0);
        assert_ne!(Counters::sampling_manual().map_id(), 0);
        assert_eq!(Counters::with_impl(CounterImpl::Hash).map_id(), 0);
        assert_eq!(a.map_id(), a.clone().map_id(), "clones share the map");
    }

    #[test]
    fn all_backends_snapshot_identically() {
        let [dense, hash, sampling] = all_impls();
        for (point, n) in [(p(0), 2), (p(7), 1), (p(0), 3), (p(2), 5)] {
            dense.add(point, n);
            hash.add(point, n);
            sampling.add(point, n);
        }
        assert_eq!(dense.snapshot(), hash.snapshot());
        assert_eq!(dense.snapshot(), sampling.snapshot());
    }

    #[test]
    fn preloaded_slot_table_skips_interning() {
        let c = Counters::new();
        let s0 = c.resolve(p(0));
        let s1 = c.resolve(p(1));
        let table = c.slot_table().unwrap();
        let warm = Counters::with_slot_table(table);
        assert_eq!(warm.resolved_slots(), 2, "slots preloaded");
        assert!(warm.is_empty(), "counts start at zero");
        assert_eq!(warm.resolve(p(0)), s0, "same slot ids as the saver");
        assert_eq!(warm.resolve(p(1)), s1);
        warm.add_slot(s1, 3);
        assert_eq!(warm.count(p(1)), 3);
        assert_ne!(warm.map_id(), c.map_id(), "fresh map id");
        assert!(Counters::with_impl(CounterImpl::Hash).slot_table().is_none());
    }

    #[test]
    fn take_delta_partitions_hits_exactly() {
        for c in slotted() {
            let s0 = c.resolve(p(0));
            let s1 = c.resolve(p(1));
            c.add_slot(s0, 5);
            assert_eq!(c.take_delta(), vec![(s0, 5)]);
            assert_eq!(c.take_delta(), vec![], "no new hits, no delta");
            c.add_slot(s0, 2);
            c.add_slot(s1, 1);
            let mut d = c.take_delta();
            d.sort_unstable();
            assert_eq!(d, vec![(s0, 2), (s1, 1)]);
            // Sum of all deltas equals the live totals: each hit in exactly one.
            assert_eq!(c.count_slot(s0), 7);
            assert_eq!(c.count_slot(s1), 1);
        }
    }

    #[test]
    fn take_delta_rebases_after_clear() {
        for c in slotted() {
            let s = c.resolve(p(0));
            c.add_slot(s, 10);
            assert_eq!(c.take_delta(), vec![(s, 10)]);
            c.clear();
            assert_eq!(c.take_delta(), vec![], "shrunk counts report nothing");
            c.add_slot(s, 3);
            assert_eq!(c.take_delta(), vec![(s, 3)], "baseline rebased to zero");
        }
    }

    #[test]
    fn record_hit_publishes_instead_of_counting() {
        let c = Counters::sampling_manual();
        let s0 = c.resolve(p(0));
        let s1 = c.resolve(p(1));
        c.record_hit(s0);
        assert_eq!(c.count_slot(s0), 0, "a hit alone tallies nothing");
        c.sample_now();
        c.sample_now();
        assert_eq!(c.count_slot(s0), 2, "each sample tallies the beacon");
        c.record_hit(s1);
        c.sample_now();
        assert_eq!(c.count_slot(s0), 2);
        assert_eq!(c.count_slot(s1), 1);
        let shared = c.sampling_shared().unwrap();
        assert_eq!(shared.stats(), (3, 3, 0));
    }

    #[test]
    fn park_stops_attribution() {
        let c = Counters::sampling_manual();
        let s = c.resolve(p(0));
        c.record_hit(s);
        c.park();
        c.sample_now();
        assert_eq!(c.count_slot(s), 0, "parked beacon attributes nothing");
        assert_eq!(c.sampling_shared().unwrap().stats(), (1, 0, 1));
    }

    #[test]
    fn dense_record_hit_counts_exactly() {
        let c = Counters::new();
        let s = c.resolve(p(0));
        c.record_hit(s);
        c.record_hit(s);
        assert_eq!(c.count_slot(s), 2);
    }

    #[test]
    fn sampling_preloaded_slot_table_skips_interning() {
        let c = Counters::new();
        let s0 = c.resolve(p(0));
        let table = c.slot_table().unwrap();
        let warm = Counters::with_slot_table_sampling(table, 101);
        assert_eq!(warm.resolved_slots(), 1, "slots preloaded");
        assert_eq!(warm.resolve(p(0)), s0, "same slot ids as the saver");
        assert_eq!(warm.impl_kind(), CounterImpl::Sampling);
        assert_eq!(warm.sample_hz(), Some(101));
        assert_eq!(Counters::new().sample_hz(), None);
    }

    #[test]
    fn dataset_max_count() {
        let d: Dataset = [(p(0), 5), (p(1), 10)].into_iter().collect();
        assert_eq!(d.max_count(), 10);
        assert_eq!(Dataset::new().max_count(), 0);
    }
}
