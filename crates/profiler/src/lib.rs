//! Counter-based source-level profiler.
//!
//! This crate implements the profiling side of the paper's design (§3):
//!
//! - [`Counters`] — the live counter registry, incremented by the evaluator
//!   while a program runs instrumented. Dense slot-indexed by default: a
//!   [`SlotMap`] interns each profile point ([`pgmp_syntax::SourceObject`])
//!   to a stable `u32` slot at instrumentation time, so a bump is a plain
//!   vector index instead of a hash; the legacy hash-keyed representation
//!   survives behind [`CounterImpl::Hash`] as an interop/baseline view;
//! - [`Dataset`] — a snapshot of counters from one profiled run;
//! - [`ProfileInformation`] — **profile weights** in `[0,1]`, computed from
//!   one or more datasets and merged by weighted averaging exactly as
//!   Figure 3 prescribes;
//! - persistence (`store-profile` / `load-profile`) in a self-describing
//!   s-expression format read back with `pgmp-reader`;
//! - [`ProfileMode`] — how the evaluator instruments: not at all, every
//!   source expression (Chez-style, §4.1), or function calls only
//!   (Racket `errortrace`-style, §4.2).
//!
//! # Example — Figure 3 of the paper
//!
//! ```
//! use pgmp_profiler::{Dataset, ProfileInformation};
//! use pgmp_syntax::SourceObject;
//!
//! let important = SourceObject::new("classify.scm", 10, 30);
//! let spam = SourceObject::new("classify.scm", 40, 60);
//!
//! // First data set: important runs 5 times, spam 10 times.
//! let mut d1 = Dataset::new();
//! d1.record(important, 5);
//! d1.record(spam, 10);
//! let w1 = ProfileInformation::from_dataset(&d1);
//! assert_eq!(w1.weight(important), 0.5);  // 5/10
//! assert_eq!(w1.weight(spam), 1.0);       // 10/10
//!
//! // Second data set: important runs 100 times, spam 10 times.
//! let mut d2 = Dataset::new();
//! d2.record(important, 100);
//! d2.record(spam, 10);
//! let merged = w1.merge(&ProfileInformation::from_dataset(&d2));
//! assert_eq!(merged.weight(important), (0.5 + 100.0 / 100.0) / 2.0);
//! assert_eq!(merged.weight(spam), (1.0 + 10.0 / 100.0) / 2.0);
//! ```

mod counters;
mod info;
pub mod rebase;
pub mod sampling;
mod slots;
mod store;

pub use counters::{CounterImpl, Counters, Dataset};
pub use rebase::{
    rebase, MatchTier, RebaseConfig, RebaseError, RebaseOutcome, RebaseReport, RebaseResult,
};
pub use sampling::{Sampler, SamplingShared, DEFAULT_SAMPLE_HZ};
pub use slots::{SlotCompat, SlotMap, SlotTableMismatch};
pub use info::ProfileInformation;
pub use store::{write_atomic, ProfileStoreError, Provenance, StoredProfile};

/// How the evaluator instruments a program for profiling.
///
/// The two active modes reproduce the two profilers the paper builds on:
/// Chez Scheme "effectively profiles every source expression" while Racket's
/// `errortrace` "profiles only function calls" (§4.1–4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// No instrumentation: profile points introduce no overhead (§3.1).
    #[default]
    Off,
    /// Count every evaluation of every expression that has a source object.
    EveryExpression,
    /// Count only procedure applications (the `errortrace` constraint).
    CallsOnly,
}

impl ProfileMode {
    /// True iff any counting happens in this mode.
    pub fn is_on(self) -> bool {
        self != ProfileMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_off() {
        assert_eq!(ProfileMode::default(), ProfileMode::Off);
        assert!(!ProfileMode::Off.is_on());
        assert!(ProfileMode::EveryExpression.is_on());
        assert!(ProfileMode::CallsOnly.is_on());
    }
}
