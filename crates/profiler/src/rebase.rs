//! Stale-profile rebasing: re-anchoring profile points onto edited source.
//!
//! Production profiles are always collected on *yesterday's* source. A
//! profile point is a [`SourceObject`] — file plus byte offsets — so any
//! edit that shifts text invalidates every later point positionally and
//! (before this module) silently discarded the fleet data the §3.2 merge
//! worked hard to accumulate. Following the Stale Profile Matching idea
//! (Ayupov et al.; see PAPERS.md), [`rebase`] fuzzily re-anchors an old
//! profile onto the edited source instead:
//!
//! 1. **Exact** — a toplevel form whose structure *and* offsets are
//!    unchanged keeps its points bit-identically (confidence 1.0).
//! 2. **Shifted** — a form whose structure is unchanged but whose text
//!    moved (something was inserted or deleted above it) is found by LCS
//!    over position-independent structural fingerprints; its points
//!    re-anchor to the shifted offsets at confidence 1.0.
//! 3. **Structural** — an edited form is paired with its most plausible
//!    successor (same defined name first, then same head shape) and its
//!    points re-anchor at a *decayed* confidence: a base factor for the
//!    match kind times the fraction of leaves the two forms still share.
//! 4. **Dead** — anything unmatched (or decayed below
//!    [`RebaseConfig::min_confidence`]) is dropped, and reported.
//!
//! The rebased weight of a point is `old_weight × confidence`, so a
//! rebase can only make weights (and the `profile-query` rankings built
//! on them) *less* confident — never invent a hot point (DESIGN.md §4i).
//! The per-point confidence is recorded in the stored profile as a v2
//! `(confidence c)` sub-entry ([`StoredProfile::confidence`]) and decays
//! multiplicatively across repeated rebases. Every decision emits a
//! `profile_rebase` trace event and feeds the `rebase.*` metrics, so
//! `pgmp-trace explain` can answer why a point matched, decayed, or
//! died. The normative matcher specification lives in `docs/REBASE.md`.

use crate::info::ProfileInformation;
use crate::slots::SlotMap;
use crate::store::StoredProfile;
use pgmp_observe as observe;
use pgmp_reader::read_str;
use pgmp_syntax::{SourceObject, Symbol, Syntax, SyntaxBody};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

/// Tuning knobs for the matcher. The defaults are the normative values
/// documented in `docs/REBASE.md`.
#[derive(Clone, Copy, Debug)]
pub struct RebaseConfig {
    /// Matches whose cumulative confidence falls below this are killed
    /// rather than kept as near-noise weights.
    pub min_confidence: f64,
    /// Base confidence for structural matches paired by defined name
    /// (`(define (f …) …)` on both sides).
    pub def_name_base: f64,
    /// Base confidence for structural matches paired only by head shape.
    pub shape_base: f64,
}

impl Default for RebaseConfig {
    fn default() -> RebaseConfig {
        RebaseConfig {
            min_confidence: 0.05,
            def_name_base: 0.9,
            shape_base: 0.7,
        }
    }
}

/// Which matcher tier re-anchored a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchTier {
    /// Same structure, same offsets: the point is bit-identical.
    Exact,
    /// Same structure, shifted offsets (LCS-aligned): confidence 1.0.
    Shifted,
    /// Edited form paired by defined name or head shape: decayed.
    Structural,
    /// No plausible successor (or decayed below the floor): weight dropped.
    Dead,
}

impl MatchTier {
    /// The wire label used in `profile_rebase` events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MatchTier::Exact => "exact",
            MatchTier::Shifted => "shifted",
            MatchTier::Structural => "structural",
            MatchTier::Dead => "dead",
        }
    }
}

impl fmt::Display for MatchTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One point's rebase decision.
#[derive(Clone, Debug)]
pub struct RebaseOutcome {
    /// The point as recorded in the old profile.
    pub point: SourceObject,
    /// Where it re-anchored, `None` when dead.
    pub new_point: Option<SourceObject>,
    pub tier: MatchTier,
    /// The *match* confidence of this rebase step (1.0 for exact and
    /// shifted, 0.0 for dead). The stored profile records the cumulative
    /// confidence — this step times whatever earlier rebases recorded.
    pub confidence: f64,
    pub old_weight: f64,
    /// `old_weight × confidence`; 0.0 for dead points.
    pub new_weight: f64,
}

/// Aggregate accounting over every point the rebase touched.
#[derive(Clone, Copy, Debug, Default)]
pub struct RebaseReport {
    pub exact: usize,
    pub shifted: usize,
    pub structural: usize,
    pub dead: usize,
    /// Points in other files, carried through untouched (not counted in
    /// the tiers above or in the weight totals below).
    pub carried: usize,
    /// Total weight of the rebased file's points in the old profile.
    pub old_weight_total: f64,
    /// Total weight those points retain after decay.
    pub retained_weight: f64,
}

impl RebaseReport {
    /// Fraction of the old profile's weight that survived the rebase,
    /// in `[0, 1]`; 1.0 when the old profile had no weight to lose.
    pub fn retained_weight_fraction(&self) -> f64 {
        if self.old_weight_total <= 0.0 {
            1.0
        } else {
            self.retained_weight / self.old_weight_total
        }
    }
}

/// A rebased profile plus the per-point decisions behind it.
#[derive(Clone, Debug)]
pub struct RebaseResult {
    /// The rebased profile: decayed weights re-anchored onto the new
    /// source, confidence provenance recorded, slot table re-keyed in old
    /// slot order (dead slots dropped), dataset count and provenance
    /// preserved. Always format v2 (confidence needs it).
    pub profile: StoredProfile,
    /// One outcome per point of the rebased file, in sorted point order.
    pub outcomes: Vec<RebaseOutcome>,
    pub report: RebaseReport,
}

/// Rebasing failed before any matching happened.
#[derive(Debug)]
pub enum RebaseError {
    /// One of the two sources did not parse; the string names which.
    Read(String),
}

impl fmt::Display for RebaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebaseError::Read(m) => write!(f, "cannot rebase: {m}"),
        }
    }
}

impl std::error::Error for RebaseError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Position-independent structural fingerprint of a form: FNV over its
/// printed datum (structure and atoms; offsets, file names, and hygiene
/// marks excluded). This is deliberately the opposite trade-off from
/// `pgmp_expander::form_hash`, which *includes* offsets so the
/// incremental cache re-keys moved forms — here moved-but-unchanged forms
/// must collide so LCS can align them.
pub fn struct_hash(stx: &Syntax) -> u64 {
    let printed = stx.to_datum().to_string();
    let mut h = FNV_OFFSET;
    for b in printed.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Longest common subsequence over two fingerprint sequences, returned
/// as monotone `(old index, new index)` pairs. O(n·m) dynamic program —
/// fine at toplevel-form counts.
pub fn lcs_align(old: &[u64], new: &[u64]) -> Vec<(usize, usize)> {
    let (n, m) = (old.len(), new.len());
    // dp[i][j] = LCS length of old[i..] vs new[j..].
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if old[i] == new[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            pairs.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    pairs
}

/// Lockstep walk of two trees, recording `old span → new span` for every
/// node pair that carries a source object on both sides. On structurally
/// identical trees (the LCS tiers) this maps every node; on edited trees
/// (the structural tier) it maps the positionally corresponding prefix —
/// best-effort by design, since decayed weights only under-claim.
pub fn span_map_lockstep(
    old: &Syntax,
    new: &Syntax,
    map: &mut HashMap<(u32, u32), (u32, u32)>,
) {
    if let (Some(a), Some(b)) = (old.source, new.source) {
        map.insert((a.bfp, a.efp), (b.bfp, b.efp));
    }
    let zip = |xs: &[Rc<Syntax>], ys: &[Rc<Syntax>], map: &mut HashMap<_, _>| {
        for (x, y) in xs.iter().zip(ys.iter()) {
            span_map_lockstep(x, y, map);
        }
    };
    match (&old.body, &new.body) {
        (SyntaxBody::List(xs), SyntaxBody::List(ys))
        | (SyntaxBody::Vector(xs), SyntaxBody::Vector(ys)) => zip(xs, ys, map),
        (SyntaxBody::Improper(xs, xt), SyntaxBody::Improper(ys, yt)) => {
            zip(xs, ys, map);
            span_map_lockstep(xt, yt, map);
        }
        _ => {}
    }
}

fn leaf_count(stx: &Syntax) -> usize {
    match &stx.body {
        SyntaxBody::Atom(_) => 1,
        SyntaxBody::List(xs) | SyntaxBody::Vector(xs) => xs.iter().map(|x| leaf_count(x)).sum(),
        SyntaxBody::Improper(xs, t) => {
            xs.iter().map(|x| leaf_count(x)).sum::<usize>() + leaf_count(t)
        }
    }
}

/// `(matched leaves, total leaves)` of a lockstep walk; unpaired or
/// shape-mismatched subtrees count their larger side as unmatched.
fn similarity_walk(old: &Syntax, new: &Syntax) -> (usize, usize) {
    let zip = |xs: &[Rc<Syntax>], ys: &[Rc<Syntax>]| {
        let (mut m, mut t) = (0, 0);
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mm, tt) = similarity_walk(x, y);
            m += mm;
            t += tt;
        }
        let extra = if xs.len() > ys.len() {
            &xs[ys.len()..]
        } else {
            &ys[xs.len()..]
        };
        t += extra.iter().map(|x| leaf_count(x)).sum::<usize>();
        (m, t)
    };
    match (&old.body, &new.body) {
        (SyntaxBody::Atom(a), SyntaxBody::Atom(b)) => {
            ((old.to_datum() == new.to_datum() && a == b) as usize, 1)
        }
        (SyntaxBody::List(xs), SyntaxBody::List(ys))
        | (SyntaxBody::Vector(xs), SyntaxBody::Vector(ys)) => zip(xs, ys),
        (SyntaxBody::Improper(xs, xt), SyntaxBody::Improper(ys, yt)) => {
            let (m, t) = zip(xs, ys);
            let (mm, tt) = similarity_walk(xt, yt);
            (m + mm, t + tt)
        }
        _ => (0, leaf_count(old).max(leaf_count(new))),
    }
}

/// Fraction of leaves two forms share under a lockstep walk, in `[0,1]`.
/// This is the similarity factor of the structural tier: monotone in the
/// number of leaves an edit script changes.
pub fn similarity(old: &Syntax, new: &Syntax) -> f64 {
    let (m, t) = similarity_walk(old, new);
    if t == 0 {
        1.0
    } else {
        m as f64 / t as f64
    }
}

/// The name a toplevel definition binds, for structural pairing:
/// `(define (f …) …)`, `(define f …)`, `(define-syntax (f …) …)`, etc.
fn defined_name(stx: &Syntax) -> Option<Symbol> {
    let elems = stx.as_list()?;
    let head = elems.first()?.as_symbol()?;
    if !matches!(
        head.as_str(),
        "define" | "define-syntax" | "define-for-syntax"
    ) {
        return None;
    }
    let binder = elems.get(1)?;
    binder
        .as_symbol()
        .or_else(|| binder.as_list()?.first()?.as_symbol())
}

fn head_symbol(stx: &Syntax) -> Option<Symbol> {
    stx.as_list()?.first()?.as_symbol()
}

/// The file a point's counters belong to, with the §4.1 `%pgmp` suffix of
/// generated points stripped: `"m.scm%pgmp3"` rebases with `"m.scm"`.
fn base_file(p: &SourceObject) -> &str {
    let s = p.file.as_str();
    match s.find("%pgmp") {
        Some(i) => &s[..i],
        None => s,
    }
}

/// Span → (new span, match confidence), the matcher's whole-file output.
type SpanMap = HashMap<(u32, u32), ((u32, u32), f64)>;

/// Span → (new span, match confidence) for the whole file, built from the
/// three matcher tiers over the two parsed form sequences.
fn build_span_map(
    old_forms: &[Rc<Syntax>],
    new_forms: &[Rc<Syntax>],
    cfg: &RebaseConfig,
) -> SpanMap {
    let old_hashes: Vec<u64> = old_forms.iter().map(|f| struct_hash(f)).collect();
    let new_hashes: Vec<u64> = new_forms.iter().map(|f| struct_hash(f)).collect();
    let pairs = lcs_align(&old_hashes, &new_hashes);

    let mut spans: SpanMap = HashMap::new();
    let mut matched_old: HashSet<usize> = HashSet::new();
    let mut matched_new: HashSet<usize> = HashSet::new();
    let add_form = |old: &Syntax, new: &Syntax, confidence: f64, spans: &mut SpanMap| {
        let mut m = HashMap::new();
        span_map_lockstep(old, new, &mut m);
        for (from, to) in m {
            // First writer wins: LCS pairs are inserted before structural
            // pairs, so a span never decays below its best match.
            spans.entry(from).or_insert((to, confidence));
        }
    };
    for (i, j) in &pairs {
        matched_old.insert(*i);
        matched_new.insert(*j);
        add_form(&old_forms[*i], &new_forms[*j], 1.0, &mut spans);
    }

    // Structural tier: pair leftover forms by defined name first, then by
    // head shape in order, decaying by how much of the form survived.
    let leftovers_old: Vec<usize> = (0..old_forms.len())
        .filter(|i| !matched_old.contains(i))
        .collect();
    let mut leftovers_new: Vec<usize> = (0..new_forms.len())
        .filter(|j| !matched_new.contains(j))
        .collect();
    let pair_structural = |i: usize, j: usize, base: f64, spans: &mut SpanMap| {
        let confidence = base * similarity(&old_forms[i], &new_forms[j]);
        if confidence >= cfg.min_confidence {
            add_form(&old_forms[i], &new_forms[j], confidence, spans);
        }
    };
    let mut still_unpaired: Vec<usize> = Vec::new();
    for i in leftovers_old {
        let by_name = defined_name(&old_forms[i]).and_then(|name| {
            leftovers_new
                .iter()
                .position(|&j| defined_name(&new_forms[j]) == Some(name))
        });
        match by_name {
            Some(pos) => {
                let j = leftovers_new.remove(pos);
                pair_structural(i, j, cfg.def_name_base, &mut spans);
            }
            None => still_unpaired.push(i),
        }
    }
    for i in still_unpaired {
        // Among leftovers with the same head, take the most similar one —
        // in-order pairing would marry an edited form to an unrelated
        // freshly inserted neighbor.
        let by_shape = head_symbol(&old_forms[i]).and_then(|head| {
            leftovers_new
                .iter()
                .enumerate()
                .filter(|(_, &j)| head_symbol(&new_forms[j]) == Some(head))
                .map(|(pos, &j)| (pos, similarity(&old_forms[i], &new_forms[j])))
                .max_by(|a, b| a.1.total_cmp(&b.1))
        });
        if let Some((pos, _)) = by_shape {
            let j = leftovers_new.remove(pos);
            pair_structural(i, j, cfg.shape_base, &mut spans);
        }
    }
    spans
}

/// Re-anchors `old` onto the edited source of `file`.
///
/// `old_src` must be the source the profile was collected against and
/// `new_src` the edited text; both parse under `file`, the file name the
/// profile's points carry (generated `file%pgmpN` points rebase through
/// their base form's span). Points in *other* files are carried through
/// untouched.
///
/// Emits one `profile_rebase` trace event per decision when a recording
/// is active, and always updates the `rebase.*` metrics.
///
/// # Errors
///
/// [`RebaseError::Read`] when either source fails to parse.
pub fn rebase(
    old: &StoredProfile,
    old_src: &str,
    new_src: &str,
    file: &str,
    cfg: &RebaseConfig,
) -> Result<RebaseResult, RebaseError> {
    let old_forms =
        read_str(old_src, file).map_err(|e| RebaseError::Read(format!("old source: {e}")))?;
    let new_forms =
        read_str(new_src, file).map_err(|e| RebaseError::Read(format!("new source: {e}")))?;
    let spans = build_span_map(&old_forms, &new_forms, cfg);

    let mut outcomes: Vec<RebaseOutcome> = Vec::new();
    let mut report = RebaseReport::default();
    // point → (new point, cumulative confidence, new weight); collisions
    // (two old points re-anchoring onto one successor) keep the heavier.
    let mut placed: HashMap<SourceObject, (SourceObject, f64, f64)> = HashMap::new();
    let mut moved: HashMap<SourceObject, SourceObject> = HashMap::new();

    let mut points: Vec<(SourceObject, f64)> = old.info.iter().collect();
    points.sort_by_key(|a| a.0);
    for (p, w) in points {
        if base_file(&p) != file {
            report.carried += 1;
            moved.insert(p, p);
            placed.insert(p, (p, old.confidence(p), w));
            continue;
        }
        report.old_weight_total += w;
        let decision = spans.get(&(p.bfp, p.efp));
        let (tier, confidence, new_point) = match decision {
            Some(((nb, ne), c)) => {
                let cumulative = old.confidence(p) * c;
                if cumulative < cfg.min_confidence {
                    (MatchTier::Dead, 0.0, None)
                } else if *c >= 1.0 {
                    let np = SourceObject {
                        file: p.file,
                        bfp: *nb,
                        efp: *ne,
                    };
                    if np == p {
                        (MatchTier::Exact, 1.0, Some(np))
                    } else {
                        (MatchTier::Shifted, 1.0, Some(np))
                    }
                } else {
                    let np = SourceObject {
                        file: p.file,
                        bfp: *nb,
                        efp: *ne,
                    };
                    (MatchTier::Structural, *c, Some(np))
                }
            }
            None => (MatchTier::Dead, 0.0, None),
        };
        let new_weight = w * confidence;
        let outcome = RebaseOutcome {
            point: p,
            new_point,
            tier,
            confidence,
            old_weight: w,
            new_weight,
        };
        let tier = match new_point {
            Some(np) => {
                let cumulative = old.confidence(p) * confidence;
                match placed.get(&np) {
                    // Collision: a heavier point already claimed this
                    // successor — the lighter one dies.
                    Some((_, _, placed_w)) if *placed_w >= new_weight => MatchTier::Dead,
                    _ => {
                        placed.insert(np, (np, cumulative, new_weight));
                        moved.insert(p, np);
                        tier
                    }
                }
            }
            None => MatchTier::Dead,
        };
        let outcome = if tier == MatchTier::Dead {
            RebaseOutcome {
                new_point: None,
                tier,
                confidence: 0.0,
                new_weight: 0.0,
                ..outcome
            }
        } else {
            report.retained_weight += new_weight;
            outcome
        };
        match tier {
            MatchTier::Exact => report.exact += 1,
            MatchTier::Shifted => report.shifted += 1,
            MatchTier::Structural => report.structural += 1,
            MatchTier::Dead => report.dead += 1,
        }
        if observe::enabled() {
            observe::emit(observe::EventKind::ProfileRebase {
                point: outcome.point.to_string(),
                new_point: outcome.new_point.map(|np| np.to_string()),
                tier: tier.as_str().to_string(),
                confidence: outcome.confidence,
                old_weight: outcome.old_weight,
                new_weight: outcome.new_weight,
            });
        }
        outcomes.push(outcome);
    }

    let reg = observe::metrics();
    reg.counter_add("rebase.exact", report.exact as u64);
    reg.counter_add("rebase.shifted", report.shifted as u64);
    reg.counter_add("rebase.structural", report.structural as u64);
    reg.counter_add("rebase.dead", report.dead as u64);
    reg.gauge_set(
        "rebase.retained_weight_fraction",
        report.retained_weight_fraction(),
    );

    // Rebuild the slot table in old slot order: surviving points keep
    // their relative position, dead slots drop out (slot identity is
    // process-local, so renumbering is safe — see docs/FLEET.md).
    let slots = old.slots.as_ref().and_then(|table| {
        let survivors: Vec<SourceObject> = table
            .points()
            .iter()
            .filter_map(|p| moved.get(p).copied())
            .collect();
        let mut seen = HashSet::new();
        let survivors: Vec<SourceObject> = survivors
            .into_iter()
            .filter(|p| seen.insert(*p))
            .collect();
        if survivors.is_empty() {
            None
        } else {
            SlotMap::from_points(survivors).ok()
        }
    });

    let weights: Vec<(SourceObject, f64)> =
        placed.values().map(|(np, _, w)| (*np, *w)).collect();
    let confidences: Vec<(SourceObject, f64)> =
        placed.values().map(|(np, c, _)| (*np, *c)).collect();
    let info = ProfileInformation::from_weights(weights, old.info.dataset_count());
    let profile = StoredProfile::v2(info, slots)
        .with_provenance(old.provenance)
        .with_confidences(confidences);
    Ok(RebaseResult {
        profile,
        outcomes,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Old profile: one weighted point per toplevel-form root span of
    /// `src`, weights descending from 1.0, slot table in point order.
    fn profile_for(src: &str, file: &str) -> StoredProfile {
        let forms = read_str(src, file).unwrap();
        let mut points: Vec<SourceObject> = Vec::new();
        for f in &forms {
            collect_spans(f, &mut points);
        }
        points.sort();
        points.dedup();
        let n = points.len() as f64;
        let weights: Vec<(SourceObject, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, 1.0 - i as f64 / (2.0 * n)))
            .collect();
        let slots = SlotMap::from_points(points).unwrap();
        StoredProfile::v2(ProfileInformation::from_weights(weights, 1), Some(slots))
    }

    fn collect_spans(stx: &Syntax, out: &mut Vec<SourceObject>) {
        if let Some(s) = stx.source {
            out.push(s);
        }
        match &stx.body {
            SyntaxBody::Atom(_) => {}
            SyntaxBody::List(xs) | SyntaxBody::Vector(xs) => {
                for x in xs {
                    collect_spans(x, out);
                }
            }
            SyntaxBody::Improper(xs, t) => {
                for x in xs {
                    collect_spans(x, out);
                }
                collect_spans(t, out);
            }
        }
    }

    const OLD: &str = "(define (f x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";

    #[test]
    fn identical_source_rebases_bit_identically() {
        let old = profile_for(OLD, "m.scm");
        let r = rebase(&old, OLD, OLD, "m.scm", &RebaseConfig::default()).unwrap();
        assert_eq!(r.report.dead, 0);
        assert_eq!(r.report.shifted, 0);
        assert_eq!(r.report.structural, 0);
        assert!(r.report.exact > 0);
        assert_eq!(r.report.retained_weight_fraction(), 1.0);
        assert_eq!(r.profile.store_to_string(), old.store_to_string());
    }

    #[test]
    fn inserted_form_shifts_downstream_points_at_full_confidence() {
        let new = "(define (h x) x)\n(define (f x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let r = rebase(&old, OLD, new, "m.scm", &RebaseConfig::default()).unwrap();
        assert_eq!(r.report.dead, 0, "outcomes: {:?}", r.outcomes);
        assert_eq!(r.report.structural, 0);
        assert!(r.report.shifted > 0);
        assert_eq!(r.report.retained_weight_fraction(), 1.0);
        // Every weight is preserved, just re-anchored: the hottest old
        // point's weight exists somewhere in the rebased profile.
        let shift = "(define (h x) x)\n".len() as u32;
        for o in &r.outcomes {
            let np = o.new_point.unwrap();
            assert_eq!(np.bfp, o.point.bfp + shift);
            assert_eq!(o.new_weight, o.old_weight);
            assert_eq!(r.profile.confidence(np), 1.0);
        }
        // No confidence entries: shifted matches are full confidence.
        assert!(!r.profile.store_to_string().contains("confidence"));
    }

    #[test]
    fn renamed_define_decays_but_survives() {
        // Same-length rename (`f` -> `q`): downstream offsets don't move.
        let new = "(define (q x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let cfg = RebaseConfig::default();
        let r = rebase(&old, OLD, new, "m.scm", &cfg).unwrap();
        // `f`'s form decays (paired by head shape after the rename broke
        // the name pairing); `g` and the call form still match exactly.
        assert!(r.report.structural > 0, "outcomes: {:?}", r.outcomes);
        assert!(r.report.exact > 0);
        let frac = r.report.retained_weight_fraction();
        assert!(frac > 0.5 && frac < 1.0, "retained {frac}");
        // Decayed outcomes: weight strictly shrinks, confidence recorded.
        for o in r.outcomes.iter().filter(|o| o.tier == MatchTier::Structural) {
            assert!(o.new_weight < o.old_weight);
            assert!(o.confidence < 1.0 && o.confidence >= cfg.min_confidence);
            assert_eq!(r.profile.confidence(o.new_point.unwrap()), o.confidence);
        }
        assert!(r.profile.store_to_string().contains("confidence"));
        // The rebased profile round-trips with its confidence intact.
        let back = StoredProfile::load_from_str(&r.profile.store_to_string()).unwrap();
        assert_eq!(back.info, r.profile.info);
        assert_eq!(back.confidence, r.profile.confidence);
    }

    #[test]
    fn deleted_form_kills_its_points() {
        let new = "(define (f x) (* x x))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let r = rebase(&old, OLD, new, "m.scm", &RebaseConfig::default()).unwrap();
        assert!(r.report.dead > 0);
        let frac = r.report.retained_weight_fraction();
        assert!(frac < 1.0);
        for o in r.outcomes.iter().filter(|o| o.tier == MatchTier::Dead) {
            assert!(o.new_point.is_none());
            assert_eq!(o.new_weight, 0.0);
        }
    }

    #[test]
    fn foreign_points_are_carried_untouched() {
        let other = SourceObject::new("other.scm", 5, 9);
        let old = StoredProfile::v2(
            ProfileInformation::from_weights([(other, 0.25)], 1),
            None,
        );
        let r = rebase(&old, OLD, OLD, "m.scm", &RebaseConfig::default()).unwrap();
        assert_eq!(r.report.carried, 1);
        assert_eq!(r.profile.info.weight(other), 0.25);
    }

    #[test]
    fn generated_points_rebase_through_their_base_span() {
        // A generated point `m.scm%pgmp0` carries its base form's span; an
        // insertion above shifts it like any source point, keeping the
        // suffix (the file name does not move, only the offsets).
        let forms = read_str(OLD, "m.scm").unwrap();
        let base = forms[0].source.unwrap();
        let mut factory = pgmp_syntax::SourceFactory::new();
        let generated = factory.make_profile_point(Some(base));
        let old = StoredProfile::v2(
            ProfileInformation::from_weights([(generated, 0.8)], 1),
            None,
        );
        let new = "(define (h x) x)\n(define (f x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";
        let r = rebase(&old, OLD, new, "m.scm", &RebaseConfig::default()).unwrap();
        assert_eq!(r.report.shifted, 1, "outcomes: {:?}", r.outcomes);
        let np = r.outcomes[0].new_point.unwrap();
        assert_eq!(np.file, generated.file, "suffix preserved");
        assert_eq!(np.bfp, generated.bfp + "(define (h x) x)\n".len() as u32);
        assert_eq!(r.profile.info.weight(np), 0.8);
    }

    #[test]
    fn confidence_decays_multiplicatively_across_rebases() {
        let new = "(define (f2 x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let cfg = RebaseConfig::default();
        let once = rebase(&old, OLD, new, "m.scm", &cfg).unwrap();
        let renamed_again = "(define (f3 x) (* x x))\n(define (g x) (+ x 1))\n(f (g 4))";
        let twice = rebase(&once.profile, new, renamed_again, "m.scm", &cfg).unwrap();
        let decayed_once: Vec<f64> = once
            .outcomes
            .iter()
            .filter(|o| o.tier == MatchTier::Structural)
            .map(|o| once.profile.confidence(o.new_point.unwrap()))
            .collect();
        let decayed_twice: Vec<f64> = twice
            .outcomes
            .iter()
            .filter(|o| o.tier == MatchTier::Structural)
            .map(|o| twice.profile.confidence(o.new_point.unwrap()))
            .collect();
        assert!(!decayed_once.is_empty() && !decayed_twice.is_empty());
        let min_once = decayed_once.iter().cloned().fold(1.0, f64::min);
        let min_twice = decayed_twice.iter().cloned().fold(1.0, f64::min);
        assert!(
            min_twice < min_once,
            "cumulative confidence must keep falling: {min_once} -> {min_twice}"
        );
    }

    #[test]
    fn min_confidence_floor_kills_weak_matches() {
        let new = "(define (f2 a) (- a 7))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let strict = RebaseConfig {
            min_confidence: 0.89,
            ..RebaseConfig::default()
        };
        let r = rebase(&old, OLD, new, "m.scm", &strict).unwrap();
        // The heavily edited `f` cannot clear a 0.89 floor (def-name base
        // is 0.9 and most leaves changed), so its points die.
        assert_eq!(r.report.structural, 0, "outcomes: {:?}", r.outcomes);
        assert!(r.report.dead > 0);
    }

    #[test]
    fn weights_never_amplify() {
        let new = "(define (f2 x) (* x x))\n(define (zz y) (list y y))\n(f (g 5))";
        let old = profile_for(OLD, "m.scm");
        let r = rebase(&old, OLD, new, "m.scm", &RebaseConfig::default()).unwrap();
        for o in &r.outcomes {
            assert!(o.new_weight <= o.old_weight + 1e-12, "{o:?}");
            assert!((0.0..=1.0).contains(&o.confidence));
        }
        assert!(r.report.retained_weight_fraction() <= 1.0 + 1e-12);
    }

    #[test]
    fn unreadable_source_is_a_typed_error() {
        let old = profile_for(OLD, "m.scm");
        let cfg = RebaseConfig::default();
        assert!(matches!(
            rebase(&old, "(((", OLD, "m.scm", &cfg),
            Err(RebaseError::Read(_))
        ));
        assert!(matches!(
            rebase(&old, OLD, "(((", "m.scm", &cfg),
            Err(RebaseError::Read(_))
        ));
    }

    #[test]
    fn lcs_align_is_monotone_and_maximal() {
        assert_eq!(lcs_align(&[1, 2, 3], &[1, 2, 3]), vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(lcs_align(&[1, 2, 3], &[9, 1, 2, 3]), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(lcs_align(&[1, 2, 3], &[1, 3]), vec![(0, 0), (2, 1)]);
        assert_eq!(lcs_align(&[], &[1]), vec![]);
        // Duplicates stay 1:1 and ordered.
        assert_eq!(lcs_align(&[7, 7], &[7, 7, 7]).len(), 2);
    }

    #[test]
    fn slot_table_rekeys_in_old_order_and_drops_dead_slots() {
        let new = "(define (f x) (* x x))\n(f (g 4))";
        let old = profile_for(OLD, "m.scm");
        let old_len = old.slots.as_ref().unwrap().len();
        let r = rebase(&old, OLD, new, "m.scm", &RebaseConfig::default()).unwrap();
        let table = r.profile.slots.as_ref().unwrap();
        assert!(table.len() < old_len, "dead slots must drop");
        // Every surviving slot point has a weight in the rebased profile.
        for p in table.points() {
            assert!(r.profile.info.lookup(*p).is_some());
        }
    }
}
