//! Dense slot interning for profile points.
//!
//! The paper's Chez implementation is fast because a profile point compiles
//! down to *a plain counter increment*: the counter's address is burned into
//! the generated code, so the running program never hashes anything. A
//! [`SlotMap`] reproduces that: it interns each [`SourceObject`] to a stable
//! `u32` slot exactly once — at instrumentation (annotation/compile) time —
//! after which every bump is a bounds-checked vector index.
//!
//! Slots are allocated densely in first-resolution order and are **never
//! recycled** for the lifetime of the map: clearing counters does not clear
//! the slot assignment, so slot ids cached on AST nodes (or embedded in
//! bytecode) stay valid across profile resets and incremental
//! re-compilation.

use pgmp_syntax::SourceObject;
use std::collections::HashMap;

/// An interning table from profile points to dense `u32` slots.
///
/// # Example
///
/// ```
/// use pgmp_profiler::SlotMap;
/// use pgmp_syntax::SourceObject;
/// let mut m = SlotMap::new();
/// let p = SourceObject::new("x.scm", 0, 5);
/// let s = m.resolve(p);
/// assert_eq!(m.resolve(p), s, "resolution is stable");
/// assert_eq!(m.point(s), p);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlotMap {
    slots: HashMap<SourceObject, u32>,
    points: Vec<SourceObject>,
}

impl SlotMap {
    /// Creates an empty map.
    pub fn new() -> SlotMap {
        SlotMap::default()
    }

    /// Returns the slot for `p`, interning it if this is the first
    /// resolution. Slots are dense: the `n`-th distinct point gets slot
    /// `n - 1`.
    pub fn resolve(&mut self, p: SourceObject) -> u32 {
        let points = &mut self.points;
        *self.slots.entry(p).or_insert_with(|| {
            points.push(p);
            (points.len() - 1) as u32
        })
    }

    /// The slot previously assigned to `p`, if any (never interns).
    pub fn get(&self, p: SourceObject) -> Option<u32> {
        self.slots.get(&p).copied()
    }

    /// The profile point occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never allocated.
    pub fn point(&self, slot: u32) -> SourceObject {
        self.points[slot as usize]
    }

    /// Number of interned points (== the number of live slots).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no point has been interned.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The interned points in slot order (`points()[s]` occupies slot `s`).
    pub fn points(&self) -> &[SourceObject] {
        &self.points
    }

    /// Reconstructs a map from points already in slot order, as when loading
    /// a stored slot table: `points[i]` is assigned slot `i`.
    ///
    /// # Errors
    ///
    /// Returns the first duplicated point — a slot table must be a
    /// bijection, or cached slot ids would alias.
    pub fn from_points(
        points: impl IntoIterator<Item = SourceObject>,
    ) -> Result<SlotMap, SourceObject> {
        let mut m = SlotMap::new();
        for p in points {
            let before = m.len();
            m.resolve(p);
            if m.len() == before {
                return Err(p);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("s.scm", n, n + 1)
    }

    #[test]
    fn slots_are_dense_and_stable() {
        let mut m = SlotMap::new();
        assert_eq!(m.resolve(p(0)), 0);
        assert_eq!(m.resolve(p(1)), 1);
        assert_eq!(m.resolve(p(0)), 0, "re-resolution returns the same slot");
        assert_eq!(m.len(), 2);
        assert_eq!(m.point(0), p(0));
        assert_eq!(m.point(1), p(1));
        assert_eq!(m.get(p(2)), None);
    }

    #[test]
    fn points_in_slot_order() {
        let mut m = SlotMap::new();
        m.resolve(p(5));
        m.resolve(p(3));
        assert_eq!(m.points(), &[p(5), p(3)]);
    }

    #[test]
    fn from_points_round_trips() {
        let mut m = SlotMap::new();
        m.resolve(p(5));
        m.resolve(p(3));
        m.resolve(p(9));
        let back = SlotMap::from_points(m.points().iter().copied()).unwrap();
        assert_eq!(back.points(), m.points());
        assert_eq!(back.get(p(3)), Some(1));
    }

    #[test]
    fn from_points_rejects_duplicates() {
        assert!(matches!(SlotMap::from_points([p(0), p(1), p(0)]), Err(q) if q == p(0)));
    }
}
