//! Dense slot interning for profile points.
//!
//! The paper's Chez implementation is fast because a profile point compiles
//! down to *a plain counter increment*: the counter's address is burned into
//! the generated code, so the running program never hashes anything. A
//! [`SlotMap`] reproduces that: it interns each [`SourceObject`] to a stable
//! `u32` slot exactly once — at instrumentation (annotation/compile) time —
//! after which every bump is a bounds-checked vector index.
//!
//! Slots are allocated densely in first-resolution order and are **never
//! recycled** for the lifetime of the map: clearing counters does not clear
//! the slot assignment, so slot ids cached on AST nodes (or embedded in
//! bytecode) stay valid across profile resets and incremental
//! re-compilation.

use pgmp_syntax::SourceObject;
use std::collections::HashMap;

/// An interning table from profile points to dense `u32` slots.
///
/// # Example
///
/// ```
/// use pgmp_profiler::SlotMap;
/// use pgmp_syntax::SourceObject;
/// let mut m = SlotMap::new();
/// let p = SourceObject::new("x.scm", 0, 5);
/// let s = m.resolve(p);
/// assert_eq!(m.resolve(p), s, "resolution is stable");
/// assert_eq!(m.point(s), p);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlotMap {
    slots: HashMap<SourceObject, u32>,
    points: Vec<SourceObject>,
}

impl SlotMap {
    /// Creates an empty map.
    pub fn new() -> SlotMap {
        SlotMap::default()
    }

    /// Returns the slot for `p`, interning it if this is the first
    /// resolution. Slots are dense: the `n`-th distinct point gets slot
    /// `n - 1`.
    pub fn resolve(&mut self, p: SourceObject) -> u32 {
        let points = &mut self.points;
        *self.slots.entry(p).or_insert_with(|| {
            points.push(p);
            (points.len() - 1) as u32
        })
    }

    /// The slot previously assigned to `p`, if any (never interns).
    pub fn get(&self, p: SourceObject) -> Option<u32> {
        self.slots.get(&p).copied()
    }

    /// The profile point occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never allocated.
    pub fn point(&self, slot: u32) -> SourceObject {
        self.points[slot as usize]
    }

    /// Number of interned points (== the number of live slots).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no point has been interned.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The interned points in slot order (`points()[s]` occupies slot `s`).
    pub fn points(&self) -> &[SourceObject] {
        &self.points
    }

    /// Checks that this table and `other` agree on every slot both have
    /// assigned: one table must be a (possibly equal) prefix extension of
    /// the other. Compatible tables give the same dense slot the same
    /// profile point, so counters indexed under either table can be
    /// combined without aliasing; the §3.2 merge in `pgmp-profile merge`
    /// and the fleet daemon's handshake both gate on this.
    ///
    /// # Errors
    ///
    /// Returns the first disagreeing slot with the point each side
    /// assigned to it.
    pub fn check_compatible(&self, other: &SlotMap) -> Result<(), SlotTableMismatch> {
        let shared = self.points.len().min(other.points.len());
        for slot in 0..shared {
            if self.points[slot] != other.points[slot] {
                return Err(SlotTableMismatch {
                    slot: slot as u32,
                    left: self.points[slot],
                    right: other.points[slot],
                });
            }
        }
        Ok(())
    }

    /// Classifies `other` against this table for merging, the shared
    /// policy behind both `pgmp-profile merge` and the fleet daemon's
    /// handshake:
    ///
    /// - [`SlotCompat::Extends`] — the tables agree on every shared slot
    ///   ([`SlotMap::check_compatible`]), so slot ids are interchangeable
    ///   with no translation; `other` may simply extend this table.
    /// - [`SlotCompat::Rekey`] — the tables disagree on some shared slot
    ///   but share at least one *point*: the same program interned its
    ///   points in a different order (dense slots are assigned partly at
    ///   first execution, so skewed workloads reorder them). Counters
    ///   indexed under `other` must be translated point-by-point before
    ///   combining — the carried [`SlotTableMismatch`] says where the
    ///   orders first diverge.
    ///
    /// # Errors
    ///
    /// Tables that disagree *and* share no point at all describe
    /// different programs; combining their slot-indexed counters could
    /// only alias, so that is the typed refusal.
    pub fn check_mergeable(&self, other: &SlotMap) -> Result<SlotCompat, SlotTableMismatch> {
        match self.check_compatible(other) {
            Ok(()) => Ok(SlotCompat::Extends),
            Err(mismatch) => {
                if other.points.iter().any(|p| self.slots.contains_key(p)) {
                    Ok(SlotCompat::Rekey(mismatch))
                } else {
                    Err(mismatch)
                }
            }
        }
    }

    /// Reconstructs a map from points already in slot order, as when loading
    /// a stored slot table: `points[i]` is assigned slot `i`.
    ///
    /// # Errors
    ///
    /// Returns the first duplicated point — a slot table must be a
    /// bijection, or cached slot ids would alias.
    pub fn from_points(
        points: impl IntoIterator<Item = SourceObject>,
    ) -> Result<SlotMap, SourceObject> {
        let mut m = SlotMap::new();
        for p in points {
            let before = m.len();
            m.resolve(p);
            if m.len() == before {
                return Err(p);
            }
        }
        Ok(m)
    }
}

/// How a second slot table may be combined with a canonical one — the
/// successful outcomes of [`SlotMap::check_mergeable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotCompat {
    /// Every shared slot agrees: slot ids are interchangeable without
    /// translation and the longer table simply extends the shorter.
    Extends,
    /// Same points (at least in part), different interning order: counters
    /// must be re-keyed point-by-point. Carries the first disagreement,
    /// for diagnostics.
    Rekey(SlotTableMismatch),
}

/// Two slot tables assign different profile points to the same dense
/// slot — combining counters indexed under them would silently alias
/// unrelated points. See [`SlotMap::check_compatible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTableMismatch {
    /// The first slot the tables disagree on.
    pub slot: u32,
    /// The point the left-hand table assigns to `slot`.
    pub left: SourceObject,
    /// The point the right-hand table assigns to `slot`.
    pub right: SourceObject,
}

impl std::fmt::Display for SlotTableMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "incompatible slot tables: slot {} is `{}` on one side but `{}` on the other",
            self.slot, self.left, self.right
        )
    }
}

impl std::error::Error for SlotTableMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("s.scm", n, n + 1)
    }

    #[test]
    fn slots_are_dense_and_stable() {
        let mut m = SlotMap::new();
        assert_eq!(m.resolve(p(0)), 0);
        assert_eq!(m.resolve(p(1)), 1);
        assert_eq!(m.resolve(p(0)), 0, "re-resolution returns the same slot");
        assert_eq!(m.len(), 2);
        assert_eq!(m.point(0), p(0));
        assert_eq!(m.point(1), p(1));
        assert_eq!(m.get(p(2)), None);
    }

    #[test]
    fn points_in_slot_order() {
        let mut m = SlotMap::new();
        m.resolve(p(5));
        m.resolve(p(3));
        assert_eq!(m.points(), &[p(5), p(3)]);
    }

    #[test]
    fn from_points_round_trips() {
        let mut m = SlotMap::new();
        m.resolve(p(5));
        m.resolve(p(3));
        m.resolve(p(9));
        let back = SlotMap::from_points(m.points().iter().copied()).unwrap();
        assert_eq!(back.points(), m.points());
        assert_eq!(back.get(p(3)), Some(1));
    }

    #[test]
    fn from_points_rejects_duplicates() {
        assert!(matches!(SlotMap::from_points([p(0), p(1), p(0)]), Err(q) if q == p(0)));
    }

    #[test]
    fn prefix_tables_are_compatible_both_ways() {
        let long = SlotMap::from_points([p(0), p(1), p(2)]).unwrap();
        let short = SlotMap::from_points([p(0), p(1)]).unwrap();
        assert_eq!(long.check_compatible(&short), Ok(()));
        assert_eq!(short.check_compatible(&long), Ok(()));
        assert_eq!(long.check_compatible(&long), Ok(()));
        assert_eq!(SlotMap::new().check_compatible(&long), Ok(()));
    }

    #[test]
    fn disagreeing_slot_is_reported() {
        let a = SlotMap::from_points([p(0), p(1)]).unwrap();
        let b = SlotMap::from_points([p(0), p(9)]).unwrap();
        let err = a.check_compatible(&b).unwrap_err();
        assert_eq!(
            err,
            SlotTableMismatch {
                slot: 1,
                left: p(1),
                right: p(9),
            }
        );
        assert!(err.to_string().contains("slot 1"));
    }

    #[test]
    fn mergeable_distinguishes_extension_rekey_and_refusal() {
        let canon = SlotMap::from_points([p(0), p(1)]).unwrap();
        // Prefix extension: no translation needed.
        let longer = SlotMap::from_points([p(0), p(1), p(2)]).unwrap();
        assert_eq!(canon.check_mergeable(&longer), Ok(SlotCompat::Extends));
        // Same points, swapped order: re-key, carrying the divergence.
        let swapped = SlotMap::from_points([p(1), p(0)]).unwrap();
        match canon.check_mergeable(&swapped) {
            Ok(SlotCompat::Rekey(m)) => assert_eq!(m.slot, 0),
            other => panic!("expected rekey, got {other:?}"),
        }
        // No shared point at all: a different program, refused.
        let alien = SlotMap::from_points([p(7), p(8)]).unwrap();
        let err = canon.check_mergeable(&alien).unwrap_err();
        assert_eq!(err.slot, 0);
        // An empty canonical table accepts anything.
        assert_eq!(SlotMap::new().check_mergeable(&alien), Ok(SlotCompat::Extends));
    }
}
