//! Profile persistence: `store-profile` / `load-profile` (Figure 4).
//!
//! As in the Chez implementation (§4.1), what is stored is not raw counts
//! but the computed **profile weights**, so stored files from different runs
//! can be merged directly. The on-disk format is a single s-expression,
//! parsed back with the system's own reader:
//!
//! ```text
//! (pgmp-profile
//!   (version 1)
//!   (datasets 1)
//!   (point "classify.scm" 10 30 0.5)
//!   (point "classify.scm" 40 60 1.0))
//! ```

use crate::info::ProfileInformation;
use pgmp_reader::read_str;
use pgmp_syntax::{Datum, SourceObject, Syntax};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

/// Error loading or storing profile information.
#[derive(Debug)]
pub enum ProfileStoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file was not a well-formed profile s-expression.
    Malformed(String),
}

impl fmt::Display for ProfileStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileStoreError::Io(e) => write!(f, "profile file I/O error: {e}"),
            ProfileStoreError::Malformed(m) => write!(f, "malformed profile file: {m}"),
        }
    }
}

impl std::error::Error for ProfileStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileStoreError::Io(e) => Some(e),
            ProfileStoreError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ProfileStoreError {
    fn from(e: std::io::Error) -> ProfileStoreError {
        ProfileStoreError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProfileStoreError {
    ProfileStoreError::Malformed(msg.into())
}

impl ProfileInformation {
    /// Serializes to the textual profile format.
    ///
    /// Points are sorted so output is deterministic.
    pub fn store_to_string(&self) -> String {
        let mut points: Vec<(SourceObject, f64)> = self.iter().collect();
        points.sort_by_key(|a| a.0);
        let mut out = String::new();
        out.push_str("(pgmp-profile\n  (version 1)\n");
        let _ = writeln!(out, "  (datasets {})", self.dataset_count());
        for (p, w) in points {
            let _ = writeln!(
                out,
                "  (point {} {} {} {})",
                Datum::string(p.file.as_str()),
                p.bfp,
                p.efp,
                Datum::Float(w)
            );
        }
        out.push(')');
        out
    }

    /// Parses the textual profile format.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Malformed`] if the text is not a valid
    /// profile s-expression, including weights outside `[0,1]`.
    pub fn load_from_str(text: &str) -> Result<ProfileInformation, ProfileStoreError> {
        let forms = read_str(text, "<profile>")
            .map_err(|e| malformed(format!("unreadable: {e}")))?;
        let [form]: [Rc<Syntax>; 1] = forms
            .try_into()
            .map_err(|_| malformed("expected exactly one top-level form"))?;
        let elems = form
            .as_list()
            .ok_or_else(|| malformed("top-level form must be a list"))?;
        let mut iter = elems.iter();
        let head = iter
            .next()
            .and_then(|s| s.as_symbol())
            .ok_or_else(|| malformed("missing pgmp-profile header"))?;
        if head.as_str() != "pgmp-profile" {
            return Err(malformed(format!("unexpected header `{head}`")));
        }
        let mut dataset_count: usize = 1;
        let mut weights: Vec<(SourceObject, f64)> = Vec::new();
        for entry in iter {
            let fields = entry
                .as_list()
                .ok_or_else(|| malformed("profile entry must be a list"))?;
            let tag = fields
                .first()
                .and_then(|s| s.as_symbol())
                .ok_or_else(|| malformed("profile entry missing tag"))?;
            let args: Vec<Datum> = fields[1..].iter().map(|s| s.to_datum()).collect();
            match (tag.as_str(), args.as_slice()) {
                ("version", [Datum::Int(1)]) => {}
                ("version", [v]) => {
                    return Err(malformed(format!("unsupported version {v}")));
                }
                ("datasets", [Datum::Int(n)]) if *n >= 0 => dataset_count = *n as usize,
                ("point", [Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), w]) => {
                    let w = match w {
                        Datum::Float(x) => *x,
                        Datum::Int(n) => *n as f64,
                        other => {
                            return Err(malformed(format!("bad weight {other}")));
                        }
                    };
                    if !(0.0..=1.0).contains(&w) {
                        return Err(malformed(format!("weight {w} outside [0,1]")));
                    }
                    if bfp < &0 || efp < &0 {
                        return Err(malformed("negative file position"));
                    }
                    weights.push((SourceObject::new(file, *bfp as u32, *efp as u32), w));
                }
                (other, _) => {
                    return Err(malformed(format!("unknown or malformed entry `{other}`")));
                }
            }
        }
        Ok(ProfileInformation::from_weights(weights, dataset_count))
    }

    /// Writes the profile to the file at `path` (Figure 4's
    /// `store-profile`).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Io`] on filesystem failure.
    pub fn store_file(&self, path: impl AsRef<Path>) -> Result<(), ProfileStoreError> {
        std::fs::write(path, self.store_to_string())?;
        Ok(())
    }

    /// Reads profile information from the file at `path` (Figure 4's
    /// `load-profile`).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Io`] on filesystem failure and
    /// [`ProfileStoreError::Malformed`] if the contents do not parse.
    pub fn load_file(path: impl AsRef<Path>) -> Result<ProfileInformation, ProfileStoreError> {
        let text = std::fs::read_to_string(path)?;
        ProfileInformation::load_from_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Dataset;

    fn sample() -> ProfileInformation {
        let d: Dataset = [
            (SourceObject::new("a.scm", 0, 5), 5),
            (SourceObject::new("a.scm", 10, 20), 10),
            (SourceObject::new("b.scm%pgmp0", 3, 4), 1),
        ]
        .into_iter()
        .collect();
        ProfileInformation::from_dataset(&d)
    }

    #[test]
    fn round_trips_through_text() {
        let info = sample();
        let text = info.store_to_string();
        let back = ProfileInformation::load_from_str(&text).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn round_trips_through_file() {
        let dir = std::env::temp_dir().join("pgmp-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.pgmp");
        let info = sample();
        info.store_file(&path).unwrap();
        let back = ProfileInformation::load_file(&path).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(sample().store_to_string(), sample().store_to_string());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "(not-a-profile)",
            "(pgmp-profile (version 2))",
            "(pgmp-profile (point \"f\" 0 1 2.0))", // weight out of range
            "(pgmp-profile (point \"f\" 0 1 -0.5))",
            "(pgmp-profile (point \"f\" 0 1 \"x\"))",
            "(pgmp-profile (point 7 0 1 0.5))",
            "(pgmp-profile (mystery 1))",
            "(pgmp-profile (version 1)) (extra)",
            "(pgmp-profile (point \"f\" -1 1 0.5))",
        ] {
            assert!(
                ProfileInformation::load_from_str(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn integer_weights_accepted() {
        let info =
            ProfileInformation::load_from_str("(pgmp-profile (point \"f\" 0 1 1))").unwrap();
        assert_eq!(info.weight(SourceObject::new("f", 0, 1)), 1.0);
    }

    #[test]
    fn missing_file_is_io_error() {
        match ProfileInformation::load_file("/nonexistent/profile.pgmp") {
            Err(ProfileStoreError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn dataset_count_round_trips() {
        let merged = sample().merge(&sample());
        assert_eq!(merged.dataset_count(), 2);
        let back = ProfileInformation::load_from_str(&merged.store_to_string()).unwrap();
        assert_eq!(back.dataset_count(), 2);
    }
}
