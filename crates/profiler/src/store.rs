//! Profile persistence: `store-profile` / `load-profile` (Figure 4).
//!
//! As in the Chez implementation (§4.1), what is stored is not raw counts
//! but the computed **profile weights**, so stored files from different runs
//! can be merged directly. The on-disk format is a single s-expression,
//! parsed back with the system's own reader. Two format versions exist —
//! see `docs/PROFILE_FORMAT.md` at the repository root for the normative
//! spec, merge semantics (§3.2), and compatibility rules.
//!
//! **Version 1** (weights only):
//!
//! ```text
//! (pgmp-profile
//!   (version 1)
//!   (datasets 1)
//!   (point "classify.scm" 10 30 0.5)
//!   (point "classify.scm" 40 60 1.0))
//! ```
//!
//! **Version 2** adds the dense slot table (see [`crate::SlotMap`]): each
//! `(slot i file bfp efp [w])` entry binds slot `i` to a profile point, in
//! dense ascending order, with an optional recorded weight; `(point ...)`
//! entries carry weights for points outside the table:
//!
//! ```text
//! (pgmp-profile
//!   (version 2)
//!   (datasets 1)
//!   (slots 2)
//!   (slot 0 "classify.scm" 10 30 0.5)
//!   (slot 1 "classify.scm" 40 60 1.0))
//! ```
//!
//! Loading sniffs the version, so v1 files keep loading unchanged; writers
//! choose a version via [`StoredProfile`]. All store writes go through
//! [`write_atomic`] (temp file + fsync + rename), so a crash mid-write can
//! never leave a torn profile at the destination path.

use crate::info::ProfileInformation;
use crate::slots::SlotMap;
use pgmp_observe as observe;
use pgmp_reader::read_datums;
use pgmp_syntax::{Datum, SourceObject};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// The atomic-write discipline every store in the workspace uses.
///
/// Re-exported from `pgmp_observe` (the canonical home, so the trace sink
/// and the profile store share one implementation) under this historical
/// path, which predates the observe crate.
pub use pgmp_observe::write_atomic;

/// Error loading or storing profile information.
#[derive(Debug)]
pub enum ProfileStoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file was not a well-formed profile s-expression.
    Malformed(String),
    /// The file declares a format version this build does not understand.
    UnsupportedVersion(i64),
    /// The slot-table section is inconsistent (non-dense indices,
    /// duplicated points, count mismatch).
    SlotTable(String),
}

impl fmt::Display for ProfileStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileStoreError::Io(e) => write!(f, "profile file I/O error: {e}"),
            ProfileStoreError::Malformed(m) => write!(f, "malformed profile file: {m}"),
            ProfileStoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported profile format version {v} (expected 1 or 2)")
            }
            ProfileStoreError::SlotTable(m) => write!(f, "invalid slot table: {m}"),
        }
    }
}

impl std::error::Error for ProfileStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProfileStoreError {
    fn from(e: std::io::Error) -> ProfileStoreError {
        ProfileStoreError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProfileStoreError {
    ProfileStoreError::Malformed(msg.into())
}

/// The trace label for a profile of format `version`.
fn store_kind(version: u32) -> &'static str {
    if version >= 2 {
        "profile-v2"
    } else {
        "profile-v1"
    }
}

/// Atomically writes serialized profile `text` and emits a `store_write`
/// trace event (bytes + duration) when a recording is active.
fn write_traced(path: &Path, text: &str, version: u32) -> std::io::Result<()> {
    let t = observe::timer();
    write_atomic(path, text)?;
    observe::finish(t, |duration_us| observe::EventKind::StoreWrite {
        path: path.display().to_string(),
        kind: store_kind(version).to_string(),
        bytes: text.len() as u64,
        duration_us,
    });
    Ok(())
}

/// Reads and parses the profile at `path`, emitting a `store_read` trace
/// event (with the parsed version's kind) when a recording is active.
fn load_traced(path: &Path) -> Result<StoredProfile, ProfileStoreError> {
    let t = observe::timer();
    let text = std::fs::read_to_string(path)?;
    let sp = StoredProfile::load_from_str(&text)?;
    observe::finish(t, |duration_us| observe::EventKind::StoreRead {
        path: path.display().to_string(),
        kind: store_kind(sp.version).to_string(),
        bytes: text.len() as u64,
        duration_us,
    });
    Ok(sp)
}

/// How a stored profile's counts were collected — exact per-event
/// counters or statistical sampling estimates.
///
/// Recorded in format v2 as a `(provenance ...)` entry (omitted for
/// [`Provenance::Exact`], so files written by exact backends — and every
/// pre-provenance file — keep reading identically on older builds and
/// sniff as exact here). `pgmp-profile inspect` surfaces it and `merge`
/// warns when inputs mix provenances: §3.2 weighted averaging is still
/// well-defined on estimates, but the merged weights inherit the sampled
/// inputs' ε.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Provenance {
    /// Counts came from exact per-event counters (dense or hash).
    #[default]
    Exact,
    /// Counts are statistical estimates from the sampling backend ticking
    /// at `hz` (0 when the sampler was driven manually).
    Sampled { hz: u32 },
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Exact => write!(f, "exact"),
            Provenance::Sampled { hz } => write!(f, "sampled@{hz}hz"),
        }
    }
}

/// A profile file as stored on disk: weights plus (in format v2) the dense
/// slot table that lets a reloading process skip re-interning.
///
/// [`ProfileInformation::store_file`] / [`ProfileInformation::load_file`]
/// remain the weight-only v1 API; `StoredProfile` is the full-fidelity
/// handle used by engines and the `pgmp-profile` tool.
#[derive(Clone, Debug)]
pub struct StoredProfile {
    /// The profile weights (and dataset count) the file carries.
    pub info: ProfileInformation,
    /// The dense slot table, present iff the file is v2 with a table.
    pub slots: Option<SlotMap>,
    /// The format version the file declared (1 or 2).
    pub version: u32,
    /// How the counts behind the weights were collected (v2 metadata;
    /// defaults to exact when the file predates provenance).
    pub provenance: Provenance,
    /// Per-point match confidence from stale-profile rebasing (v2
    /// metadata; see [`crate::rebase()`] and `docs/REBASE.md`). A point
    /// absent from this map has confidence 1.0 — it was either recorded
    /// directly or rebased by an exact match — and the canonical writer
    /// leaves 1.0 implicit, so non-rebased files stay byte-identical to
    /// pre-confidence output. Stored weights are already decayed; the
    /// confidence entry records *why* a weight is lower than what was
    /// originally collected.
    pub confidence: HashMap<SourceObject, f64>,
}

impl StoredProfile {
    /// Wraps weights as a version-1 profile (no slot table).
    pub fn v1(info: ProfileInformation) -> StoredProfile {
        StoredProfile {
            info,
            slots: None,
            version: 1,
            provenance: Provenance::Exact,
            confidence: HashMap::new(),
        }
    }

    /// Wraps weights and a slot table as a version-2 profile.
    pub fn v2(info: ProfileInformation, slots: Option<SlotMap>) -> StoredProfile {
        StoredProfile {
            info,
            slots,
            version: 2,
            provenance: Provenance::Exact,
            confidence: HashMap::new(),
        }
    }

    /// Sets the recorded provenance (builder-style).
    pub fn with_provenance(mut self, provenance: Provenance) -> StoredProfile {
        self.provenance = provenance;
        self
    }

    /// Sets per-point rebase confidences (builder-style). Entries at
    /// exactly 1.0 are dropped — full confidence is the implicit default.
    pub fn with_confidences(
        mut self,
        confidence: impl IntoIterator<Item = (SourceObject, f64)>,
    ) -> StoredProfile {
        self.confidence = confidence.into_iter().filter(|(_, c)| *c < 1.0).collect();
        self
    }

    /// The rebase match confidence of point `p` (1.0 unless a rebase
    /// decayed it).
    pub fn confidence(&self, p: SourceObject) -> f64 {
        self.confidence.get(&p).copied().unwrap_or(1.0)
    }

    /// Serializes to the textual profile format of [`StoredProfile::version`].
    ///
    /// Output is deterministic: slot entries in slot order, loose points
    /// sorted. Storing at version 1 drops the slot table (the downgrade
    /// path of `pgmp-profile convert`).
    pub fn store_to_string(&self) -> String {
        if self.version == 1 {
            return self.info.store_to_string();
        }
        let mut out = String::new();
        out.push_str("(pgmp-profile\n  (version 2)\n");
        let _ = writeln!(out, "  (datasets {})", self.info.dataset_count());
        // Exact provenance is the default and is left implicit so that
        // files written by exact backends stay readable by pre-provenance
        // parsers (which reject unknown entries).
        if let Provenance::Sampled { hz } = self.provenance {
            let _ = writeln!(out, "  (provenance sampled {hz})");
        }
        let empty = SlotMap::new();
        let slots = self.slots.as_ref().unwrap_or(&empty);
        if !slots.is_empty() {
            let _ = writeln!(out, "  (slots {})", slots.len());
            for (i, p) in slots.points().iter().enumerate() {
                let _ = write!(
                    out,
                    "  (slot {} {} {} {}",
                    i,
                    Datum::string(p.file.as_str()),
                    p.bfp,
                    p.efp
                );
                match self.info.lookup(*p) {
                    Some(w) => {
                        let _ = write!(out, " {}", Datum::Float(w));
                        if let Some(c) = self.confidence.get(p).filter(|c| **c < 1.0) {
                            let _ = write!(out, " (confidence {})", Datum::Float(*c));
                        }
                        out.push_str(")\n");
                    }
                    None => out.push_str(")\n"),
                }
            }
        }
        let mut loose: Vec<(SourceObject, f64)> = self
            .info
            .iter()
            .filter(|(p, _)| slots.get(*p).is_none())
            .collect();
        loose.sort_by_key(|a| a.0);
        for (p, w) in loose {
            let _ = write!(
                out,
                "  (point {} {} {} {}",
                Datum::string(p.file.as_str()),
                p.bfp,
                p.efp,
                Datum::Float(w)
            );
            if let Some(c) = self.confidence.get(&p).filter(|c| **c < 1.0) {
                let _ = write!(out, " (confidence {})", Datum::Float(*c));
            }
            out.push_str(")\n");
        }
        out.push(')');
        out
    }

    /// Parses either format version, sniffing `(version n)`.
    ///
    /// # Errors
    ///
    /// [`ProfileStoreError::Malformed`] for unparseable text,
    /// [`ProfileStoreError::UnsupportedVersion`] for versions other than 1
    /// and 2, and [`ProfileStoreError::SlotTable`] for v2 files whose slot
    /// section is not a dense bijection. Never panics on hostile input.
    pub fn load_from_str(text: &str) -> Result<StoredProfile, ProfileStoreError> {
        // Profile files are machine-written: parse straight to datums
        // (`read_datums`) instead of building source-attributed syntax
        // objects nobody will query.
        let forms = read_datums(text, "<profile>")
            .map_err(|e| malformed(format!("unreadable: {e}")))?;
        let [form]: [Datum; 1] = forms
            .try_into()
            .map_err(|_| malformed("expected exactly one top-level form"))?;
        let elems = form
            .list_elems()
            .ok_or_else(|| malformed("top-level form must be a list"))?;
        let mut iter = elems.into_iter();
        let head = match iter.next() {
            Some(Datum::Sym(s)) => s,
            _ => return Err(malformed("missing pgmp-profile header")),
        };
        if head.as_str() != "pgmp-profile" {
            return Err(malformed(format!("unexpected header `{head}`")));
        }
        // First pass: flatten entries, resolve the declared version.
        let mut entries: Vec<(String, Vec<Datum>)> = Vec::new();
        let mut version: Option<i64> = None;
        for entry in iter {
            let mut fields = entry
                .list_elems()
                .ok_or_else(|| malformed("profile entry must be a list"))?;
            if fields.is_empty() {
                return Err(malformed("profile entry missing tag"));
            }
            let tag = match fields.remove(0) {
                Datum::Sym(s) => s,
                _ => return Err(malformed("profile entry missing tag")),
            };
            let args: Vec<Datum> = fields;
            if tag.as_str() == "version" {
                match args.as_slice() {
                    [Datum::Int(v)] => {
                        if version.replace(*v).is_some() {
                            return Err(malformed("duplicate version entry"));
                        }
                    }
                    _ => return Err(malformed("malformed version entry")),
                }
            } else {
                entries.push((tag.as_str().to_string(), args));
            }
        }
        let version = version.unwrap_or(1);
        if version != 1 && version != 2 {
            return Err(ProfileStoreError::UnsupportedVersion(version));
        }
        let mut dataset_count: usize = 1;
        let mut declared_slots: Option<usize> = None;
        let mut slot_points: Vec<SourceObject> = Vec::new();
        let mut weights: Vec<(SourceObject, f64)> = Vec::new();
        let mut provenance: Option<Provenance> = None;
        let mut confidence: HashMap<SourceObject, f64> = HashMap::new();
        for (tag, args) in &entries {
            match (tag.as_str(), args.as_slice()) {
                ("datasets", [Datum::Int(n)]) if *n >= 0 => dataset_count = *n as usize,
                ("provenance", args) if version == 2 => {
                    let p = match args {
                        [Datum::Sym(s)] if s.as_str() == "exact" => Provenance::Exact,
                        [Datum::Sym(s), Datum::Int(hz)]
                            if s.as_str() == "sampled"
                                && (0..=u32::MAX as i64).contains(hz) =>
                        {
                            Provenance::Sampled { hz: *hz as u32 }
                        }
                        _ => return Err(malformed("malformed provenance entry")),
                    };
                    if provenance.replace(p).is_some() {
                        return Err(malformed("duplicate provenance entry"));
                    }
                }
                ("point", [Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), w, rest @ ..])
                    if rest.len() <= usize::from(version == 2) =>
                {
                    let (p, w) = parse_point(file, *bfp, *efp, Some(w))?;
                    if let Some(c) = rest.first() {
                        confidence.insert(p, parse_confidence(c)?);
                    }
                    weights.push((p, w.expect("point weight is mandatory")));
                }
                ("slots", [Datum::Int(n)]) if version == 2 && *n >= 0 => {
                    if declared_slots.replace(*n as usize).is_some() {
                        return Err(ProfileStoreError::SlotTable(
                            "duplicate slots entry".into(),
                        ));
                    }
                }
                (
                    "slot",
                    [Datum::Int(i), Datum::Str(file), Datum::Int(bfp), Datum::Int(efp), rest @ ..],
                ) if version == 2 && rest.len() <= 2 => {
                    if *i != slot_points.len() as i64 {
                        return Err(ProfileStoreError::SlotTable(format!(
                            "slot index {i} out of order (expected {})",
                            slot_points.len()
                        )));
                    }
                    let (p, w) = parse_point(file, *bfp, *efp, rest.first())?;
                    slot_points.push(p);
                    if let Some(c) = rest.get(1) {
                        // A confidence sub-entry is only meaningful on a
                        // weighted row (enforced structurally: `rest[1]`
                        // exists only after a weight datum in `rest[0]`).
                        confidence.insert(p, parse_confidence(c)?);
                    }
                    if let Some(w) = w {
                        weights.push((p, w));
                    }
                }
                (other, _) => {
                    return Err(malformed(format!("unknown or malformed entry `{other}`")));
                }
            }
        }
        let slots = if slot_points.is_empty() && declared_slots.unwrap_or(0) == 0 {
            None
        } else {
            if let Some(n) = declared_slots {
                if n != slot_points.len() {
                    return Err(ProfileStoreError::SlotTable(format!(
                        "declared {n} slots but found {}",
                        slot_points.len()
                    )));
                }
            }
            let table = SlotMap::from_points(slot_points).map_err(|p| {
                ProfileStoreError::SlotTable(format!("duplicate point {p} in slot table"))
            })?;
            Some(table)
        };
        Ok(StoredProfile {
            info: ProfileInformation::from_weights(weights, dataset_count),
            slots,
            version: version as u32,
            provenance: provenance.unwrap_or_default(),
            confidence,
        })
    }

    /// Writes the profile to `path` atomically (see [`write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Io`] on filesystem failure.
    pub fn store_file(&self, path: impl AsRef<Path>) -> Result<(), ProfileStoreError> {
        write_traced(path.as_ref(), &self.store_to_string(), self.version)?;
        Ok(())
    }

    /// Reads a stored profile of either format version from `path`.
    ///
    /// # Errors
    ///
    /// As [`StoredProfile::load_from_str`], plus [`ProfileStoreError::Io`]
    /// on filesystem failure.
    pub fn load_file(path: impl AsRef<Path>) -> Result<StoredProfile, ProfileStoreError> {
        load_traced(path.as_ref())
    }
}

/// Validates a `(confidence c)` sub-entry: `c` must be a number in
/// `(0, 1]` — a zero-confidence point is a dead point and must simply be
/// absent, and values above 1 would let a rebase *amplify* weights.
fn parse_confidence(d: &Datum) -> Result<f64, ProfileStoreError> {
    let c = match d.list_elems().as_deref() {
        Some([Datum::Sym(tag), c]) if tag.as_str() == "confidence" => match c {
            Datum::Float(x) => *x,
            Datum::Int(n) => *n as f64,
            _ => return Err(malformed(format!("bad confidence {c}"))),
        },
        _ => return Err(malformed(format!("malformed confidence entry {d}"))),
    };
    if !(c > 0.0 && c <= 1.0) {
        return Err(malformed(format!("confidence {c} outside (0,1]")));
    }
    Ok(c)
}

/// Validates one profile point's fields; `w` is the optional weight datum.
fn parse_point(
    file: &str,
    bfp: i64,
    efp: i64,
    w: Option<&Datum>,
) -> Result<(SourceObject, Option<f64>), ProfileStoreError> {
    let w = match w {
        None => None,
        Some(Datum::Float(x)) => Some(*x),
        Some(Datum::Int(n)) => Some(*n as f64),
        Some(other) => return Err(malformed(format!("bad weight {other}"))),
    };
    if let Some(w) = w {
        if !(0.0..=1.0).contains(&w) {
            return Err(malformed(format!("weight {w} outside [0,1]")));
        }
    }
    if bfp < 0 || efp < 0 {
        return Err(malformed("negative file position"));
    }
    Ok((SourceObject::new(file, bfp as u32, efp as u32), w))
}

impl ProfileInformation {
    /// Serializes to the textual **version 1** profile format (weights
    /// only). Byte-identical to the output of every release since the
    /// format was introduced; use [`StoredProfile`] for v2.
    ///
    /// Points are sorted so output is deterministic.
    pub fn store_to_string(&self) -> String {
        let mut points: Vec<(SourceObject, f64)> = self.iter().collect();
        points.sort_by_key(|a| a.0);
        let mut out = String::new();
        out.push_str("(pgmp-profile\n  (version 1)\n");
        let _ = writeln!(out, "  (datasets {})", self.dataset_count());
        for (p, w) in points {
            let _ = writeln!(
                out,
                "  (point {} {} {} {})",
                Datum::string(p.file.as_str()),
                p.bfp,
                p.efp,
                Datum::Float(w)
            );
        }
        out.push(')');
        out
    }

    /// Parses the textual profile format, either version (the slot table of
    /// a v2 file is dropped; use [`StoredProfile::load_from_str`] to keep
    /// it).
    ///
    /// # Errors
    ///
    /// As [`StoredProfile::load_from_str`].
    pub fn load_from_str(text: &str) -> Result<ProfileInformation, ProfileStoreError> {
        Ok(StoredProfile::load_from_str(text)?.info)
    }

    /// Writes the profile to the file at `path` (Figure 4's
    /// `store-profile`), atomically (see [`write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Io`] on filesystem failure.
    pub fn store_file(&self, path: impl AsRef<Path>) -> Result<(), ProfileStoreError> {
        write_traced(path.as_ref(), &self.store_to_string(), 1)?;
        Ok(())
    }

    /// Reads profile information from the file at `path` (Figure 4's
    /// `load-profile`).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileStoreError::Io`] on filesystem failure and the
    /// parse errors of [`StoredProfile::load_from_str`] otherwise.
    pub fn load_file(path: impl AsRef<Path>) -> Result<ProfileInformation, ProfileStoreError> {
        Ok(load_traced(path.as_ref())?.info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Dataset;

    fn sample() -> ProfileInformation {
        let d: Dataset = [
            (SourceObject::new("a.scm", 0, 5), 5),
            (SourceObject::new("a.scm", 10, 20), 10),
            (SourceObject::new("b.scm%pgmp0", 3, 4), 1),
        ]
        .into_iter()
        .collect();
        ProfileInformation::from_dataset(&d)
    }

    fn sample_slots() -> SlotMap {
        let mut m = SlotMap::new();
        m.resolve(SourceObject::new("a.scm", 10, 20));
        m.resolve(SourceObject::new("a.scm", 0, 5));
        m.resolve(SourceObject::new("never-run.scm", 0, 1));
        m
    }

    #[test]
    fn round_trips_through_text() {
        let info = sample();
        let text = info.store_to_string();
        let back = ProfileInformation::load_from_str(&text).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn round_trips_through_file() {
        let dir = std::env::temp_dir().join("pgmp-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.pgmp");
        let info = sample();
        info.store_file(&path).unwrap();
        let back = ProfileInformation::load_file(&path).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(sample().store_to_string(), sample().store_to_string());
        let sp = StoredProfile::v2(sample(), Some(sample_slots()));
        assert_eq!(sp.store_to_string(), sp.store_to_string());
    }

    #[test]
    fn v2_round_trips_weights_and_slots() {
        let sp = StoredProfile::v2(sample(), Some(sample_slots()));
        let text = sp.store_to_string();
        let back = StoredProfile::load_from_str(&text).unwrap();
        assert_eq!(back.version, 2);
        assert_eq!(back.info, sp.info);
        let slots = back.slots.unwrap();
        assert_eq!(slots.points(), sample_slots().points());
    }

    #[test]
    fn v2_without_table_round_trips() {
        let sp = StoredProfile::v2(sample(), None);
        let back = StoredProfile::load_from_str(&sp.store_to_string()).unwrap();
        assert_eq!(back.version, 2);
        assert_eq!(back.info, sp.info);
        assert!(back.slots.is_none());
    }

    #[test]
    fn v1_files_load_as_version_1() {
        let back = StoredProfile::load_from_str(&sample().store_to_string()).unwrap();
        assert_eq!(back.version, 1);
        assert!(back.slots.is_none());
        assert_eq!(back.info, sample());
    }

    #[test]
    fn unexecuted_slot_entries_have_no_weight() {
        // `never-run.scm` is interned but has no weight: round-tripping must
        // not invent a 0-weight entry for it.
        let sp = StoredProfile::v2(sample(), Some(sample_slots()));
        let back = StoredProfile::load_from_str(&sp.store_to_string()).unwrap();
        assert_eq!(
            back.info.lookup(SourceObject::new("never-run.scm", 0, 1)),
            None
        );
        assert_eq!(back.info.len(), sample().len());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "(not-a-profile)",
            "(pgmp-profile (point \"f\" 0 1 2.0))", // weight out of range
            "(pgmp-profile (point \"f\" 0 1 -0.5))",
            "(pgmp-profile (point \"f\" 0 1 \"x\"))",
            "(pgmp-profile (point 7 0 1 0.5))",
            "(pgmp-profile (mystery 1))",
            "(pgmp-profile (version 1)) (extra)",
            "(pgmp-profile (point \"f\" -1 1 0.5))",
            "(pgmp-profile (version 1) (version 1))",
            "(pgmp-profile (version \"2\"))",
            // v2-only entries are not valid in a v1 file.
            "(pgmp-profile (version 1) (slot 0 \"f\" 0 1 0.5))",
            "(pgmp-profile (version 1) (slots 1))",
            "(pgmp-profile (version 1) (provenance exact))",
            // Malformed provenance entries.
            "(pgmp-profile (version 2) (provenance))",
            "(pgmp-profile (version 2) (provenance mystery))",
            "(pgmp-profile (version 2) (provenance sampled))",
            "(pgmp-profile (version 2) (provenance sampled -1))",
            "(pgmp-profile (version 2) (provenance sampled 1.5))",
            "(pgmp-profile (version 2) (provenance exact) (provenance exact))",
        ] {
            assert!(
                ProfileInformation::load_from_str(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        for (text, want) in [
            ("(pgmp-profile (version 3))", 3i64),
            ("(pgmp-profile (version 0))", 0),
            ("(pgmp-profile (version -1))", -1),
        ] {
            match ProfileInformation::load_from_str(text) {
                Err(ProfileStoreError::UnsupportedVersion(v)) => assert_eq!(v, want),
                other => panic!("expected UnsupportedVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn slot_table_errors_are_typed() {
        for bad in [
            // Out-of-order / non-dense indices.
            "(pgmp-profile (version 2) (slot 1 \"f\" 0 1))",
            "(pgmp-profile (version 2) (slot 0 \"f\" 0 1) (slot 2 \"g\" 0 1))",
            // Count mismatch.
            "(pgmp-profile (version 2) (slots 2) (slot 0 \"f\" 0 1))",
            "(pgmp-profile (version 2) (slots 0) (slot 0 \"f\" 0 1))",
            // Duplicate point.
            "(pgmp-profile (version 2) (slot 0 \"f\" 0 1) (slot 1 \"f\" 0 1))",
            // Duplicate slots declaration.
            "(pgmp-profile (version 2) (slots 1) (slots 1) (slot 0 \"f\" 0 1))",
        ] {
            match StoredProfile::load_from_str(bad) {
                Err(ProfileStoreError::SlotTable(_)) => {}
                other => panic!("expected SlotTable error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn provenance_round_trips_and_defaults_to_exact() {
        // Files written before provenance existed (and files written by
        // exact backends, which leave it implicit) sniff as exact.
        let exact = StoredProfile::v2(sample(), Some(sample_slots()));
        let text = exact.store_to_string();
        assert!(!text.contains("provenance"), "exact stays implicit");
        let back = StoredProfile::load_from_str(&text).unwrap();
        assert_eq!(back.provenance, Provenance::Exact);
        let v1 = StoredProfile::load_from_str(&sample().store_to_string()).unwrap();
        assert_eq!(v1.provenance, Provenance::Exact);

        let sampled = StoredProfile::v2(sample(), Some(sample_slots()))
            .with_provenance(Provenance::Sampled { hz: 997 });
        let text = sampled.store_to_string();
        assert!(text.contains("(provenance sampled 997)"));
        let back = StoredProfile::load_from_str(&text).unwrap();
        assert_eq!(back.provenance, Provenance::Sampled { hz: 997 });
        assert_eq!(back.provenance.to_string(), "sampled@997hz");
        assert_eq!(back.info, sampled.info);

        // An explicit exact entry is also accepted.
        let explicit =
            StoredProfile::load_from_str("(pgmp-profile (version 2) (provenance exact))").unwrap();
        assert_eq!(explicit.provenance, Provenance::Exact);
    }

    #[test]
    fn confidence_round_trips_and_defaults_to_full() {
        let decayed = SourceObject::new("a.scm", 0, 5);
        let sp = StoredProfile::v2(sample(), Some(sample_slots()))
            .with_confidences([(decayed, 0.75), (SourceObject::new("a.scm", 10, 20), 1.0)]);
        // 1.0 entries are dropped at construction: full confidence is
        // implicit, keeping non-rebased files byte-identical.
        assert_eq!(sp.confidence.len(), 1);
        let text = sp.store_to_string();
        assert!(text.contains("(confidence 0.75)"), "{text}");
        let back = StoredProfile::load_from_str(&text).unwrap();
        assert_eq!(back.confidence(decayed), 0.75);
        assert_eq!(back.confidence(SourceObject::new("a.scm", 10, 20)), 1.0);
        assert_eq!(back.info, sp.info);
        // And a confidence on a loose (non-slot) point round-trips too.
        let loose = SourceObject::new("b.scm%pgmp0", 3, 4);
        let sp = StoredProfile::v2(sample(), None).with_confidences([(loose, 0.5)]);
        let back = StoredProfile::load_from_str(&sp.store_to_string()).unwrap();
        assert_eq!(back.confidence(loose), 0.5);
    }

    #[test]
    fn files_without_confidence_stay_byte_identical() {
        // The confidence extension must not change the output of profiles
        // that never went through a rebase.
        let sp = StoredProfile::v2(sample(), Some(sample_slots()));
        let text = sp.store_to_string();
        assert!(!text.contains("confidence"));
        let rebased_free = StoredProfile::v2(sample(), Some(sample_slots()))
            .with_confidences(std::iter::empty());
        assert_eq!(rebased_free.store_to_string(), text);
    }

    #[test]
    fn malformed_confidence_entries_are_rejected() {
        for bad in [
            // Confidence is v2-only.
            "(pgmp-profile (version 1) (point \"f\" 0 1 0.5 (confidence 0.5)))",
            // Out of range: dead points must be absent, >1 would amplify.
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence 0.0)))",
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence -0.5)))",
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence 1.5)))",
            // Wrong shape.
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence)))",
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence \"x\")))",
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 0.9))",
            // A slot row needs a weight before a confidence.
            "(pgmp-profile (version 2) (slot 0 \"f\" 0 1 (confidence 0.5)))",
        ] {
            assert!(
                StoredProfile::load_from_str(bad).is_err(),
                "should reject {bad:?}"
            );
        }
        // Integer confidence 1 is within (0,1] and accepted.
        let ok = StoredProfile::load_from_str(
            "(pgmp-profile (version 2) (point \"f\" 0 1 0.5 (confidence 1)))",
        )
        .unwrap();
        assert_eq!(ok.confidence(SourceObject::new("f", 0, 1)), 1.0);
    }

    #[test]
    fn empty_v2_is_valid() {
        let back = StoredProfile::load_from_str("(pgmp-profile (version 2))").unwrap();
        assert_eq!(back.version, 2);
        assert!(back.slots.is_none());
        assert_eq!(back.info.len(), 0);
    }

    #[test]
    fn integer_weights_accepted() {
        let info =
            ProfileInformation::load_from_str("(pgmp-profile (point \"f\" 0 1 1))").unwrap();
        assert_eq!(info.weight(SourceObject::new("f", 0, 1)), 1.0);
        let sp = StoredProfile::load_from_str(
            "(pgmp-profile (version 2) (slot 0 \"f\" 0 1 1))",
        )
        .unwrap();
        assert_eq!(sp.info.weight(SourceObject::new("f", 0, 1)), 1.0);
    }

    #[test]
    fn missing_file_is_io_error() {
        match ProfileInformation::load_file("/nonexistent/profile.pgmp") {
            Err(ProfileStoreError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn dataset_count_round_trips() {
        let merged = sample().merge(&sample());
        assert_eq!(merged.dataset_count(), 2);
        let back = ProfileInformation::load_from_str(&merged.store_to_string()).unwrap();
        assert_eq!(back.dataset_count(), 2);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join("pgmp-store-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.pgmp");
        std::fs::write(&path, "a much longer pre-existing file body").unwrap();
        write_atomic(&path, "short").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "short");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
    }

    #[test]
    fn atomic_write_to_unwritable_dir_fails_cleanly() {
        let err = write_atomic("/nonexistent-dir/out.pgmp", "x");
        assert!(err.is_err());
    }
}
