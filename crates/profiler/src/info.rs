//! Profile weights and dataset merging (§3.2 of the paper).

use crate::counters::Dataset;
use pgmp_syntax::SourceObject;
use std::collections::HashMap;

/// Profile weights: the abstraction meta-programs actually query.
///
/// A profile weight is "a number in the range \[0,1\] … the ratio of the
/// counter for that profile point to the counter of the most executed
/// profile point in the same data set" (§3.2). `ProfileInformation` holds
/// the weights derived from `dataset_count` datasets; merging two
/// `ProfileInformation`s averages weights, weighted by how many datasets
/// each side summarizes, so merging is associative over runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileInformation {
    weights: HashMap<SourceObject, f64>,
    dataset_count: usize,
}

impl ProfileInformation {
    /// Profile information with no datasets: every query returns 0.
    pub fn empty() -> ProfileInformation {
        ProfileInformation::default()
    }

    /// Computes weights from a single dataset.
    ///
    /// Every recorded point's weight is `count / max_count`. An empty
    /// dataset still counts as one dataset of all-zero weights.
    pub fn from_dataset(d: &Dataset) -> ProfileInformation {
        let max = d.max_count();
        let weights = if max == 0 {
            d.iter().map(|(p, _)| (p, 0.0)).collect()
        } else {
            d.iter().map(|(p, c)| (p, c as f64 / max as f64)).collect()
        };
        ProfileInformation {
            weights,
            dataset_count: 1,
        }
    }

    /// Computes merged weights from several datasets (unweighted average of
    /// the per-dataset weights, per Figure 3).
    pub fn from_datasets(datasets: &[Dataset]) -> ProfileInformation {
        datasets
            .iter()
            .map(ProfileInformation::from_dataset)
            .fold(ProfileInformation::empty(), |acc, w| acc.merge(&w))
    }

    /// Constructs profile information directly from weights, as when loading
    /// a stored profile file.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any weight is outside `[0,1]`.
    pub fn from_weights(
        weights: impl IntoIterator<Item = (SourceObject, f64)>,
        dataset_count: usize,
    ) -> ProfileInformation {
        let weights: HashMap<SourceObject, f64> = weights.into_iter().collect();
        debug_assert!(weights.values().all(|w| (0.0..=1.0).contains(w)));
        ProfileInformation {
            weights,
            dataset_count,
        }
    }

    /// The weight of profile point `p`, or `0.0` when `p` was never
    /// profiled — an unknown expression is treated as never executed, which
    /// is what lets meta-programs run unchanged before any profile exists.
    pub fn weight(&self, p: SourceObject) -> f64 {
        self.weights.get(&p).copied().unwrap_or(0.0)
    }

    /// The weight of `p`, or `None` when `p` has no recorded weight.
    pub fn lookup(&self, p: SourceObject) -> Option<f64> {
        self.weights.get(&p).copied()
    }

    /// True iff no dataset has been incorporated.
    pub fn is_empty(&self) -> bool {
        self.dataset_count == 0
    }

    /// How many datasets these weights summarize.
    pub fn dataset_count(&self) -> usize {
        self.dataset_count
    }

    /// Number of profile points with recorded weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Iterates over `(point, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SourceObject, f64)> + '_ {
        self.weights.iter().map(|(p, w)| (*p, *w))
    }

    /// Merges two summaries by averaging weights, weighted by each side's
    /// dataset count. Points missing on one side contribute weight 0 for
    /// that side's datasets (they were never executed there).
    ///
    /// This reproduces Figure 3: merging `{imp: 0.5, spam: 1.0}` with
    /// `{imp: 1.0, spam: 0.1}` gives `{imp: 0.75, spam: 0.55}`.
    pub fn merge(&self, other: &ProfileInformation) -> ProfileInformation {
        if self.dataset_count == 0 {
            return other.clone();
        }
        if other.dataset_count == 0 {
            return self.clone();
        }
        let n1 = self.dataset_count as f64;
        let n2 = other.dataset_count as f64;
        let total = n1 + n2;
        let mut weights = HashMap::new();
        for (p, w) in self.weights.iter() {
            let w2 = other.weights.get(p).copied().unwrap_or(0.0);
            weights.insert(*p, (w * n1 + w2 * n2) / total);
        }
        for (p, w2) in other.weights.iter() {
            weights
                .entry(*p)
                .or_insert_with(|| (w2 * n2) / total);
        }
        ProfileInformation {
            weights,
            dataset_count: self.dataset_count + other.dataset_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> SourceObject {
        SourceObject::new("t.scm", n, n + 1)
    }

    #[test]
    fn weights_are_normalized_by_max() {
        let d: Dataset = [(p(0), 5), (p(1), 10), (p(2), 0)].into_iter().collect();
        let w = ProfileInformation::from_dataset(&d);
        assert_eq!(w.weight(p(0)), 0.5);
        assert_eq!(w.weight(p(1)), 1.0);
        assert_eq!(w.weight(p(2)), 0.0);
    }

    #[test]
    fn unknown_points_weigh_zero() {
        let w = ProfileInformation::empty();
        assert_eq!(w.weight(p(9)), 0.0);
        assert_eq!(w.lookup(p(9)), None);
        assert!(w.is_empty());
    }

    #[test]
    fn figure3_merge() {
        // Data set 1: important 5, spam 10. Data set 2: important 100, spam 10.
        let d1: Dataset = [(p(0), 5), (p(1), 10)].into_iter().collect();
        let d2: Dataset = [(p(0), 100), (p(1), 10)].into_iter().collect();
        let merged = ProfileInformation::from_datasets(&[d1, d2]);
        assert_eq!(merged.weight(p(0)), (0.5 + 1.0) / 2.0);
        assert_eq!(merged.weight(p(1)), (1.0 + 0.1) / 2.0);
        assert_eq!(merged.dataset_count(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let d: Dataset = [(p(0), 2), (p(1), 4)].into_iter().collect();
        let w = ProfileInformation::from_dataset(&d);
        assert_eq!(w.merge(&ProfileInformation::empty()), w);
        assert_eq!(ProfileInformation::empty().merge(&w), w);
    }

    #[test]
    fn merge_is_weighted_by_dataset_count() {
        // Three datasets on one side, one on the other.
        let mk = |c0: u64, c1: u64| -> Dataset { [(p(0), c0), (p(1), c1)].into_iter().collect() };
        let left = ProfileInformation::from_datasets(&[mk(1, 1), mk(1, 1), mk(1, 1)]);
        let right = ProfileInformation::from_dataset(&mk(0, 1));
        let merged = left.merge(&right);
        // p0: (1*3 + 0*1)/4; p1: (1*3 + 1*1)/4.
        assert_eq!(merged.weight(p(0)), 0.75);
        assert_eq!(merged.weight(p(1)), 1.0);
    }

    #[test]
    fn merge_handles_disjoint_points() {
        let d1: Dataset = [(p(0), 4)].into_iter().collect();
        let d2: Dataset = [(p(1), 8)].into_iter().collect();
        let merged = ProfileInformation::from_dataset(&d1)
            .merge(&ProfileInformation::from_dataset(&d2));
        assert_eq!(merged.weight(p(0)), 0.5);
        assert_eq!(merged.weight(p(1)), 0.5);
    }

    #[test]
    fn all_zero_dataset_gives_zero_weights() {
        let d: Dataset = [(p(0), 0)].into_iter().collect();
        let w = ProfileInformation::from_dataset(&d);
        assert_eq!(w.weight(p(0)), 0.0);
        assert_eq!(w.dataset_count(), 1);
    }

    #[test]
    fn merge_keeps_weights_in_unit_interval() {
        let d1: Dataset = [(p(0), 1), (p(1), 1000)].into_iter().collect();
        let d2: Dataset = [(p(0), 1000), (p(1), 1)].into_iter().collect();
        let merged =
            ProfileInformation::from_dataset(&d1).merge(&ProfileInformation::from_dataset(&d2));
        for (_, w) in merged.iter() {
            assert!((0.0..=1.0).contains(&w));
        }
    }
}
