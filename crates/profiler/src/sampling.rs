//! Statistical sampling support for [`crate::Counters`] and the VM's
//! block counters: a *current-position beacon* plus a sampler that turns
//! periodic reads of it into estimated hit counts.
//!
//! Exact counters pay one counter update per profiled event; always-on
//! production profiling cannot afford that (E7: 1.45× interp overhead
//! even dense). The sampling backend inverts the cost model the way the
//! systems-PGO world did (AutoFDO lineage): the *mutator* only publishes
//! where it is — one relaxed atomic store per profile-point entry — and a
//! decoupled sampler thread ticking at `hz` reads the beacon and
//! accumulates tallies into an [`AtomicSlotArray`]. Estimated counts live
//! in the same slot space as exact ones, so weight normalization (§3 of
//! the paper: weights are `count / max_count`, exactness never required),
//! §3.2 merging, deltas, and the v2 store all work unchanged.
//!
//! # Beacon encoding
//!
//! The beacon is a single `AtomicU64`:
//!
//! - `0` — *idle*: no profiled code is running (run exited, or a blocking
//!   native parked the beacon). Ticks that land here count as `missed`
//!   and attribute nothing.
//! - otherwise — `(identity << 32) | (slot + 1)`: the low half is the
//!   dense slot currently executing, biased by one so slot 0 is
//!   distinguishable from idle; the high half carries the publisher's
//!   identity (the interpreter's `map_id`, the VM's chunk id) for
//!   debuggability. The sampler only consumes the low half — the shared
//!   state is private to one registry, so identity mismatches cannot
//!   occur by construction.
//!
//! All beacon accesses are `Relaxed`: a torn or stale read costs at most
//! one misattributed sample, which the estimator model absorbs (see
//! DESIGN.md §4h).

use pgmp_observe::{emit, metrics, EventKind};
use pgmp_rt::AtomicSlotArray;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampler rate for `--counter-impl sampling`. Prime, so periodic
/// workloads do not resonate with the tick train.
pub const DEFAULT_SAMPLE_HZ: u32 = 997;

/// State shared between one profiled registry (the publisher) and its
/// sampler (the consumer). `Send + Sync`; the registry handle itself
/// stays single-threaded.
#[derive(Debug, Default)]
pub struct SamplingShared {
    /// Current-position beacon (see module docs for the encoding).
    beacon: AtomicU64,
    /// Estimated per-slot hit tallies, one sample = one hit.
    tallies: AtomicSlotArray,
    /// Total sampler ticks taken.
    ticks: AtomicU64,
    /// Ticks that found a published position and tallied it.
    hits: AtomicU64,
    /// Ticks that found the beacon idle (beacon = 0).
    missed: AtomicU64,
    /// Tells the sampler thread to exit.
    stop: AtomicBool,
}

impl SamplingShared {
    /// Fresh shared state: idle beacon, empty tallies.
    pub fn new() -> SamplingShared {
        SamplingShared::default()
    }

    /// Publishes the current position: one relaxed store, the entire
    /// per-event cost of the sampling backend.
    #[inline]
    pub fn publish(&self, identity: u32, slot: u32) {
        self.beacon
            .store(((identity as u64) << 32) | (slot as u64 + 1), Ordering::Relaxed);
    }

    /// Clears the published position so samples taken while the publisher
    /// is idle (run exited, blocking native, slow-path wait) attribute
    /// nothing instead of inflating the last-seen point.
    #[inline]
    pub fn park(&self) {
        self.beacon.store(0, Ordering::Relaxed);
    }

    /// Takes one sample: reads the beacon and tallies the published slot,
    /// if any. This is the sampler thread's tick body, exposed so tests
    /// and benchmarks can drive sampling deterministically (no thread, no
    /// wall clock).
    pub fn sample_now(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let word = self.beacon.load(Ordering::Relaxed);
        let biased = word & 0xFFFF_FFFF;
        if biased == 0 {
            self.missed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.tallies.add((biased - 1) as u32, 1);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The estimated tallies (sample counts per slot).
    pub fn tallies(&self) -> &AtomicSlotArray {
        &self.tallies
    }

    /// `(ticks, hits, missed)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.ticks.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.missed.load(Ordering::Relaxed),
        )
    }

    /// Publishes sampler totals into the metrics registry
    /// (`profiler.sample_ticks` / `sample_hits` / `sample_missed`).
    /// Called at boundaries only — run exit, sampler shutdown — never on
    /// the tick path.
    pub fn publish_metrics(&self) {
        let (ticks, hits, missed) = self.stats();
        let m = metrics();
        m.gauge_set("profiler.sample_ticks", ticks as f64);
        m.gauge_set("profiler.sample_hits", hits as f64);
        m.gauge_set("profiler.sample_missed", missed as f64);
    }
}

/// A wall-clock sampler thread ticking a [`SamplingShared`] at a fixed
/// rate. Stops (and joins) on drop, publishing final metrics and one
/// summary [`EventKind::SamplerTick`] event — the tick path itself never
/// touches the event bus or the metrics registry.
#[derive(Debug)]
pub struct Sampler {
    shared: Arc<SamplingShared>,
    hz: u32,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampler thread at `hz` ticks per second (clamped to at
    /// least 1).
    pub fn spawn(shared: Arc<SamplingShared>, hz: u32) -> Sampler {
        let hz = hz.max(1);
        let period = Duration::from_nanos(1_000_000_000 / hz as u64);
        let worker = shared.clone();
        let handle = std::thread::Builder::new()
            .name("pgmp-sampler".into())
            .spawn(move || {
                while !worker.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    worker.sample_now();
                }
            })
            .expect("failed to spawn pgmp-sampler thread");
        Sampler {
            shared,
            hz,
            handle: Some(handle),
        }
    }

    /// The configured tick rate.
    pub fn hz(&self) -> u32 {
        self.hz
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.shared.publish_metrics();
        let (ticks, hits, missed) = self.shared.stats();
        emit(EventKind::SamplerTick {
            hz: self.hz,
            ticks,
            hits,
            missed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_beacon_counts_as_missed() {
        let s = SamplingShared::new();
        s.sample_now();
        assert_eq!(s.stats(), (1, 0, 1));
        assert_eq!(s.tallies().get(0), 0);
    }

    #[test]
    fn published_slot_zero_is_distinguishable_from_idle() {
        let s = SamplingShared::new();
        s.publish(7, 0);
        s.sample_now();
        assert_eq!(s.stats(), (1, 1, 0));
        assert_eq!(s.tallies().get(0), 1);
    }

    #[test]
    fn park_clears_the_position() {
        let s = SamplingShared::new();
        s.publish(7, 3);
        s.sample_now();
        s.park();
        s.sample_now();
        assert_eq!(s.stats(), (2, 1, 1));
        assert_eq!(s.tallies().get(3), 1);
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let shared = Arc::new(SamplingShared::new());
        shared.publish(1, 5);
        let sampler = Sampler::spawn(shared.clone(), 10_000);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while shared.stats().0 == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let (ticks, hits, _) = shared.stats();
        assert!(ticks > 0, "sampler never ticked");
        assert_eq!(hits, ticks, "every tick saw the published beacon");
        assert_eq!(shared.tallies().get(5), hits);
    }
}
