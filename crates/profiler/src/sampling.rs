//! Statistical sampling support for [`crate::Counters`] and the VM's
//! block counters: a *current-position beacon* plus a sampler that turns
//! periodic reads of it into estimated hit counts.
//!
//! Exact counters pay one counter update per profiled event; always-on
//! production profiling cannot afford that (E7: 1.45× interp overhead
//! even dense). The sampling backend inverts the cost model the way the
//! systems-PGO world did (AutoFDO lineage): the *mutator* only publishes
//! where it is — one relaxed atomic store per profile-point entry — and a
//! decoupled sampler thread ticking at `hz` reads the beacon and
//! accumulates tallies into an [`AtomicSlotArray`]. Estimated counts live
//! in the same slot space as exact ones, so weight normalization (§3 of
//! the paper: weights are `count / max_count`, exactness never required),
//! §3.2 merging, deltas, and the v2 store all work unchanged.
//!
//! # Beacon encoding
//!
//! The beacon is a single `AtomicU64`:
//!
//! - `0` — *idle*: no profiled code is running (run exited, or a blocking
//!   native parked the beacon). Ticks that land here count as `missed`
//!   and attribute nothing.
//! - otherwise — `(identity << 32) | (slot + 1)`: the low half is the
//!   dense slot currently executing, biased by one so slot 0 is
//!   distinguishable from idle; the high half carries the publisher's
//!   identity (the interpreter's `map_id`, the VM's chunk id) for
//!   debuggability. The sampler only consumes the low half — the shared
//!   state is private to one registry, so identity mismatches cannot
//!   occur by construction.
//!
//! All beacon accesses are `Relaxed`: a torn or stale read costs at most
//! one misattributed sample, which the estimator model absorbs (see
//! DESIGN.md §4h).

use pgmp_observe::{emit, metrics, EventKind};
use pgmp_rt::AtomicSlotArray;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampler rate for `--counter-impl sampling`. Prime, so periodic
/// workloads do not resonate with the tick train.
pub const DEFAULT_SAMPLE_HZ: u32 = 997;

/// Consecutive idle ticks (beacon = 0) before the sampler halves its
/// rate. At the default 997 Hz the first backoff lands after ~64 ms of
/// idleness — long enough that GC pauses and slow-path waits inside an
/// active run never trigger it.
const IDLE_BACKOFF_TICKS: u64 = 64;

/// Maximum number of rate halvings: the period never exceeds 32× the
/// configured one, so an idle fleet member still ticks (and can notice
/// resumed activity) within ~32 ms at the default rate.
const MAX_BACKOFF_SHIFT: u32 = 5;

/// State shared between one profiled registry (the publisher) and its
/// sampler (the consumer). `Send + Sync`; the registry handle itself
/// stays single-threaded.
#[derive(Debug, Default)]
pub struct SamplingShared {
    /// Current-position beacon (see module docs for the encoding).
    beacon: AtomicU64,
    /// Estimated per-slot hit tallies, one sample = one hit.
    tallies: AtomicSlotArray,
    /// Total sampler ticks taken.
    ticks: AtomicU64,
    /// Ticks that found a published position and tallied it.
    hits: AtomicU64,
    /// Ticks that found the beacon idle (beacon = 0).
    missed: AtomicU64,
    /// Tells the sampler thread to exit.
    stop: AtomicBool,
}

impl SamplingShared {
    /// Fresh shared state: idle beacon, empty tallies.
    pub fn new() -> SamplingShared {
        SamplingShared::default()
    }

    /// Publishes the current position: one relaxed store, the entire
    /// per-event cost of the sampling backend.
    #[inline]
    pub fn publish(&self, identity: u32, slot: u32) {
        self.beacon
            .store(((identity as u64) << 32) | (slot as u64 + 1), Ordering::Relaxed);
    }

    /// Clears the published position so samples taken while the publisher
    /// is idle (run exited, blocking native, slow-path wait) attribute
    /// nothing instead of inflating the last-seen point.
    #[inline]
    pub fn park(&self) {
        self.beacon.store(0, Ordering::Relaxed);
    }

    /// Takes one sample: reads the beacon and tallies the published slot,
    /// if any. This is the sampler thread's tick body, exposed so tests
    /// and benchmarks can drive sampling deterministically (no thread, no
    /// wall clock). Returns whether the tick found a published position —
    /// the auto-rate policy's input signal.
    pub fn sample_now(&self) -> bool {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let word = self.beacon.load(Ordering::Relaxed);
        let biased = word & 0xFFFF_FFFF;
        if biased == 0 {
            self.missed.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            self.tallies.add((biased - 1) as u32, 1);
            self.hits.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// The estimated tallies (sample counts per slot).
    pub fn tallies(&self) -> &AtomicSlotArray {
        &self.tallies
    }

    /// `(ticks, hits, missed)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.ticks.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.missed.load(Ordering::Relaxed),
        )
    }

    /// Publishes sampler totals into the metrics registry
    /// (`profiler.sample_ticks` / `sample_hits` / `sample_missed`).
    /// Called at boundaries only — run exit, sampler shutdown — never on
    /// the tick path.
    pub fn publish_metrics(&self) {
        let (ticks, hits, missed) = self.stats();
        let m = metrics();
        m.gauge_set("profiler.sample_ticks", ticks as f64);
        m.gauge_set("profiler.sample_hits", hits as f64);
        m.gauge_set("profiler.sample_missed", missed as f64);
    }
}

/// The sampler's auto-rate policy: a deterministic state machine fed one
/// tick outcome at a time, kept separate from the thread so tests can
/// drive it without a wall clock.
///
/// The rules:
///
/// - [`IDLE_BACKOFF_TICKS`] *consecutive* idle ticks halve the rate
///   (double the period), down to `base_hz >> MAX_BACKOFF_SHIFT`.
/// - Any hit re-arms the full configured rate immediately — the very
///   next tick is already at `base_hz`, so resumed activity pays at most
///   one backed-off period (~32 ms at the default rate) of coarse
///   sampling, not a slow climb back.
///
/// This keeps an idle fleet member (publisher parked between runs, a
/// daemon-attached process waiting on input) from burning a CPU timer
/// 997 times a second for nothing, without biasing estimates: idle ticks
/// attribute no hits, so dropping most of them changes only the `missed`
/// tally, never the per-slot ratios that become weights.
#[derive(Debug)]
struct AutoRate {
    base_hz: u32,
    /// Current backoff exponent: period = base period × 2^shift.
    shift: u32,
    /// Consecutive idle ticks since the last hit or backoff step.
    idle_streak: u64,
}

impl AutoRate {
    fn new(base_hz: u32) -> AutoRate {
        AutoRate {
            base_hz,
            shift: 0,
            idle_streak: 0,
        }
    }

    /// The current tick period, given the configured base period.
    fn period(&self, base: Duration) -> Duration {
        base * (1u32 << self.shift)
    }

    /// The rate currently in effect, in ticks per second.
    fn effective_hz(&self) -> u32 {
        (self.base_hz >> self.shift).max(1)
    }

    /// Feeds one tick outcome. Returns `Some(new_hz)` when the effective
    /// rate changed — the only moments the thread touches the metrics
    /// registry.
    fn on_tick(&mut self, hit: bool) -> Option<u32> {
        if hit {
            self.idle_streak = 0;
            if self.shift != 0 {
                self.shift = 0;
                return Some(self.effective_hz());
            }
            None
        } else {
            self.idle_streak += 1;
            if self.idle_streak >= IDLE_BACKOFF_TICKS && self.shift < MAX_BACKOFF_SHIFT {
                self.idle_streak = 0;
                self.shift += 1;
                return Some(self.effective_hz());
            }
            None
        }
    }
}

/// A wall-clock sampler thread ticking a [`SamplingShared`], starting at
/// a configured rate and backing off while the beacon stays idle (see
/// `AutoRate`). Stops (and joins) on drop, publishing final metrics and
/// one summary [`EventKind::SamplerTick`] event — the tick path itself
/// never touches the event bus, and touches the metrics registry only on
/// the (bounded, rare) rate transitions, exposed as the gauge
/// `profiler.sample_rate_hz`.
#[derive(Debug)]
pub struct Sampler {
    shared: Arc<SamplingShared>,
    hz: u32,
    /// Rate currently in effect, mirrored out of the thread for
    /// [`Sampler::effective_hz`].
    effective: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampler thread at `hz` ticks per second (clamped to at
    /// least 1). `hz` is the *ceiling*: the thread backs off while the
    /// beacon stays idle and re-arms the full rate on the first hit.
    pub fn spawn(shared: Arc<SamplingShared>, hz: u32) -> Sampler {
        let hz = hz.max(1);
        let base = Duration::from_nanos(1_000_000_000 / hz as u64);
        let effective = Arc::new(AtomicU64::new(hz as u64));
        let worker = shared.clone();
        let mirror = effective.clone();
        let handle = std::thread::Builder::new()
            .name("pgmp-sampler".into())
            .spawn(move || {
                let mut rate = AutoRate::new(hz);
                metrics().gauge_set("profiler.sample_rate_hz", hz as f64);
                while !worker.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(rate.period(base));
                    let hit = worker.sample_now();
                    if let Some(new_hz) = rate.on_tick(hit) {
                        mirror.store(new_hz as u64, Ordering::Relaxed);
                        metrics().gauge_set("profiler.sample_rate_hz", new_hz as f64);
                    }
                }
            })
            .expect("failed to spawn pgmp-sampler thread");
        Sampler {
            shared,
            hz,
            effective,
            handle: Some(handle),
        }
    }

    /// The configured (ceiling) tick rate.
    pub fn hz(&self) -> u32 {
        self.hz
    }

    /// The rate currently in effect — `hz()` under load, lower while the
    /// beacon has been idle long enough to back off.
    pub fn effective_hz(&self) -> u32 {
        self.effective.load(Ordering::Relaxed) as u32
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.shared.publish_metrics();
        let (ticks, hits, missed) = self.shared.stats();
        emit(EventKind::SamplerTick {
            hz: self.hz,
            ticks,
            hits,
            missed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_beacon_counts_as_missed() {
        let s = SamplingShared::new();
        s.sample_now();
        assert_eq!(s.stats(), (1, 0, 1));
        assert_eq!(s.tallies().get(0), 0);
    }

    #[test]
    fn published_slot_zero_is_distinguishable_from_idle() {
        let s = SamplingShared::new();
        s.publish(7, 0);
        s.sample_now();
        assert_eq!(s.stats(), (1, 1, 0));
        assert_eq!(s.tallies().get(0), 1);
    }

    #[test]
    fn park_clears_the_position() {
        let s = SamplingShared::new();
        s.publish(7, 3);
        s.sample_now();
        s.park();
        s.sample_now();
        assert_eq!(s.stats(), (2, 1, 1));
        assert_eq!(s.tallies().get(3), 1);
    }

    #[test]
    fn auto_rate_backs_off_after_sustained_idle() {
        let mut rate = AutoRate::new(1000);
        assert_eq!(rate.effective_hz(), 1000);
        // One short of the threshold: no change yet.
        for _ in 0..IDLE_BACKOFF_TICKS - 1 {
            assert_eq!(rate.on_tick(false), None);
        }
        // The threshold tick halves the rate...
        assert_eq!(rate.on_tick(false), Some(500));
        // ...and the streak restarts, so the next halving needs a full
        // window again.
        for _ in 0..IDLE_BACKOFF_TICKS - 1 {
            assert_eq!(rate.on_tick(false), None);
        }
        assert_eq!(rate.on_tick(false), Some(250));
    }

    #[test]
    fn auto_rate_caps_at_max_shift() {
        let mut rate = AutoRate::new(1000);
        for _ in 0..IDLE_BACKOFF_TICKS * (MAX_BACKOFF_SHIFT as u64 + 10) {
            rate.on_tick(false);
        }
        assert_eq!(rate.effective_hz(), 1000 >> MAX_BACKOFF_SHIFT);
        let base = Duration::from_micros(1000);
        assert_eq!(rate.period(base), base * (1 << MAX_BACKOFF_SHIFT));
    }

    #[test]
    fn auto_rate_rearms_instantly_on_hit() {
        let mut rate = AutoRate::new(1000);
        for _ in 0..IDLE_BACKOFF_TICKS * 3 {
            rate.on_tick(false);
        }
        assert!(rate.effective_hz() < 1000, "should have backed off");
        // A single hit restores the full rate in one step.
        assert_eq!(rate.on_tick(false), None);
        assert_eq!(rate.on_tick(true), Some(1000));
        assert_eq!(rate.effective_hz(), 1000);
        // And a hit at full rate reports no change.
        assert_eq!(rate.on_tick(true), None);
    }

    #[test]
    fn auto_rate_hit_resets_the_idle_streak() {
        let mut rate = AutoRate::new(1000);
        // Hits interleaved more often than the backoff window keep the
        // rate pinned at the ceiling forever.
        for _ in 0..10 {
            for _ in 0..IDLE_BACKOFF_TICKS - 1 {
                assert_eq!(rate.on_tick(false), None);
            }
            assert_eq!(rate.on_tick(true), None);
        }
        assert_eq!(rate.effective_hz(), 1000);
    }

    #[test]
    fn auto_rate_floor_is_one_hz() {
        let mut rate = AutoRate::new(1);
        for _ in 0..IDLE_BACKOFF_TICKS * (MAX_BACKOFF_SHIFT as u64 + 1) {
            rate.on_tick(false);
        }
        assert_eq!(rate.effective_hz(), 1);
    }

    #[test]
    fn sampler_thread_backs_off_when_idle_and_recovers() {
        let shared = Arc::new(SamplingShared::new());
        // Idle beacon at a high tick rate: the backoff window elapses in
        // well under a second.
        let sampler = Sampler::spawn(shared.clone(), 50_000);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sampler.effective_hz() == 50_000 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            sampler.effective_hz() < 50_000,
            "sampler never backed off while idle"
        );
        // Publish a position: the next tick hits and re-arms the rate.
        shared.publish(1, 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sampler.effective_hz() != 50_000 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            sampler.effective_hz(),
            50_000,
            "sampler never re-armed after activity resumed"
        );
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let shared = Arc::new(SamplingShared::new());
        shared.publish(1, 5);
        let sampler = Sampler::spawn(shared.clone(), 10_000);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while shared.stats().0 == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let (ticks, hits, _) = shared.stats();
        assert!(ticks > 0, "sampler never ticked");
        assert_eq!(hits, ticks, "every tick saw the published beacon");
        assert_eq!(shared.tallies().get(5), hits);
    }
}
