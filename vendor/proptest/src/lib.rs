//! A minimal, dependency-free, offline re-implementation of the subset of
//! the [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no network access and no crates.io registry
//! cache, so the real crate cannot be fetched; this vendored stand-in keeps
//! the property-based test suites runnable. It implements random generation
//! (no shrinking) with a deterministic per-test seed, so failures are
//! reproducible run-to-run.
//!
//! Supported surface:
//!
//! - [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`
//! - [`BoxedStrategy`], [`Just`], [`any`], integer ranges, tuples (2–6)
//! - `&str` regex-subset strategies (char classes + `{m,n}` quantifiers)
//! - [`collection::vec`], [`char::range`]
//! - `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, `prop_assume!`, [`ProptestConfig`]

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG: splitmix64, deterministically seeded per test
// ---------------------------------------------------------------------------

/// Deterministic test RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, so every test gets an independent
    /// but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        let span = (range.end - range.start).max(1) as u64;
        range.start + self.below(span) as usize
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `f` receives a strategy for the current
    /// level and returns a strategy for one level deeper. `depth` bounds
    /// recursion; the size/branch hints are accepted for API compatibility
    /// but sizes are bounded by the collection strategies themselves.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            current = Union {
                options: vec![base.clone(), deeper],
            }
            .boxed();
        }
        current
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix in edge values now and then, like real proptest.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The canonical strategy for `T` (`any::<i64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Output of [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges and tuples as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident : $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies: `"[a-z][a-z0-9]{0,8}"`
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct CharClass {
    /// Inclusive ranges; a literal is a one-char range.
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn size(&self) -> u64 {
        self.ranges
            .iter()
            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
            .sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut k = rng.below(self.size());
        for (a, b) in &self.ranges {
            let n = (*b as u64) - (*a as u64) + 1;
            if k < n {
                return char::from_u32(*a as u32 + k as u32).expect("valid class char");
            }
            k -= n;
        }
        unreachable!("pick within class size")
    }
}

#[derive(Clone, Debug)]
struct RegexElem {
    class: CharClass,
    min: usize,
    max: usize,
}

/// Parses the supported regex subset: a sequence of char classes (`[...]`
/// with ranges and literals) or literal chars, each optionally followed by
/// `{m,n}`, `{n}`, `?`, `+`, or `*`.
fn parse_regex(pattern: &str) -> Vec<RegexElem> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut elems = Vec::new();
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1; // skip ']'
                CharClass { ranges }
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                CharClass {
                    ranges: vec![(c, c)],
                }
            }
            c => {
                i += 1;
                CharClass {
                    ranges: vec![(c, c)],
                }
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        elems.push(RegexElem { class, min, max });
    }
    elems
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elems = parse_regex(self);
        let mut out = String::new();
        for e in &elems {
            let n = rng.usize_in(e.min..e.max + 1);
            for _ in 0..n {
                out.push(e.class.pick(rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections / chars
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Char strategies (`proptest::char::range`).
pub mod char {
    use super::{Strategy, TestRng};

    /// Chars in `[lo, hi]` inclusive (must not span the surrogate gap).
    pub fn range(lo: ::std::primitive::char, hi: ::std::primitive::char) -> CharRange {
        CharRange { lo, hi }
    }

    /// Output of [`range`].
    #[derive(Clone, Copy)]
    pub struct CharRange {
        lo: ::std::primitive::char,
        hi: ::std::primitive::char,
    }

    impl Strategy for CharRange {
        type Value = ::std::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> ::std::primitive::char {
            let span = self.hi as u64 - self.lo as u64 + 1;
            ::std::primitive::char::from_u32(self.lo as u32 + rng.below(span) as u32)
                .expect("char range must not span surrogates")
        }
    }
}

// ---------------------------------------------------------------------------
// Test-runner plumbing
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is false.
    Fail(String),
    /// `prop_assume!` rejected the inputs.
    Reject,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the real proptest docs for the syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $p = $crate::Strategy::generate(&($s), &mut rng); )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(16).max(1024),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}: {}", left, right, format!($($fmt)*)),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
}

/// Rejects the current case (drawing fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9?!*<>=-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad symbol {s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            let printable = Strategy::generate(&"[ -~]{0,10}", &mut rng);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(-1000i64..1000), &mut rng);
            assert!((-1000..1000).contains(&v));
            let u = Strategy::generate(&(0u32..40), &mut rng);
            assert!(u < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 10, "element {} out of range", x);
            }
        }

        #[test]
        fn assume_rejects_and_regenerates(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
