//! A minimal, dependency-free, offline re-implementation of the subset of
//! the [`criterion`](https://docs.rs/criterion) API this workspace's
//! benchmarks use.
//!
//! The build environment has no network access and no crates.io registry
//! cache, so the real crate cannot be fetched. This stand-in measures with
//! `std::time::Instant`, reports median/min/mean nanoseconds per iteration
//! on stdout, and supports `iter`, `iter_custom`, benchmark groups, and the
//! `criterion_group!`/`criterion_main!` macros. No statistics engine, no
//! plots, no baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
        }
    }
}

/// A named benchmark identifier with an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`-style id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name for the benchmark.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        bencher.print(&self.name, &id.into_id());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<P: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher, input);
        bencher.print(&self.name, &id.into_id());
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Summary of one benchmark's samples, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
struct Report {
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

/// Measures a routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Benchmarks with caller-controlled timing: `routine(iters)` must
    /// perform `iters` iterations and return the elapsed wall time. This is
    /// the hook multi-threaded benchmarks use to time only the parallel
    /// phase.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count whose sample takes roughly
        // measurement_time / sample_size.
        let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut iters: u64 = 1;
        loop {
            let t = routine(iters).as_secs_f64();
            if t >= target || iters >= 1 << 24 {
                if t > 0.0 && t < target {
                    iters = ((iters as f64) * (target / t)).ceil() as u64;
                    iters = iters.clamp(1, 1 << 24);
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| routine(iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.report = Some(Report {
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            iters_per_sample: iters,
            samples: per_iter_ns.len(),
        });
    }

    fn print(&self, group: &str, id: &str) {
        match &self.report {
            Some(r) => println!(
                "{group}/{id:<32} median {} (min {}, mean {}) [{} samples x {} iters]",
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns),
                r.samples,
                r.iters_per_sample,
            ),
            None => println!("{group}/{id:<32} (no measurement)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self-test");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("custom");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(2));
        group.bench_function("fixed", |b| {
            b.iter_custom(|iters| Duration::from_nanos(100).saturating_mul(iters as u32))
        });
        group.finish();
    }
}
