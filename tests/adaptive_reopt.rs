//! End-to-end adaptive re-optimization: a hot `exclusive-cond` branch
//! shifts mid-run, the drift detector fires, and the emitted clause order
//! provably changes.

use pgmp_adaptive::{AdaptiveConfig, AdaptiveEngine, DriftMetric};
use pgmp_case_studies::{install, Lib};
use std::time::Duration;

/// A tiny service: classify requests by id. With no profile (or a profile
/// where the `< 10` clause is hot) the clauses keep source order; once the
/// `>= 10` clause becomes hot, exclusive-cond must hoist it to the front.
const SERVICE: &str = "
  (define (classify n)
    (exclusive-cond
      [(< n 10) 'low]
      [(>= n 10) 'high]))";

fn adaptive_service(config: AdaptiveConfig) -> AdaptiveEngine {
    AdaptiveEngine::with_setup(SERVICE, "service.scm", config, |e| {
        install(e, Lib::Case)
    })
    .expect("initial compile")
}

fn drive(lo: i64, hi: i64) -> String {
    format!(
        "(let loop ([i {lo}])
           (unless (= i {hi}) (classify i) (loop (add1 i))))"
    )
}

/// Position of the expansion of clause `body` in the emitted `classify`
/// definition, as an index into the printed text.
fn clause_pos(expansion: &str, needle: &str) -> usize {
    expansion
        .find(needle)
        .unwrap_or_else(|| panic!("`{needle}` not in expansion: {expansion}"))
}

#[test]
fn hot_branch_shift_reorders_clauses_after_drift() {
    let config = AdaptiveConfig {
        epoch: Duration::from_millis(50),
        decay: 0.5,
        drift_threshold: 0.2,
        metric: DriftMetric::TotalVariation,
        ..AdaptiveConfig::default()
    };
    let mut engine = adaptive_service(config);

    // Generation 0: no profile, source order — 'low clause first.
    let gen0 = engine.current_program();
    assert_eq!(gen0.generation, 0);
    let text = gen0.expansion.join("\n");
    assert!(
        clause_pos(&text, "(quote low)") < clause_pos(&text, "(quote high)"),
        "unprofiled expansion must keep source order: {text}"
    );

    // Phase A: traffic is all n < 10 — the 'low clause is hot. Several
    // worker threads collect concurrently, then one epoch ticks.
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let h = engine.handle();
                s.spawn(move || h.collect_run(Some(&drive(0, 10))))
            })
            .collect();
        for w in workers {
            w.join().unwrap().unwrap();
        }
    });
    let report = engine.tick().unwrap();
    assert!(report.fired, "first profiled epoch must drift from empty");
    assert!(report.reoptimized);
    let gen1 = engine.current_program();
    assert_eq!(gen1.generation, 1);
    let text = gen1.expansion.join("\n");
    assert!(
        clause_pos(&text, "(quote low)") < clause_pos(&text, "(quote high)"),
        "with 'low hot the order must still be low-first: {text}"
    );
    assert!(gen1.optimized_under_points > 0);

    // Same traffic: steady state, no re-optimization.
    engine.collect_run(Some(&drive(0, 10))).unwrap();
    let report = engine.tick().unwrap();
    assert!(
        !report.fired,
        "steady traffic re-fired at drift {}",
        report.drift
    );
    assert_eq!(engine.current_program().generation, 1);

    // Phase B: the hot branch SHIFTS — traffic becomes all n >= 10. With
    // decay 0.5 the old 'low mass halves each epoch while 'high hits pour
    // in, so within a few epochs drift crosses the threshold and the
    // engine re-optimizes.
    let mut reoptimized = false;
    for _ in 0..6 {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let h = engine.handle();
                    s.spawn(move || h.collect_run(Some(&drive(10, 60))))
                })
                .collect();
            for w in workers {
                w.join().unwrap().unwrap();
            }
        });
        let report = engine.tick().unwrap();
        reoptimized |= report.reoptimized;
    }
    assert!(reoptimized, "hot-branch shift never triggered re-optimization");

    // The emitted clause order provably changed: 'high now comes first.
    let shifted = engine.current_program();
    assert!(shifted.generation >= 2);
    let text = shifted.expansion.join("\n");
    assert!(
        clause_pos(&text, "(quote high)") < clause_pos(&text, "(quote low)"),
        "after the shift the hot 'high clause must lead: {text}"
    );

    // And the bytecode CFGs were recompiled along with the expansion.
    assert_ne!(
        gen1.cfgs, shifted.cfgs,
        "re-optimization must reach the bytecode layer"
    );
}

#[test]
fn background_aggregator_drives_the_same_loop() {
    let config = AdaptiveConfig {
        epoch: Duration::from_millis(10),
        drift_threshold: 0.2,
        ..AdaptiveConfig::default()
    };
    let mut engine = adaptive_service(config);
    let handle = engine.handle();
    let aggregator = engine.spawn_aggregator();

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let h = engine.handle();
                s.spawn(move || h.collect_run(Some(&drive(10, 40))))
            })
            .collect();
        for w in workers {
            w.join().unwrap().unwrap();
        }
    });

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !handle.drift_pending() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    aggregator.stop();
    assert!(handle.drift_pending(), "aggregator never flagged drift");

    let program = engine
        .poll_reoptimize()
        .unwrap()
        .expect("drift was pending");
    assert_eq!(program.generation, 1);
    let text = program.expansion.join("\n");
    assert!(
        clause_pos(&text, "(quote high)") < clause_pos(&text, "(quote low)"),
        "hot 'high clause must lead after background-detected drift: {text}"
    );
}
