//! E6 — §6.3, Figures 13–14: profiled data structures.
//!
//! The profiled list/vector libraries recommend representation changes at
//! compile time (Perflint-style); the sequence library goes further and
//! *specializes itself* to a list or vector based on each instance's own
//! profile.

use pgmp_case_studies::{engine_with, two_pass, Lib};

/// A workload dominated by random access — fast on vectors, O(n) on lists.
fn random_access_program(ctor: &str, reader: &str, len_op: &str) -> String {
    format!(
        "(define s ({ctor} 10 20 30 40 50 60 70 80 90 100))
         (define (sum-random n)
           (let loop ([i 0] [acc 0])
             (if (= i n)
                 acc
                 (loop (add1 i) (+ acc ({reader} s (modulo i ({len_op} s))))))))
         (sum-random 200)"
    )
}

/// A workload dominated by head/tail traversal — fast on lists.
fn traversal_program(ctor: &str, first_op: &str, rest_op: &str, null_check: &str) -> String {
    format!(
        "(define s ({ctor} 1 2 3 4 5 6 7 8 9 10))
         (define (sum-all seq)
           (let loop ([cur seq] [acc 0] [n 10])
             (if (zero? n)
                 acc
                 (loop ({rest_op} cur) (+ acc ({first_op} cur)) (sub1 n)))))
         (define (go n)
           (let loop ([i 0] [acc 0])
             (if (= i n) acc (loop (add1 i) (+ acc (sum-all s))))))
         {null_check}
         (go 20)"
    )
}

// ---------------------------------------------------------------------------
// Profiled list (Figure 13)
// ---------------------------------------------------------------------------

#[test]
fn profiled_list_basic_operations() {
    let mut engine = engine_with(&[Lib::ProfiledList]).unwrap();
    let v = engine
        .run_str(
            "(define p (profiled-list 1 2 3))
             (list (plist-car p)
                   (plist-car (plist-cdr p))
                   (plist-ref p 2)
                   (plist-length p)
                   (plist-null? p)
                   (plist-car (plist-cons 0 p))
                   (plist->list p))",
            "pl.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(1 2 3 3 #f 0 (1 2 3))");
}

#[test]
fn vector_heavy_list_usage_warns_at_compile_time() {
    // Figure 13: random access dominates -> "reimplement this list as a
    // vector".
    let program = random_access_program("profiled-list", "plist-ref", "plist-length");
    let result = two_pass(&[Lib::ProfiledList], &program, "plw.scm").unwrap();
    assert_eq!(result.training_result, result.optimized_result);
    assert!(
        result
            .warnings
            .iter()
            .any(|w| w.contains("reimplement this list as a vector")),
        "warnings: {:?}",
        result.warnings
    );
}

#[test]
fn list_heavy_usage_does_not_warn() {
    let program = traversal_program("profiled-list", "plist-car", "plist-cdr", "");
    let result = two_pass(&[Lib::ProfiledList], &program, "plq.scm").unwrap();
    assert!(
        result.warnings.is_empty(),
        "no warning expected for list-friendly usage: {:?}",
        result.warnings
    );
}

#[test]
fn each_list_instance_is_profiled_separately() {
    // Two instances: one used with random access, one traversed. Only the
    // first should be flagged.
    let program = "
      (define a (profiled-list 1 2 3 4 5))
      (define b (profiled-list 6 7 8 9 10))
      (define (hammer-ref n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (plist-ref a (modulo i 5)))))))
      (define (walk n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (plist-car b))))))
      (list (hammer-ref 100) (walk 100))";
    let result = two_pass(&[Lib::ProfiledList], program, "pl2.scm").unwrap();
    let warnings: Vec<&String> = result.warnings.iter().collect();
    assert_eq!(warnings.len(), 1, "exactly one instance flagged: {warnings:?}");
    assert!(warnings[0].contains("1 2 3 4 5"), "the flagged instance is `a`: {warnings:?}");
}

// ---------------------------------------------------------------------------
// Profiled vector
// ---------------------------------------------------------------------------

#[test]
fn profiled_vector_basic_operations() {
    let mut engine = engine_with(&[Lib::ProfiledVector]).unwrap();
    let v = engine
        .run_str(
            "(define p (profiled-vector 1 2 3))
             (pvec-set! p 1 99)
             (list (pvec-ref p 1)
                   (pvec-length p)
                   (pvec-first p)
                   (pvec-first (pvec-rest p))
                   (pvec-ref (pvec-cons 0 p) 0))",
            "pv.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(99 3 1 99 0)");
}

#[test]
fn list_heavy_vector_usage_warns() {
    let program = traversal_program("profiled-vector", "pvec-first", "pvec-rest", "");
    let result = two_pass(&[Lib::ProfiledVector], &program, "pvw.scm").unwrap();
    assert!(
        result
            .warnings
            .iter()
            .any(|w| w.contains("reimplement this vector as a list")),
        "warnings: {:?}",
        result.warnings
    );
}

// ---------------------------------------------------------------------------
// Self-specializing sequence (Figure 14)
// ---------------------------------------------------------------------------

#[test]
fn sequence_defaults_to_list_without_profile() {
    let mut engine = engine_with(&[Lib::Sequence]).unwrap();
    let v = engine
        .run_str(
            "(define s (profiled-sequence 1 2 3))
             (seq-kind s)",
            "sq.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "list");
}

#[test]
fn random_access_workload_specializes_to_vector() {
    let program = format!(
        "{}\n(seq-kind s)",
        random_access_program("profiled-sequence", "seq-ref", "seq-length")
    );
    let result = two_pass(&[Lib::Sequence], &program, "sqv.scm").unwrap();
    // The training pass is unprofiled, so the instance starts as a list;
    // the optimizing pass specializes it to a vector.
    assert_eq!(result.training_result, "list");
    assert_eq!(result.optimized_result, "vector");
}

#[test]
fn specialization_switches_representation_and_preserves_results() {
    let program = random_access_program("profiled-sequence", "seq-ref", "seq-length");
    let kind_probe = format!("{program}\n(list (sum-random 50) (seq-kind s))");
    let result = two_pass(&[Lib::Sequence], &kind_probe, "sqk.scm").unwrap();
    // Training pass: unprofiled, so list representation.
    assert!(result.training_result.ends_with(" list)"), "{}", result.training_result);
    // Optimized pass: the instance self-specialized to a vector, and the
    // computed sums are identical.
    assert!(result.optimized_result.ends_with(" vector)"), "{}", result.optimized_result);
    let sum = |s: &str| s.trim_start_matches('(').split(' ').next().unwrap().to_owned();
    assert_eq!(sum(&result.training_result), sum(&result.optimized_result));
}

#[test]
fn traversal_workload_stays_a_list() {
    let program = format!(
        "{}\n(seq-kind s)",
        traversal_program("profiled-sequence", "seq-first", "seq-rest", "")
    );
    let result = two_pass(&[Lib::Sequence], &program, "sql.scm").unwrap();
    assert_eq!(result.optimized_result, "list");
}

#[test]
fn sequence_operations_agree_across_representations() {
    // Force both representations (by training differently) and check the
    // generic operations compute identical values.
    let ops_program = "
      (define s (profiled-sequence 5 6 7))
      (list (seq-first s)
            (seq-ref s 2)
            (seq-length s)
            (seq-first (seq-rest s))
            (seq-first (seq-cons 4 s))
            (seq->list s))";
    // List-trained: traversal first.
    let list_trained = format!(
        "(define warm (profiled-sequence 1 2))\n{ops_program}"
    );
    let r1 = two_pass(&[Lib::Sequence], &list_trained, "agree1.scm").unwrap();
    // Vector-trained: same ops program, but the training pass hammers refs.
    let vector_trained = format!(
        "{}\n{ops_program}",
        random_access_program("profiled-sequence", "seq-ref", "seq-length")
            .replace("(define s ", "(define warm ")
            .replace("(seq-ref s", "(seq-ref warm")
            .replace("(seq-length s", "(seq-length warm")
    );
    let r2 = two_pass(&[Lib::Sequence], &vector_trained, "agree2.scm").unwrap();
    assert_eq!(r1.optimized_result, "(5 7 3 6 4 (5 6 7))");
    assert_eq!(r2.optimized_result, "(5 7 3 6 4 (5 6 7))");
}

#[test]
fn mixed_instances_specialize_independently() {
    // One sequence used for random access, another for traversal; after
    // optimization they must pick different representations.
    let program = "
      (define by-index (profiled-sequence 1 2 3 4 5))
      (define by-walk (profiled-sequence 6 7 8 9 10))
      (define (hammer n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (seq-ref by-index (modulo i 5)))))))
      (define (walk n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (seq-first by-walk))))))
      (hammer 100)
      (walk 100)
      (list (seq-kind by-index) (seq-kind by-walk))";
    let result = two_pass(&[Lib::Sequence], program, "mixed.scm").unwrap();
    assert_eq!(result.optimized_result, "(vector list)");
}
