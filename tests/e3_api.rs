//! E3 — §3.3, Figure 4: the API, exercised from inside the object
//! language (meta-programs calling the procedures the engine installs).

use pgmp::Engine;
use pgmp_profiler::ProfileMode;

#[test]
fn make_profile_point_is_deterministic_across_compilations() {
    // A macro that returns its fresh profile point as a datum; two
    // separate engines must produce the same point for the same program.
    let program = "
      (define-syntax (my-point stx)
        (syntax-case stx ()
          [(_) #`(quote #,(datum->syntax stx
                   (let ([p (make-profile-point)])
                     (format \"~a\" p))))]))
      (my-point)";
    let mut e1 = Engine::new();
    let v1 = e1.run_str(program, "det.scm").unwrap().to_string();
    let mut e2 = Engine::new();
    let v2 = e2.run_str(program, "det.scm").unwrap().to_string();
    assert_eq!(v1, v2);
}

#[test]
fn annotate_expr_replaces_existing_profile_point() {
    // Figure 4: "The profile point pp replaces any other profile point
    // with which e is associated."
    let program = "
      (define-syntax (reannotated stx)
        (syntax-case stx ()
          [(_ e)
           (let* ([p1 (make-profile-point)]
                  [p2 (make-profile-point)]
                  [once (annotate-expr #'e p1)]
                  [twice (annotate-expr once p2)])
             ;; Querying through the twice-annotated syntax must find p2's
             ;; (empty) weight, not p1's.
             twice)]))
      (define (f) (reannotated (+ 1 2)))
      (f) (f)";
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str(program, "re.scm").unwrap();
    let counters = e.counters();
    let weights = e.current_weights();
    // Only the *second* generated point accumulated counts.
    let generated: Vec<_> = weights
        .iter()
        .filter(|(p, _)| p.is_generated())
        .map(|(p, _)| p)
        .collect();
    assert_eq!(generated.len(), 1, "only p2 counted: {generated:?}");
    assert_eq!(counters.count(generated[0]), 2);
    assert!(generated[0].file.as_str().ends_with("%pgmp1"), "p2 is the second point");
}

#[test]
fn store_and_load_profile_from_the_object_language() {
    let dir = std::env::temp_dir().join("pgmp-e3");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scheme-driven.pgmp");
    let path_str = path.to_str().unwrap().replace('\\', "/");

    // Run instrumented, then store from inside the program.
    let mut e1 = Engine::new();
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(
        &format!(
            "(define (hot) 'h)
             (let loop ([i 0]) (unless (= i 25) (hot) (loop (add1 i))))
             (store-profile \"{path_str}\")"
        ),
        "sl.scm",
    )
    .unwrap();
    assert!(path.exists());

    // Load in a fresh session and query from a meta-program.
    let program = format!(
        "(define-syntax (query-hot stx)
           (syntax-case stx ()
             [(_ e) #`#,(datum->syntax stx (profile-query #'e))]))
         (load-profile \"{path_str}\")
         'loaded"
    );
    let mut e2 = Engine::new();
    e2.run_str(&program, "sl2.scm").unwrap();
    assert!(!e2.profile().is_empty());
}

#[test]
fn current_profile_information_is_queryable() {
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str("(define (f) 1) (f)", "cpi.scm").unwrap();
    e.set_profile(e.current_weights());
    let v = e
        .run_str("(length (current-profile-information))", "cpi2.scm")
        .unwrap();
    let n: i64 = v.to_string().parse().unwrap();
    assert!(n > 0, "profile information has entries");
}

#[test]
fn profile_query_accepts_points_and_syntax() {
    let program = "
      (define-syntax (both stx)
        (syntax-case stx ()
          [(_ e)
           (let* ([p (make-profile-point)]
                  [annotated (annotate-expr #'e p)]
                  [via-point (profile-query p)]
                  [via-syntax (profile-query annotated)])
             #`(quote #,(datum->syntax stx (list via-point via-syntax))))]))
      (both (+ 1 1))";
    let mut e = Engine::new();
    let v = e.run_str(program, "pq.scm").unwrap();
    assert_eq!(v.to_string(), "(0.0 0.0)");
}

#[test]
fn profile_points_need_not_introduce_overhead_when_off() {
    // §3.1: with instrumentation off, nothing counts.
    let mut e = Engine::new();
    e.run_str(
        "(define-syntax (annotated stx)
           (syntax-case stx ()
             [(_ e) (annotate-expr #'e (make-profile-point))]))
         (define (f) (annotated (+ 1 2)))
         (f) (f)",
        "off.scm",
    )
    .unwrap();
    assert!(e.counters().is_empty());
}
