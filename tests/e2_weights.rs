//! E2 — §3.2, Figure 3: profile weights and dataset merging, reproduced
//! with the exact numbers of the paper's example, end to end through real
//! instrumented runs.

use pgmp::Engine;
use pgmp_profiler::{Dataset, ProfileInformation, ProfileMode};
use pgmp_syntax::SourceObject;

#[test]
fn figure_3_exact_numbers() {
    let important = SourceObject::new("classify.scm", 100, 120);
    let spam = SourceObject::new("classify.scm", 130, 150);

    // First data set: important 5, spam 10.
    let d1: Dataset = [(important, 5), (spam, 10)].into_iter().collect();
    let w1 = ProfileInformation::from_dataset(&d1);
    assert_eq!(w1.weight(important), 5.0 / 10.0);
    assert_eq!(w1.weight(spam), 10.0 / 10.0);

    // Second data set: important 100, spam 10.
    let d2: Dataset = [(important, 100), (spam, 10)].into_iter().collect();
    let w2 = ProfileInformation::from_dataset(&d2);
    assert_eq!(w2.weight(important), 100.0 / 100.0);
    assert_eq!(w2.weight(spam), 10.0 / 100.0);

    // Figure 3's merged weights.
    let merged = w1.merge(&w2);
    assert_eq!(merged.weight(important), (0.5 + 100.0 / 100.0) / 2.0);
    assert_eq!(merged.weight(spam), (1.0 + 10.0 / 100.0) / 2.0);
}

/// Runs `program` instrumented and returns its weights.
fn profile_run(program: &str) -> ProfileInformation {
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str(program, "train.scm").unwrap();
    e.current_weights()
}

#[test]
fn figure_3_from_real_runs() {
    // Reproduce the 5-vs-10 and 100-vs-10 datasets with actual executions
    // of two expressions, then merge.
    let template = |a: usize, b: usize| {
        format!(
            "(define (important) 'i)
             (define (spam) 's)
             (let loop ([i 0])
               (unless (= i {a}) (important) (loop (add1 i))))
             (let loop ([i 0])
               (unless (= i {b}) (spam) (loop (add1 i))))"
        )
    };
    let w1 = profile_run(&template(5, 10));
    let w2 = profile_run(&template(100, 10));

    // Locate the two call expressions by source position (same program
    // text modulo the loop bounds, so offsets of `(important)` and
    // `(spam)` inside the loops are found by search).
    let t1 = template(5, 10);
    let imp_off = t1.find("(important) (loop").unwrap() as u32;
    let spam_off = t1.find("(spam) (loop").unwrap() as u32;
    let imp1 = SourceObject::new("train.scm", imp_off, imp_off + 11);
    let spam1 = SourceObject::new("train.scm", spam_off, spam_off + 6);
    let c1 = w1.lookup(imp1).expect("important call profiled");
    let c2 = w1.lookup(spam1).expect("spam call profiled");
    // Within one dataset, relative order matches execution frequency.
    assert!(c2 > c1, "spam ({c2}) hotter than important ({c1})");

    let t2 = template(100, 10);
    let imp_off2 = t2.find("(important) (loop").unwrap() as u32;
    let imp2 = SourceObject::new("train.scm", imp_off2, imp_off2 + 11);
    assert!(w2.lookup(imp2).unwrap() > w2.weight(spam1) * 5.0);

    // Merging keeps everything in [0,1] and averages.
    let merged = w1.merge(&w2);
    for (_, w) in merged.iter() {
        assert!((0.0..=1.0).contains(&w));
    }
    assert_eq!(merged.dataset_count(), 2);
}

#[test]
fn merging_is_order_sensitive_only_in_dataset_weighting() {
    let p = SourceObject::new("m.scm", 0, 1);
    let q = SourceObject::new("m.scm", 2, 3);
    let d1: Dataset = [(p, 10), (q, 5)].into_iter().collect();
    let d2: Dataset = [(p, 1), (q, 100)].into_iter().collect();
    let a = ProfileInformation::from_dataset(&d1).merge(&ProfileInformation::from_dataset(&d2));
    let b = ProfileInformation::from_dataset(&d2).merge(&ProfileInformation::from_dataset(&d1));
    // Merging equal-sized summaries is commutative.
    for (point, w) in a.iter() {
        assert!((b.weight(point) - w).abs() < 1e-12);
    }
}

#[test]
fn weights_survive_store_load_merge_cycle() {
    let dir = std::env::temp_dir().join("pgmp-e2");
    std::fs::create_dir_all(&dir).unwrap();
    let p = SourceObject::new("s.scm", 0, 1);
    let q = SourceObject::new("s.scm", 2, 3);
    let d1: Dataset = [(p, 5), (q, 10)].into_iter().collect();
    let d2: Dataset = [(p, 100), (q, 10)].into_iter().collect();
    let f1 = dir.join("d1.pgmp");
    let f2 = dir.join("d2.pgmp");
    ProfileInformation::from_dataset(&d1).store_file(&f1).unwrap();
    ProfileInformation::from_dataset(&d2).store_file(&f2).unwrap();
    let merged = ProfileInformation::load_file(&f1)
        .unwrap()
        .merge(&ProfileInformation::load_file(&f2).unwrap());
    assert_eq!(merged.weight(p), 0.75);
    assert_eq!(merged.weight(q), 0.55);
}
