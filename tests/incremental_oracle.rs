//! Randomized oracle for the incremental recompilation cache: across an
//! arbitrary sequence of profile-weight updates, [`pgmp::IncrementalEngine`]
//! must produce exactly the artifacts a from-scratch compile produces —
//! same printed expansion, same canonical CFGs — no matter which forms it
//! chose to reuse.

use pgmp::{Engine, IncrementalConfig, IncrementalEngine};
use pgmp_bytecode::{canonical_form, compile_chunk};
use pgmp_profiler::ProfileInformation;
use pgmp_reader::read_str;
use pgmp_syntax::SourceObject;
use proptest::prelude::*;

/// An `if-r` macro followed by one define per entry of `specs`:
/// `true` forms decide their branch order from the profile, `false`
/// forms never consult it.
fn build_program(specs: &[bool]) -> String {
    let mut src = String::from(
        "(define-syntax (if-r stx)
           (syntax-case stx ()
             [(_ test t-branch f-branch)
              (if (< (profile-query #'t-branch) (profile-query #'f-branch))
                  #'(if (not test) f-branch t-branch)
                  #'(if test t-branch f-branch))]))\n",
    );
    for (i, dependent) in specs.iter().enumerate() {
        if *dependent {
            src.push_str(&format!("(define (g{i} x) (if-r (< x {i}) 'lo{i} 'hi{i}))\n"));
        } else {
            src.push_str(&format!("(define (f{i} x) (+ (* x {i}) 1))\n"));
        }
    }
    src
}

/// The profile points of every dependent form's two branches (the source
/// objects `profile-query` is handed during expansion).
fn dependent_points(src: &str, file: &str) -> Vec<(SourceObject, SourceObject)> {
    read_str(src, file)
        .expect("program reads")
        .iter()
        .skip(1)
        .filter_map(|form| {
            let body = form.as_list()?.get(2)?.as_list()?;
            if body.len() == 4 {
                Some((body[2].source?, body[3].source?))
            } else {
                None
            }
        })
        .collect()
}

/// The ground truth: a fresh engine compiling everything under `w`.
fn scratch_compile(src: &str, file: &str, w: &ProfileInformation) -> (Vec<String>, Vec<String>) {
    let mut engine = Engine::new();
    engine.set_profile(w.clone());
    let expansion: Vec<String> = engine
        .expand_str(src, file)
        .expect("scratch expand")
        .iter()
        .map(|s| s.to_datum().to_string())
        .collect();
    engine.reset_profile_points();
    let cfgs: Vec<String> = engine
        .expand_to_core(src, file)
        .expect("scratch core")
        .iter()
        .map(|c| canonical_form(&compile_chunk(c)))
        .collect();
    (expansion, cfgs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_equals_from_scratch(
        specs in proptest::collection::vec(any::<bool>(), 2..7),
        steps in proptest::collection::vec(
            proptest::collection::vec((0u32..11, 0u32..11), 6..7),
            1..4,
        ),
    ) {
        let src = build_program(&specs);
        let file = "oracle.scm";
        let points = dependent_points(&src, file);
        let mut incr =
            IncrementalEngine::new(&src, file, IncrementalConfig::default()).unwrap();
        for step in &steps {
            // One (t, f) weight pair per dependent form, drawn from the
            // step's pool — repeats across steps exercise full-reuse
            // recompiles, changes exercise partial ones.
            let w = ProfileInformation::from_weights(
                points
                    .iter()
                    .zip(step.iter().cycle())
                    .flat_map(|((t, f), (a, b))| {
                        [(*t, f64::from(*a) / 10.0), (*f, f64::from(*b) / 10.0)]
                    }),
                1,
            );
            let unit = incr.compile(&w).unwrap();
            let (expansion, cfgs) = scratch_compile(&src, file, &w);
            prop_assert_eq!(&unit.expansion, &expansion, "expansion diverged");
            prop_assert_eq!(&unit.cfgs, &cfgs, "compiled CFGs diverged");
            prop_assert_eq!(
                unit.stats.reused + unit.stats.reexpanded,
                unit.stats.total_forms
            );
        }
    }
}
