//! E8 — §4.3: the three-pass protocol keeping source-level PGMP and
//! block-level PGO consistent.

use pgmp::workflow::run_three_pass;
use pgmp::Engine;
use pgmp_profiler::ProfileMode;

/// A program whose meta-program output *changes* under profiling (if-r
/// swaps branches) — exactly the situation §4.3 is about: the block-level
/// profile collected before the source-level optimization would be
/// garbage.
const PGMP_PROGRAM: &str = "
  (define-syntax (if-r stx)
    (syntax-case stx ()
      [(_ test t-branch f-branch)
       (if (< (profile-query #'t-branch) (profile-query #'f-branch))
           #'(if (not test) f-branch t-branch)
           #'(if test t-branch f-branch))]))
  (define (bucket n)
    (if-r (< n 5) 'low 'high))
  (let loop ([i 0] [highs 0])
    (if (= i 400)
        highs
        (loop (add1 i) (if (eqv? (bucket i) 'high) (add1 highs) highs))))";

#[test]
fn pass3_code_equals_pass2_code() {
    let report = run_three_pass(PGMP_PROGRAM, "e8.scm").unwrap();
    assert!(
        report.stable,
        "holding source weights fixed must stabilize generated code;\n\
         pass2: {} chunks, pass3: {} chunks",
        report.pass2_chunks.len(),
        report.pass3_chunks.len()
    );
    assert_eq!(report.result, "395");
}

#[test]
fn source_optimization_actually_happened() {
    // Verify the premise: the optimized compile really did swap the
    // branches (i.e. pass 2/3 compiled *different* source than pass 1
    // would have).
    let mut e1 = Engine::new();
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(PGMP_PROGRAM, "e8.scm").unwrap();
    let weights = e1.current_weights();

    let mut unprofiled = Engine::new();
    let plain = unprofiled.expand_str(PGMP_PROGRAM, "e8.scm").unwrap();
    let mut profiled = Engine::new();
    profiled.set_profile(weights);
    let optimized = profiled.expand_str(PGMP_PROGRAM, "e8.scm").unwrap();
    let plain_bucket = plain.iter().map(|s| s.to_string()).find(|s| s.contains("bucket")).unwrap();
    let opt_bucket = optimized.iter().map(|s| s.to_string()).find(|s| s.contains("bucket")).unwrap();
    assert_ne!(plain_bucket, opt_bucket, "meta-program output must differ under profile");
    assert!(opt_bucket.contains("(if (not (< n 5)) (quote high) (quote low))"));
}

#[test]
fn block_layout_does_not_regress_fallthrough() {
    let report = run_three_pass(PGMP_PROGRAM, "e8.scm").unwrap();
    let baseline = report.baseline_metrics.fallthrough_ratio();
    let optimized = report.optimized_metrics.fallthrough_ratio();
    assert!(
        optimized >= baseline - 1e-9,
        "block-level layout regressed fall-through: {optimized} < {baseline}"
    );
}

#[test]
fn three_pass_handles_every_case_study_shape() {
    // A composite program with a second meta-program, confirming the
    // protocol generalizes past if-r.
    let program = "
      (define-syntax (pick stx)
        (syntax-case stx ()
          [(_ a b)
           (if (> (profile-query #'a) (profile-query #'b))
               #'(cons 'first (begin a b))
               #'(cons 'second (begin a b)))]))
      (define (work n)
        (pick (* n 2) (+ n 1)))
      (let loop ([i 0] [acc 0])
        (if (= i 50) acc (loop (add1 i) (+ acc (cdr (work i))))))";
    let report = run_three_pass(program, "composite.scm").unwrap();
    assert!(report.stable);
}

#[test]
fn source_weights_are_reported() {
    let report = run_three_pass(PGMP_PROGRAM, "e8.scm").unwrap();
    assert!(!report.source_weights.is_empty());
    // The max weight is 1.0 by construction of the normalization.
    let max = report
        .source_weights
        .iter()
        .map(|(_, w)| w)
        .fold(0.0f64, f64::max);
    assert!((max - 1.0).abs() < 1e-12);
}
