//! E5 — §6.2, Figures 9–12: profile-guided receiver class prediction.
//!
//! The shapes example of Figure 10: a call site sees 3 Circles and 1
//! Square. Instrumented code (Figure 11 top) profiles each class at the
//! call site; optimized code (Figures 11 bottom / 12) inlines the method
//! bodies of the hottest classes — Circle first — and falls back to
//! dynamic dispatch for the rest.

use pgmp_case_studies::{engine_with, two_pass, Lib};

const SHAPES: &str = r#"
  (class Square
    ((length 0))
    (define-method (area this)
      (sqr (field this length))))
  (class Circle
    ((radius 0))
    (define-method (area this)
      (* 3 (sqr (field this radius)))))
  (class Triangle
    ((base 0) (height 0))
    (define-method (area this)
      (* (field this base) (field this height))))
  (define shapes
    (list (new Circle 1) (new Circle 2) (new Circle 3) (new Square 4)))
  (map (lambda (s) (method s area)) shapes)
"#;

#[test]
fn object_system_basics() {
    let mut engine = engine_with(&[Lib::ObjectSystem]).unwrap();
    let v = engine
        .run_str(
            "(class Point ((x 0) (y 0))
               (define-method (sum this) (+ (field this x) (field this y)))
               (define-method (scaled this k) (* k (field this x))))
             (define p (new Point 3 4))
             (list (field p x)
                   (field p y)
                   (dynamic-dispatch p 'sum)
                   (dynamic-dispatch p 'scaled 10)
                   (instance-of? p 'Point)
                   (instance-of? p 'Other))",
            "oo-basics.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(3 4 7 30 #t #f)");
}

#[test]
fn defaults_and_set_field() {
    let mut engine = engine_with(&[Lib::ObjectSystem]).unwrap();
    let v = engine
        .run_str(
            "(class C ((a 10) (b 20)) (define-method (get-a this) (field this a)))
             (define c (new C))
             (set-field! c 'a 99)
             (list (field c a) (field c b))",
            "oo-defaults.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(99 20)");
}

#[test]
fn figure_10_areas_are_correct_in_both_passes() {
    let result = two_pass(&[Lib::ObjectSystem], SHAPES, "shapes.scm").unwrap();
    // Areas: circles 3, 12, 27; square 16.
    assert_eq!(result.training_result, "(3 12 27 16)");
    assert_eq!(result.optimized_result, "(3 12 27 16)");
}

#[test]
fn instrumented_code_has_one_clause_per_class() {
    // With no profile data, the method macro instruments: one
    // instance-of? clause per class, each calling instrumented-dispatch
    // (Figure 11, top).
    let mut engine = engine_with(&[Lib::ObjectSystem]).unwrap();
    engine.run_str(SHAPES, "shapes.scm").unwrap();
    // A second call site, expanded for inspection (registry now has 3
    // classes).
    let expansion = engine
        .expand_str("(define (total s) (method s area))", "site2.scm")
        .unwrap();
    let text = expansion[0].to_datum().to_string();
    for class in ["Square", "Circle", "Triangle"] {
        assert!(
            text.contains(&format!("(instance-of? x (quote {class}))")),
            "clause for {class} in:\n{text}"
        );
    }
    assert_eq!(text.matches("instrumented-dispatch").count(), 3);
    assert!(text.contains("(dynamic-dispatch x (quote area))"), "else fallback");
}

#[test]
fn optimized_code_inlines_hottest_classes_sorted() {
    let result = two_pass(&[Lib::ObjectSystem], SHAPES, "shapes.scm").unwrap();
    let site = result
        .expansion_text
        .lines()
        .find(|l| l.contains("instance-of?"))
        .expect("optimized call site");
    // Figure 12: Circle (3 runs) before Square (1 run); Triangle (0) is
    // not inlined at all.
    let circle = site.find("(instance-of? x (quote Circle))").expect("Circle clause");
    let square = site.find("(instance-of? x (quote Square))").expect("Square clause");
    assert!(circle < square, "hottest class first:\n{site}");
    assert!(!site.contains("Triangle"), "zero-weight class not inlined:\n{site}");
    // The bodies are inlined (Figure 11 bottom): the method source appears
    // at the call site, not a dispatch call.
    assert!(site.contains("(* 3 (sqr (field"), "Circle body inlined:\n{site}");
    assert!(site.contains("(sqr (field"), "Square body inlined:\n{site}");
    assert!(!site.contains("instrumented-dispatch"), "no instrumentation left:\n{site}");
    // Fallback preserved.
    assert!(site.contains("(dynamic-dispatch x (quote area))"), "{site}");
}

#[test]
fn method_calls_with_arguments_inline_correctly() {
    let program = "
      (class Scaler ((factor 2))
        (define-method (apply-to this x) (* (field this factor) x)))
      (class Offsetter ((amount 5))
        (define-method (apply-to this x) (+ (field this amount) x)))
      (define objs (list (new Scaler 3) (new Scaler 4) (new Offsetter 10)))
      (map (lambda (o) (method o apply-to 7)) objs)";
    let result = two_pass(&[Lib::ObjectSystem], program, "args.scm").unwrap();
    assert_eq!(result.training_result, "(21 28 17)");
    assert_eq!(result.optimized_result, "(21 28 17)");
    // Scaler (2 uses) inlined before Offsetter (1 use).
    let site = result
        .expansion_text
        .lines()
        .find(|l| l.contains("instance-of?"))
        .unwrap();
    assert!(
        site.find("Scaler").unwrap() < site.find("Offsetter").unwrap(),
        "{site}"
    );
}

#[test]
fn unknown_class_at_optimized_site_falls_back_to_dispatch() {
    // Train with Circles only, then call the optimized site with a
    // Square: the else clause must handle it.
    let program = "
      (class Square ((length 0))
        (define-method (area this) (sqr (field this length))))
      (class Circle ((radius 0))
        (define-method (area this) (* 3 (sqr (field this radius)))))
      (define (site s) (method s area))
      (site (new Circle 2))
      (site (new Circle 3))
      (site (new Square 5))";
    let result = two_pass(&[Lib::ObjectSystem], program, "fallback.scm").unwrap();
    assert_eq!(result.optimized_result, "25");
}

#[test]
fn each_call_site_is_profiled_separately() {
    // §6.2: "each occurrence of (instrumented-dispatch x area) has a
    // different profile point, so each occurrence is profiled separately."
    let program = "
      (class A ((v 1)) (define-method (get this) 'a))
      (class B ((v 1)) (define-method (get this) 'b))
      (define (site1 o) (method o get))
      (define (site2 o) (method o get))
      ;; site1 sees only As; site2 sees only Bs.
      (site1 (new A)) (site1 (new A)) (site1 (new A))
      (site2 (new B))";
    let result = two_pass(&[Lib::ObjectSystem], program, "sites.scm").unwrap();
    let lines: Vec<&str> = result
        .expansion_text
        .lines()
        .filter(|l| l.contains("instance-of?"))
        .collect();
    assert_eq!(lines.len(), 2);
    let site1 = lines.iter().find(|l| l.contains("site1")).unwrap();
    let site2 = lines.iter().find(|l| l.contains("site2")).unwrap();
    assert!(site1.contains("(quote A)") && !site1.contains("(quote B)"), "{site1}");
    assert!(site2.contains("(quote B)") && !site2.contains("(quote A)"), "{site2}");
}

#[test]
fn inline_limit_bounds_the_cache() {
    // Four classes, all used; only the top 2 (the default inline-limit)
    // may be inlined.
    let program = "
      (class C1 ((v 0)) (define-method (tag this) 'c1))
      (class C2 ((v 0)) (define-method (tag this) 'c2))
      (class C3 ((v 0)) (define-method (tag this) 'c3))
      (class C4 ((v 0)) (define-method (tag this) 'c4))
      (define (site o) (method o tag))
      (site (new C1)) (site (new C1)) (site (new C1)) (site (new C1))
      (site (new C2)) (site (new C2)) (site (new C2))
      (site (new C3)) (site (new C3))
      (site (new C4))";
    let result = two_pass(&[Lib::ObjectSystem], program, "limit.scm").unwrap();
    let site = result
        .expansion_text
        .lines()
        .find(|l| l.contains("instance-of?"))
        .unwrap();
    assert_eq!(site.matches("instance-of?").count(), 2, "{site}");
    assert!(site.contains("(quote C1)") && site.contains("(quote C2)"), "{site}");
    assert_eq!(result.optimized_result, result.training_result);
}
