//! E4 — §6.1, Figures 5–8: profile-guided `case` via `exclusive-cond`.
//!
//! The parser example of Figure 5 is trained on an input with the
//! frequencies of Figure 8 (white-space 55, parens 23+23, digits 10), and
//! the expansion must be a `cond` whose clauses are ordered
//! greatest-to-least by weight, with the membership tests of Figure 8.

use pgmp_case_studies::{engine_with, two_pass, Lib};

/// The Figure 5 parser plus a driver; `input` is a string of characters
/// fed through the parser.
fn parser_program(input: &str) -> String {
    format!(
        r#"
        (define (make-stream chars)
          (let ([s (make-eq-hashtable)])
            (hashtable-set! s 'data chars)
            (hashtable-set! s 'pos 0)
            s))
        (define (stream-done? s)
          (>= (hashtable-ref s 'pos 0) (vector-length (hashtable-ref s 'data #f))))
        (define (peek-char-s s)
          (vector-ref (hashtable-ref s 'data #f) (hashtable-ref s 'pos 0)))
        (define (advance! s)
          (hashtable-set! s 'pos (add1 (hashtable-ref s 'pos 0))))
        (define (white-space s) (advance! s) 'white-space)
        (define (digit s) (advance! s) 'digit)
        (define (start-paren s) (advance! s) 'open)
        (define (end-paren s) (advance! s) 'close)
        (define (other s) (advance! s) 'other)
        (define (parse stream)
          (case (peek-char-s stream)
            [(#\space #\tab) (white-space stream)]
            [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) (digit stream)]
            [(#\() (start-paren stream)]
            [(#\)) (end-paren stream)]
            [else (other stream)]))
        (define (run-parser text)
          (let ([s (make-stream (list->vector (string->list text)))])
            (let loop ([tokens '()])
              (if (stream-done? s)
                  (reverse tokens)
                  (loop (cons (parse s) tokens))))))
        (length (run-parser "{input}"))
        "#
    )
}

/// Figure 8 training input: 55 spaces, 23 open, 23 close, 10 digits.
fn figure8_input() -> String {
    let mut s = String::new();
    s.push_str(&" ".repeat(55));
    s.push_str(&"(".repeat(23));
    s.push_str(&")".repeat(23));
    s.push_str("0123456789");
    s
}

#[test]
fn figure_8_clause_order() {
    let program = parser_program(&figure8_input());
    let result = two_pass(&[Lib::Case], &program, "parse.scm").unwrap();
    assert_eq!(result.training_result, "111");
    assert_eq!(result.optimized_result, "111");

    // Extract the expanded parse definition and check clause order:
    // white-space (55) first, then start-paren (23), end-paren (23)
    // stable, then digit (10); else stays last.
    let parse_def = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (parse"))
        .expect("expanded parse definition");
    assert!(parse_def.contains("(key-in? t"), "Figure 8 membership tests:\n{parse_def}");
    let pos = |needle: &str| {
        parse_def
            .find(needle)
            .unwrap_or_else(|| panic!("missing {needle} in:\n{parse_def}"))
    };
    let ws = pos("(white-space stream)");
    let open = pos("(start-paren stream)");
    let close = pos("(end-paren stream)");
    let digit = pos("(digit stream)");
    let other = pos("(other stream)");
    assert!(ws < open, "white-space first");
    assert!(open < close, "stable order for equal weights");
    assert!(close < digit, "digits last among profiled clauses");
    assert!(digit < other, "else clause never reordered");
}

#[test]
fn unprofiled_case_keeps_source_order() {
    let mut engine = engine_with(&[Lib::Case]).unwrap();
    let expansion = engine
        .expand_str(
            "(define (f x) (case x [(1) 'one] [(2) 'two] [else 'other]))",
            "plain.scm",
        )
        .unwrap();
    let text = expansion[0].to_datum().to_string();
    let one = text.find("(quote one)").unwrap();
    let two = text.find("(quote two)").unwrap();
    let other = text.find("(quote other)").unwrap();
    assert!(one < two && two < other, "source order preserved:\n{text}");
}

#[test]
fn case_evaluates_key_exactly_once() {
    let mut engine = engine_with(&[Lib::Case]).unwrap();
    let v = engine
        .run_str(
            "(define n 0)
             (define (key!) (set! n (add1 n)) 2)
             (case (key!) [(1) 'one] [(2) 'two] [else 'other])
             n",
            "once.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "1");
}

#[test]
fn reordering_preserves_semantics_on_all_inputs() {
    // Train on digit-heavy input (reorders digits first), then check every
    // character class still parses correctly.
    let mut program = parser_program(&format!("{}{}", "7".repeat(50), " ()"));
    program.push_str("\n(run-parser \" 5()x\")");
    let result = two_pass(&[Lib::Case], &program, "parse2.scm").unwrap();
    assert_eq!(
        result.optimized_result,
        "(white-space digit open close other)"
    );
    // And the digit clause now comes first.
    let parse_def = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (parse"))
        .unwrap();
    assert!(
        parse_def.find("(digit stream)").unwrap()
            < parse_def.find("(white-space stream)").unwrap(),
        "digit-heavy training puts digits first:\n{parse_def}"
    );
}

#[test]
fn exclusive_cond_reorders_plain_clauses() {
    // Using exclusive-cond directly (Figure 7), without case.
    let program = "
      (define (classify n)
        (exclusive-cond
          [(= n 0) 'zero]
          [(> n 0) 'positive]
          [else 'negative]))
      (let loop ([i 0] [acc '()])
        (if (= i 20) (length acc) (loop (add1 i) (cons (classify i) acc))))";
    let result = two_pass(&[Lib::ExclusiveCond], program, "xc.scm").unwrap();
    assert_eq!(result.optimized_result, "20");
    let classify = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (classify"))
        .unwrap();
    // 'positive ran 19 times, 'zero once: positive clause first.
    assert!(
        classify.find("(quote positive)").unwrap() < classify.find("(quote zero)").unwrap(),
        "{classify}"
    );
    assert!(
        classify.find("(quote zero)").unwrap() < classify.find("(quote negative)").unwrap(),
        "else last: {classify}"
    );
}

#[test]
fn exclusive_cond_without_else() {
    let mut engine = engine_with(&[Lib::ExclusiveCond]).unwrap();
    let v = engine
        .run_str(
            "(exclusive-cond [(= 1 2) 'a] [(= 1 1) 'b])",
            "noelse.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "b");
}

#[test]
fn profiled_case_handles_full_generality() {
    // Multi-expression bodies and fallthrough to else.
    let mut engine = engine_with(&[Lib::Case]).unwrap();
    let v = engine
        .run_str(
            "(define out '())
             (define (note! x) (set! out (cons x out)) x)
             (list
               (case 5 [(1 2) (note! 'a) 'ab] [else (note! 'e) 'other])
               out)",
            "gen.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "(other (e))");
}
