//! Engine session semantics: how profile state, counters, warnings, and
//! the deterministic point generator behave across multiple runs within
//! one compilation session.

use pgmp::Engine;
use pgmp_profiler::{ProfileInformation, ProfileMode};

#[test]
fn counters_accumulate_across_runs_in_one_session() {
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str("(define (f) 'x)", "s.scm").unwrap();
    e.run_str("(f)", "s2.scm").unwrap();
    let after_one = e.current_weights().len();
    e.run_str("(f)", "s2.scm").unwrap();
    // Same source spans, higher counts: the point set stays stable while
    // counts accumulate.
    assert_eq!(e.current_weights().len(), after_one);
}

#[test]
fn set_profile_replaces_and_merge_profile_averages() {
    let mut e = Engine::new();
    let p = pgmp_syntax::SourceObject::new("m.scm", 0, 1);
    e.set_profile(ProfileInformation::from_weights([(p, 1.0)], 1));
    assert_eq!(e.profile().weight(p), 1.0);
    e.set_profile(ProfileInformation::from_weights([(p, 0.2)], 1));
    assert_eq!(e.profile().weight(p), 0.2, "set_profile replaces");
    e.merge_profile(&ProfileInformation::from_weights([(p, 0.8)], 1));
    assert_eq!(e.profile().weight(p), 0.5, "merge averages");
    assert_eq!(e.profile().dataset_count(), 2);
}

#[test]
fn reset_profile_points_replays_generated_points() {
    let program = "
      (define-syntax (pt stx)
        (syntax-case stx ()
          [(_) #`(quote #,(datum->syntax stx
                   (format \"~a\" (make-profile-point))))]))
      (pt)";
    let mut e = Engine::new();
    let first = e.run_str(program, "r.scm").unwrap().to_string();
    let second = e.run_str(program, "r.scm").unwrap().to_string();
    assert_ne!(first, second, "same session continues the sequence");
    e.reset_profile_points();
    let replayed = e.run_str(program, "r.scm").unwrap().to_string();
    assert_eq!(first, replayed, "reset replays from the start");
}

#[test]
fn warnings_accumulate_and_drain() {
    let mut e = Engine::new();
    e.run_str(
        "(define-syntax (w stx)
           (syntax-case stx ()
             [(_ n) (begin (warn \"warning ~a\" (syntax->datum #'n)) #''ok)]))
         (w 1)",
        "w.scm",
    )
    .unwrap();
    e.run_str("(w 2)", "w.scm").unwrap();
    assert_eq!(e.take_warnings(), vec!["warning 1", "warning 2"]);
    assert!(e.take_warnings().is_empty(), "drained");
}

#[test]
fn macros_persist_across_runs_within_a_session() {
    let mut e = Engine::new();
    e.run_str(
        "(define-syntax (inc stx) (syntax-case stx () [(_ e) #'(+ 1 e)]))",
        "m.scm",
    )
    .unwrap();
    let v = e.run_str("(inc 41)", "m2.scm").unwrap();
    assert_eq!(v.to_string(), "42");
}

#[test]
fn globals_persist_across_runs_within_a_session() {
    let mut e = Engine::new();
    e.run_str("(define counter 0)", "g.scm").unwrap();
    e.run_str("(set! counter (add1 counter))", "g2.scm").unwrap();
    e.run_str("(set! counter (add1 counter))", "g2.scm").unwrap();
    assert_eq!(e.run_str("counter", "g3.scm").unwrap().to_string(), "2");
}

#[test]
fn instrumentation_can_be_toggled_between_runs() {
    let mut e = Engine::new();
    e.run_str("(define (f) 1)", "t.scm").unwrap();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str("(f)", "t2.scm").unwrap();
    let counted = e.counters().len();
    assert!(counted > 0);
    e.set_instrumentation(pgmp_profiler::ProfileMode::Off);
    e.run_str("(f)", "t2.scm").unwrap();
    assert_eq!(e.counters().len(), counted, "no new points when off");
}

#[test]
fn meta_programs_see_profile_updates_between_runs() {
    let probe = "
      (define-syntax (hotness stx)
        (syntax-case stx ()
          [(_ e) #`#,(datum->syntax stx (profile-query #'e))]))";
    let mut e = Engine::new();
    e.run_str(probe, "p.scm").unwrap();
    let before = e.run_str("(hotness (target))", "q.scm").unwrap();
    assert_eq!(before.to_string(), "0.0");
    // Install a profile covering the (target) span in q.scm and re-expand.
    let span_start = "(hotness (".len() as u32 - 1;
    let p = pgmp_syntax::SourceObject::new("q.scm", span_start, span_start + 8);
    e.set_profile(ProfileInformation::from_weights([(p, 0.9)], 1));
    let after = e.run_str("(hotness (target))", "q.scm").unwrap();
    assert_eq!(after.to_string(), "0.9");
}
