//! A broad behavioural suite for the object language: every primitive and
//! derived form the case studies and benchmarks rely on, exercised through
//! the full Engine pipeline (read → expand → eval).

use pgmp::Engine;

fn run(src: &str) -> String {
    let mut e = Engine::new();
    match e.run_str(src, "suite.scm") {
        Ok(v) => v.write_string(),
        Err(err) => panic!("program failed: {err}\n---\n{src}"),
    }
}

fn check(cases: &[(&str, &str)]) {
    for (src, expected) in cases {
        assert_eq!(&run(src), expected, "on {src}");
    }
}

#[test]
fn numeric_primitives() {
    check(&[
        ("(+ 1 2 3 4)", "10"),
        ("(- 10 1 2)", "7"),
        ("(* 2 3 4)", "24"),
        ("(/ 12 4)", "3"),
        ("(/ 1 4)", "0.25"),
        ("(quotient 17 5)", "3"),
        ("(remainder 17 5)", "2"),
        ("(modulo -7 3)", "2"),
        ("(abs -4)", "4"),
        ("(min 3 1 2)", "1"),
        ("(max 3 1 2)", "3"),
        ("(expt 2 8)", "256"),
        ("(sqr 7)", "49"),
        ("(sqrt 9.0)", "3.0"),
        ("(zero? 0)", "#t"),
        ("(positive? -1)", "#f"),
        ("(negative? -1)", "#t"),
        ("(even? 4)", "#t"),
        ("(odd? 4)", "#f"),
        ("(add1 41)", "42"),
        ("(sub1 43)", "42"),
        ("(floor 2.7)", "2.0"),
        ("(ceiling 2.2)", "3.0"),
        ("(round 2.5)", "3.0"),
        ("(truncate -2.7)", "-2.0"),
        ("(exact->inexact 2)", "2.0"),
        ("(inexact->exact 2.0)", "2"),
        ("(number? 3)", "#t"),
        ("(number? 'x)", "#f"),
        ("(integer? 3.0)", "#t"),
        ("(integer? 3.5)", "#f"),
        ("(= 2 2 2)", "#t"),
        ("(< 1 2 3)", "#t"),
        ("(<= 1 1 2)", "#t"),
        ("(> 3 2 1)", "#t"),
        ("(>= 3 3 1)", "#t"),
        ("(number->string 42)", "\"42\""),
        ("(string->number \"-7\")", "-7"),
        ("(string->number \"2.5\")", "2.5"),
    ]);
}

#[test]
fn list_primitives() {
    check(&[
        ("(cons 1 2)", "(1 . 2)"),
        ("(car '(1 2))", "1"),
        ("(cdr '(1 2))", "(2)"),
        ("(cadr '(1 2 3))", "2"),
        ("(caddr '(1 2 3))", "3"),
        ("(cddr '(1 2 3))", "(3)"),
        ("(list 1 'a \"s\")", "(1 a \"s\")"),
        ("(length '(a b c))", "3"),
        ("(append '(1) '(2 3) '())", "(1 2 3)"),
        ("(reverse '(1 2 3))", "(3 2 1)"),
        ("(list-ref '(a b c) 1)", "b"),
        ("(list-tail '(a b c d) 2)", "(c d)"),
        ("(last '(1 2 3))", "3"),
        ("(take '(1 2 3 4) 2)", "(1 2)"),
        ("(iota 4)", "(0 1 2 3)"),
        ("(iota 3 10 5)", "(10 15 20)"),
        ("(memq 'b '(a b c))", "(b c)"),
        ("(member \"b\" '(\"a\" \"b\"))", "(\"b\")"),
        ("(assv 2 '((1 . a) (2 . b)))", "(2 . b)"),
        ("(pair? '(1))", "#t"),
        ("(pair? '())", "#f"),
        ("(null? '())", "#t"),
        ("(list? '(1 2))", "#t"),
        ("(list? '(1 . 2))", "#f"),
        ("(map add1 '(1 2 3))", "(2 3 4)"),
        ("(map + '(1 2) '(10 20))", "(11 22)"),
        ("(filter even? '(1 2 3 4))", "(2 4)"),
        ("(fold-left - 0 '(1 2 3))", "-6"),
        ("(fold-right - 0 '(1 2 3))", "2"),
        ("(sort '(3 1 2) <)", "(1 2 3)"),
        ("(sort-by '(3 -1 2) < abs)", "(-1 2 3)"),
        ("(let ([p '(1 2)]) (list (list-copy p) p))", "((1 2) (1 2))"),
        ("((curry + 1 2) 3 4)", "10"),
        ("(apply max '(3 9 2))", "9"),
        ("(define l (list 1 2)) (set-car! l 9) l", "(9 2)"),
        ("(define l (list 1 2)) (set-cdr! l '(8)) l", "(1 8)"),
    ]);
}

#[test]
fn string_and_char_primitives() {
    check(&[
        ("(string-length \"hello\")", "5"),
        ("(string-ref \"abc\" 1)", "#\\b"),
        ("(substring \"hello\" 1 3)", "\"el\""),
        ("(string-append \"foo\" \"bar\")", "\"foobar\""),
        ("(string=? \"a\" \"a\" \"a\")", "#t"),
        ("(string<? \"abc\" \"abd\")", "#t"),
        ("(string-contains? \"hello world\" \"lo w\")", "#t"),
        ("(string-upcase \"aBc\")", "\"ABC\""),
        ("(string-downcase \"aBc\")", "\"abc\""),
        ("(string->list \"ab\")", "(#\\a #\\b)"),
        ("(list->string '(#\\h #\\i))", "\"hi\""),
        ("(make-string 3 #\\z)", "\"zzz\""),
        ("(string #\\a #\\b)", "\"ab\""),
        ("(symbol->string 'foo)", "\"foo\""),
        ("(string->symbol \"bar\")", "bar"),
        ("(char=? #\\a #\\a)", "#t"),
        ("(char<? #\\a #\\b)", "#t"),
        ("(char->integer #\\A)", "65"),
        ("(integer->char 97)", "#\\a"),
        ("(char-alphabetic? #\\x)", "#t"),
        ("(char-numeric? #\\5)", "#t"),
        ("(char-whitespace? #\\tab)", "#t"),
        ("(char-upcase #\\a)", "#\\A"),
        ("(char-downcase #\\A)", "#\\a"),
    ]);
}

#[test]
fn vector_primitives() {
    check(&[
        ("(vector 1 2 3)", "#(1 2 3)"),
        ("(make-vector 2 'x)", "#(x x)"),
        ("(vector-length #(1 2))", "2"),
        ("(vector-ref #(a b c) 2)", "c"),
        ("(define v (vector 1 2)) (vector-set! v 0 9) v", "#(9 2)"),
        ("(define v (vector 1 2)) (vector-fill! v 0) v", "#(0 0)"),
        ("(vector->list #(1 2))", "(1 2)"),
        ("(list->vector '(1 2))", "#(1 2)"),
        ("(vector-map sqr #(1 2 3))", "#(1 4 9)"),
        ("(vector? #(1))", "#t"),
        ("(vector? '(1))", "#f"),
    ]);
}

#[test]
fn hashtable_primitives() {
    check(&[
        (
            "(define h (make-eq-hashtable))
             (hashtable-set! h 'a 1)
             (hashtable-set! h 'b 2)
             (list (hashtable-ref h 'a 0)
                   (hashtable-ref h 'z 99)
                   (hashtable-size h)
                   (hashtable-contains? h 'b))",
            "(1 99 2 #t)",
        ),
        (
            "(define h (make-eq-hashtable))
             (hashtable-set! h 'a 1)
             (hashtable-delete! h 'a)
             (hashtable-contains? h 'a)",
            "#f",
        ),
        (
            "(define h (make-eq-hashtable))
             (hashtable-set! h 'b 2) (hashtable-set! h 'a 1)
             (hashtable-keys h)",
            "(a b)",
        ),
        (
            "(define h (make-eq-hashtable))
             (hashtable-update! h 'n add1 0)
             (hashtable-update! h 'n add1 0)
             (hashtable-ref h 'n #f)",
            "2",
        ),
        (
            "(define h (make-eq-hashtable))
             (hashtable-set! h 'x 1)
             (hashtable->alist h)",
            "((x . 1))",
        ),
    ]);
}

#[test]
fn equality_and_predicates() {
    check(&[
        ("(eq? 'a 'a)", "#t"),
        ("(eqv? 1.5 1.5)", "#t"),
        ("(equal? '(1 (2)) '(1 (2)))", "#t"),
        ("(equal? \"ab\" \"ab\")", "#t"),
        ("(eq? \"ab\" \"ab\")", "#f"),
        ("(boolean? #f)", "#t"),
        ("(symbol? 'x)", "#t"),
        ("(procedure? car)", "#t"),
        ("(procedure? 'car)", "#f"),
        ("(not #f)", "#t"),
        ("(not 0)", "#f"),
    ]);
}

#[test]
fn binding_and_control_forms() {
    check(&[
        ("(let ([x 2]) (let ([x 3] [y x]) (list x y)))", "(3 2)"),
        ("(let* ([x 2] [y (* x x)]) (list x y))", "(2 4)"),
        ("(letrec* ([f (lambda (n) (if (zero? n) 1 (* n (f (sub1 n)))))]) (f 5))", "120"),
        ("(define x 1) (begin (set! x 2) (set! x (+ x 1))) x", "3"),
        ("(when (= 1 1) 'a 'b)", "b"),
        ("(unless (= 1 2) 'a 'b)", "b"),
        ("(cond [(memv 2 '(1 2 3))] [else 'no])", "(2 3)"),
        ("(case (* 2 3) [(2 3 5 7) 'prime] [(1 4 6 8 9) 'composite])", "composite"),
        ("(and)", "#t"),
        ("(or (and 1 #f) 'fallback)", "fallback"),
    ]);
}

#[test]
fn deep_and_mutual_recursion() {
    check(&[
        // Ackermann (small) — non-tail recursion through the Rust stack.
        (
            "(define (ack m n)
               (cond [(zero? m) (add1 n)]
                     [(zero? n) (ack (sub1 m) 1)]
                     [else (ack (sub1 m) (ack m (sub1 n)))]))
             (ack 2 3)",
            "9",
        ),
        // Mutual recursion via internal defines.
        (
            "(define (parity n)
               (define (ev? n) (if (zero? n) 'even (od? (sub1 n))))
               (define (od? n) (if (zero? n) 'odd (ev? (sub1 n))))
               (ev? n))
             (list (parity 10) (parity 7))",
            "(even odd)",
        ),
        // Deep tail loop with an accumulator pair.
        (
            "(let loop ([i 0] [acc '()])
               (if (= i 5) (reverse acc) (loop (add1 i) (cons (* i i) acc))))",
            "(0 1 4 9 16)",
        ),
    ]);
}

#[test]
fn closures_capture_by_reference() {
    check(&[
        (
            "(define (make-counter)
               (let ([n 0])
                 (cons (lambda () (set! n (add1 n)) n)
                       (lambda () n))))
             (define c (make-counter))
             ((car c)) ((car c))
             ((cdr c))",
            "2",
        ),
        (
            "(define fs
               (map (lambda (i) (lambda () i)) '(1 2 3)))
             (map (lambda (f) (f)) fs)",
            "(1 2 3)",
        ),
    ]);
}

#[test]
fn quasiquote_corners() {
    check(&[
        ("`()", "()"),
        ("`(,@'() 1)", "(1)"),
        ("`(0 ,@'(1 2) ,(+ 1 2) 4)", "(0 1 2 3 4)"),
        ("`#(1 2)", "#(1 2)"),
        ("(let ([x 1]) `(a . ,x))", "(a . 1)"),
        ("`(1 `(2 ,(3)))", "(1 (quasiquote (2 (unquote (3)))))"),
    ]);
}

#[test]
fn output_primitives() {
    let mut e = Engine::new();
    e.run_str(
        "(display '(1 \"two\" #\\3))
         (newline)
         (write '(1 \"two\" #\\3))
         (printf \"~%~a|~s|~d~%\" \"x\" \"x\" 7)",
        "out.scm",
    )
    .unwrap();
    assert_eq!(
        e.take_output(),
        "(1 two 3)\n(1 \"two\" #\\3)\nx|\"x\"|7\n"
    );
}

#[test]
fn deterministic_random() {
    check(&[(
        "(random-seed! 7)
         (define a (list (random 100) (random 100)))
         (random-seed! 7)
         (define b (list (random 100) (random 100)))
         (equal? a b)",
        "#t",
    )]);
}

#[test]
fn error_primitive_and_assert() {
    let mut e = Engine::new();
    let err = e.run_str("(error \"bad thing\" 42)", "err.scm").unwrap_err();
    assert!(err.to_string().contains("bad thing 42"));
    let err = e.run_str("(assert (= 1 2))", "err.scm").unwrap_err();
    assert!(err.to_string().contains("assertion failed"));
    assert!(e.run_str("(assert (= 1 1))", "err.scm").is_ok());
}
