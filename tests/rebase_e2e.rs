//! E19 — stale-profile rebasing end to end (docs/EXPERIMENTS.md §E19).
//!
//! The acceptance claim: under a 10-form insert/rename edit script,
//! rebasing retains ≥ 80% of the profile's weight, where positional
//! matching (the pre-rebase status quo — a point survives only if its
//! exact byte span still exists in the edited source) retains ~0%. And
//! the rebased profile composes with the incremental engine: a warm-start
//! recompile after the edit re-expands only the genuinely changed forms,
//! with profile-dependent macro forms reusing their cached expansions
//! because their read sets re-keyed through the same alignment.

use pgmp::{IncrementalConfig, IncrementalEngine};
use pgmp_profiler::{rebase, ProfileInformation, RebaseConfig, SlotMap, StoredProfile};
use pgmp_reader::read_str;
use pgmp_syntax::{SourceObject, Syntax, SyntaxBody};

const FILE: &str = "e19.scm";

const IF_R: &str = "(define-syntax (if-r stx)
  (syntax-case stx ()
    [(_ test t-branch f-branch)
     (if (< (profile-query #'t-branch) (profile-query #'f-branch))
         #'(if (not test) f-branch t-branch)
         #'(if test t-branch f-branch))]))";

/// The base program: the `if-r` macro, then 11 defines — even indices are
/// profile-dependent (`if-r` decides their branch order from the profile),
/// odd indices are plain arithmetic.
fn base_forms() -> Vec<String> {
    let mut forms = vec![IF_R.to_string()];
    for i in 0..11 {
        if i % 2 == 0 {
            forms.push(format!("(define (g{i} x) (if-r (< x {i}) 'lo{i} 'hi{i}))"));
        } else {
            forms.push(format!("(define (h{i} x) (+ (* x {i}) 1))"));
        }
    }
    forms
}

/// The 10-op edit script of the E19 claim: 6 inserted toplevel forms
/// (one at the very top, so *every* old byte offset shifts) + 4 renamed
/// defines (same-length names, so the decay measured is structural, not
/// positional).
fn edited_forms() -> Vec<String> {
    let mut forms = base_forms();
    for t in [1usize, 3, 5, 7] {
        let pos = t + 1; // forms[0] is if-r
        forms[pos] = forms[pos].replace(&format!("(h{t} "), &format!("(q{t} "));
    }
    for (k, pos) in [0usize, 2, 5, 9, 12, 15].into_iter().enumerate() {
        forms.insert(pos.min(forms.len()), format!("(define (z{k} a) (list a a {k}))"));
    }
    forms
}

fn every_span(stx: &Syntax, out: &mut Vec<SourceObject>) {
    if let Some(s) = stx.source {
        out.push(s);
    }
    match &stx.body {
        SyntaxBody::Atom(_) => {}
        SyntaxBody::List(xs) | SyntaxBody::Vector(xs) => {
            for x in xs {
                every_span(x, out);
            }
        }
        SyntaxBody::Improper(xs, t) => {
            for x in xs {
                every_span(x, out);
            }
            every_span(t, out);
        }
    }
}

/// A realistic profile over the base program: weight on every toplevel
/// form's root span, plus the two branch points of each `if-r` body (the
/// spans `profile-query` is actually handed during expansion), skewed so
/// every `g` form performs a real branch reorder.
fn profile_for(src: &str) -> StoredProfile {
    let forms = read_str(src, FILE).expect("base program reads");
    let mut weights: Vec<(SourceObject, f64)> = Vec::new();
    for (i, f) in forms.iter().enumerate() {
        weights.push((f.source.unwrap(), 0.5 + i as f64 / 100.0));
        if let Some((t, fp)) = branch_points(f) {
            weights.push((t, 0.2));
            weights.push((fp, 0.9));
        }
    }
    let points: Vec<SourceObject> = weights.iter().map(|(p, _)| *p).collect();
    let slots = SlotMap::from_points(points).expect("distinct points");
    StoredProfile::v2(ProfileInformation::from_weights(weights, 1), Some(slots))
}

/// `(t-branch, f-branch)` spans of a `(define (g i x) (if-r test t f))`.
fn branch_points(form: &Syntax) -> Option<(SourceObject, SourceObject)> {
    let body = form.as_list()?.get(2)?.as_list()?;
    if body.len() == 4 && body[0].as_symbol().map(|s| s.as_str() == "if-r") == Some(true) {
        Some((body[2].source?, body[3].source?))
    } else {
        None
    }
}

#[test]
fn e19_rebase_retains_80_percent_where_positional_matching_retains_none() {
    let old_src = base_forms().join("\n");
    let new_src = edited_forms().join("\n");
    let old = profile_for(&old_src);

    // Positional baseline: a point survives only if its exact span still
    // exists somewhere in the edited source. The top-of-file insert
    // shifts everything, so this is the "~0%" of the claim.
    let mut new_spans = Vec::new();
    for f in read_str(&new_src, FILE).unwrap().iter() {
        every_span(f, &mut new_spans);
    }
    let (mut positional, mut total) = (0.0, 0.0);
    for (p, w) in old.info.iter() {
        total += w;
        if new_spans.iter().any(|s| s.bfp == p.bfp && s.efp == p.efp) {
            positional += w;
        }
    }
    assert!(total > 0.0);
    assert!(
        positional / total < 0.05,
        "positional matching should retain ~0%, got {:.1}%",
        100.0 * positional / total
    );

    let r = rebase(&old, &old_src, &new_src, FILE, &RebaseConfig::default()).unwrap();
    let frac = r.report.retained_weight_fraction();
    eprintln!(
        "E19: retained {:.1}% of profile weight ({} exact, {} shifted, {} structural, {} dead) \
         vs {:.1}% positional",
        100.0 * frac,
        r.report.exact,
        r.report.shifted,
        r.report.structural,
        r.report.dead,
        100.0 * positional / total,
    );
    assert!(frac >= 0.8, "E19 acceptance: retained {:.3} < 0.8", frac);
    assert_eq!(r.report.dead, 0, "nothing in this script dies: {:?}", r.outcomes);
    assert!(r.report.shifted > 0, "the top insert shifts surviving forms");
    assert_eq!(r.report.structural, 4, "the four renamed defines decay");

    // The decayed confidences round-trip through the stored text.
    let text = r.profile.store_to_string();
    assert!(text.contains("(confidence "));
    let back = StoredProfile::load_from_str(&text).unwrap();
    assert_eq!(back.info, r.profile.info);
    assert_eq!(back.confidence, r.profile.confidence);
}

#[test]
fn e19_warm_start_after_edit_reexpands_only_changed_forms() {
    let old_src = base_forms().join("\n");
    let new_src = edited_forms().join("\n");
    let old = profile_for(&old_src);

    // Prime the incremental cache against the old source and profile.
    let mut incr = IncrementalEngine::new(&old_src, FILE, IncrementalConfig::default()).unwrap();
    let first = incr.compile(&old.info).unwrap();
    assert_eq!(first.stats.reexpanded, first.stats.total_forms);

    // Rebase the profile across the edit, then recompile the edited
    // source under the rebased weights.
    let rebased = rebase(&old, &old_src, &new_src, FILE, &RebaseConfig::default()).unwrap();
    incr.set_source(&new_src, FILE).unwrap();
    let unit = incr.compile(&rebased.profile.info).unwrap();

    // 18 forms: 12 carried from the old program minus the 4 renamed ones
    // reuse their cached expansions; the 4 renames + 6 inserts re-expand.
    // In particular every profile-dependent `if-r` form reuses: its read
    // set re-keyed through the same alignment the profile rebased
    // through, and the shifted weights are unchanged.
    assert_eq!(unit.stats.total_forms, 18);
    assert_eq!(
        unit.stats.reused, 8,
        "if-r + 6 g-forms + h9 must carry: {:?}",
        unit.stats
    );
    assert_eq!(unit.stats.reexpanded, 10);

    // And the expansion is exactly what a cold engine would produce.
    // (CFGs are not compared: carried forms keep their old
    // instrumentation spans until their next re-expansion — the
    // documented limitation in docs/REBASE.md — and canonical CFGs
    // embed those spans.)
    let mut cold = IncrementalEngine::new(&new_src, FILE, IncrementalConfig::default()).unwrap();
    let cold_unit = cold.compile(&rebased.profile.info).unwrap();
    assert_eq!(unit.expansion, cold_unit.expansion);
}
