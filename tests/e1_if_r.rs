//! E1 — §2, Figures 1 & 2: the `if-r` running example.
//!
//! An email classifier marks PLDI mail important and everything else spam.
//! When the training inbox is mostly spam, `if-r` must generate Figure 2's
//! output: the test negated and the branches swapped.

use pgmp_case_studies::{two_pass, Lib};

fn classifier_program(important: usize, spam: usize) -> String {
    format!(
        r#"
        (define (subject-contains email s) (string-contains? email s))
        (define (flag email tag) tag)
        (define (classify email)
          (if-r (subject-contains email "PLDI")
            (flag email 'important)
            (flag email 'spam)))
        (define (run-inbox)
          (let loop ([i 0] [spams 0])
            (cond
              [(< i {important}) (classify "Re: PLDI reviews") (loop (add1 i) spams)]
              [(< i (+ {important} {spam}))
               (if (eqv? (classify "cheap pills") 'spam)
                   (loop (add1 i) (add1 spams))
                   (loop (add1 i) spams))]
              [else spams])))
        (run-inbox)
        "#
    )
}

#[test]
fn spam_heavy_inbox_swaps_branches() {
    // Figure 2's premise: important runs 5 times, spam 10 times.
    let program = classifier_program(5, 10);
    let result = two_pass(&[Lib::IfR], &program, "classify.scm").unwrap();
    assert_eq!(result.training_result, "10");
    assert_eq!(result.optimized_result, "10", "optimization must not change behaviour");
    // Figure 2: the generated code negates the test and swaps branches.
    assert!(
        result.expansion_text.contains(
            "(if (not (subject-contains email \"PLDI\")) \
             (flag email (quote spam)) (flag email (quote important)))"
        ),
        "expansion:\n{}",
        result.expansion_text
    );
}

#[test]
fn important_heavy_inbox_keeps_original_order() {
    let program = classifier_program(10, 5);
    let result = two_pass(&[Lib::IfR], &program, "classify.scm").unwrap();
    assert!(
        result.expansion_text.contains(
            "(if (subject-contains email \"PLDI\") \
             (flag email (quote important)) (flag email (quote spam)))"
        ),
        "expansion:\n{}",
        result.expansion_text
    );
}

#[test]
fn without_profile_data_if_r_is_the_identity() {
    // Both branches weigh 0 → 0 >= 0 → original order.
    let mut engine = pgmp_case_studies::engine_with(&[Lib::IfR]).unwrap();
    let expansion = engine
        .expand_str("(define (f x) (if-r (zero? x) 'a 'b))", "u.scm")
        .unwrap();
    assert_eq!(
        expansion[0].to_datum().to_string(),
        "(define (f x) (if (zero? x) (quote a) (quote b)))"
    );
}

#[test]
fn if_r_runs_correctly_in_both_orders() {
    // Exhaustive behaviour check: for both profile shapes, classify agrees
    // with a plain if on every input.
    for (important, spam) in [(5, 10), (10, 5)] {
        let program = format!(
            "{}\n(list (classify \"PLDI deadline\") (classify \"buy now\"))",
            classifier_program(important, spam)
        );
        let result = two_pass(&[Lib::IfR], &program, "classify.scm").unwrap();
        assert_eq!(result.optimized_result, "(important spam)");
    }
}

#[test]
fn weights_match_figure_1_premise() {
    // After the training run, the spam branch's weight must exceed the
    // important branch's weight.
    let program = classifier_program(5, 10);
    let result = two_pass(&[Lib::IfR], &program, "classify.scm").unwrap();
    // Find the weights of the two flag expressions by scanning the
    // collected profile for the branch source spans.
    let text = program;
    let important_off = text.find("(flag email 'important)").unwrap() as u32;
    let spam_off = text.find("(flag email 'spam)").unwrap() as u32;
    let mut important_w = None;
    let mut spam_w = None;
    for (p, w) in result.weights.iter() {
        if p.file.as_str() == "classify.scm" {
            if p.bfp == important_off {
                important_w = Some(w);
            }
            if p.bfp == spam_off {
                spam_w = Some(w);
            }
        }
    }
    let (iw, sw) = (important_w.unwrap(), spam_w.unwrap());
    assert!(sw > iw, "spam branch ({sw}) must outweigh important ({iw})");
    assert!((sw / iw - 2.0).abs() < 1e-9, "10 spam vs 5 important = 2x");
}
