//! Docs link-check: every relative markdown link in the repo's normative
//! docs must point at a file that exists. Guards the docs index in
//! README.md and the cross-link web between `docs/*.md` against drift
//! (a renamed doc, a dropped section file) without any network access —
//! external `http(s)` links are ignored.

use std::path::{Path, PathBuf};

/// Every `](target)` of an inline markdown link in `text`, with the
/// optional `#anchor` suffix stripped. Good enough for the house style
/// (no reference-style links, no titles inside the parens).
fn relative_link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(open) = text[i..].find("](") {
        let start = i + open + 2;
        let Some(close) = text[start..].find(')') else {
            break;
        };
        let target = &text[start..start + close];
        i = start + close;
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        let path = target.split('#').next().unwrap_or(target);
        if !path.is_empty() {
            out.push(path.to_string());
        }
    }
    out
}

fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root.join("docs"))
        .expect("docs/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    for top in [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "ROADMAP.md",
        "RELEASES.md",
        "PAPERS.md",
    ] {
        let p = root.join(top);
        if p.exists() {
            files.push(p);
        }
    }
    files.sort();
    files
}

#[test]
fn every_relative_doc_link_resolves() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0;
    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file).expect("doc reads");
        let dir = file.parent().unwrap();
        for target in relative_link_targets(&text) {
            checked += 1;
            let resolved = dir.join(&target);
            if !resolved.exists() {
                broken.push(format!(
                    "{} -> {target}",
                    file.strip_prefix(root).unwrap().display()
                ));
            }
        }
    }
    assert!(
        checked > 10,
        "link check found only {checked} links — is the parser broken?"
    );
    assert!(broken.is_empty(), "broken doc links:\n  {}", broken.join("\n  "));
}

#[test]
fn the_normative_rebase_doc_is_cross_linked() {
    // The rebase matcher's normative spec must exist and be reachable
    // from the user-facing surfaces: the README docs index and the
    // format spec it extends.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(root.join("docs/REBASE.md").exists());
    for (file, needle) in [
        ("README.md", "REBASE.md"),
        ("docs/PROFILE_FORMAT.md", "REBASE.md"),
        ("docs/GUIDE.md", "rebase"),
    ] {
        let text = std::fs::read_to_string(root.join(file)).expect("doc reads");
        assert!(text.contains(needle), "{file} must reference {needle}");
    }
}
