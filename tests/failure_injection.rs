//! Failure injection: malformed inputs, stale profiles, and wrong-type
//! uses of the API must produce errors (or graceful degradation), never
//! panics or silent corruption.

use pgmp::{Engine, Error};
use pgmp_case_studies::{engine_with, two_pass, Lib};
use pgmp_profiler::{ProfileInformation, ProfileMode};
use pgmp_syntax::SourceObject;

// ---------------------------------------------------------------------------
// Malformed profile files
// ---------------------------------------------------------------------------

#[test]
fn malformed_profile_files_are_rejected() {
    let dir = std::env::temp_dir().join("pgmp-failinj");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, contents) in [
        ("truncated.pgmp", "(pgmp-profile (version 1)"),
        ("wrong-head.pgmp", "(totally-not-a-profile)"),
        ("bad-weight.pgmp", "(pgmp-profile (point \"f\" 0 1 7.0))"),
        ("neg-weight.pgmp", "(pgmp-profile (point \"f\" 0 1 -0.2))"),
        ("non-string.pgmp", "(pgmp-profile (point f 0 1 0.5))"),
        ("binaryish.pgmp", "\u{0}\u{1}\u{2}"),
        ("empty.pgmp", ""),
        ("two-forms.pgmp", "(pgmp-profile) (pgmp-profile)"),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        let mut e = Engine::new();
        assert!(
            matches!(e.load_profile(&path), Err(Error::Profile(_))),
            "{name} should be rejected"
        );
    }
}

#[test]
fn scheme_level_load_of_bad_profile_is_a_catchable_error() {
    let dir = std::env::temp_dir().join("pgmp-failinj2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.pgmp");
    std::fs::write(&path, "(nope)").unwrap();
    let mut e = Engine::new();
    let err = e
        .run_str(
            &format!("(load-profile \"{}\")", path.to_str().unwrap()),
            "bad.scm",
        )
        .unwrap_err();
    assert!(err.to_string().contains("load-profile"));
}

// ---------------------------------------------------------------------------
// Stale profiles
// ---------------------------------------------------------------------------

#[test]
fn stale_profile_for_renamed_file_degrades_to_unprofiled_behaviour() {
    // Weights recorded for positions in another file: every query returns
    // 0, so meta-programs behave exactly as with no data.
    let stale = ProfileInformation::from_weights(
        [
            (SourceObject::new("old-name.scm", 100, 120), 1.0),
            (SourceObject::new("old-name.scm", 130, 150), 0.5),
        ],
        1,
    );
    let mut engine = engine_with(&[Lib::IfR]).unwrap();
    engine.set_profile(stale);
    let out = engine
        .expand_str("(define (f x) (if-r (zero? x) 'a 'b))", "new-name.scm")
        .unwrap();
    assert_eq!(
        out[0].to_datum().to_string(),
        "(define (f x) (if (zero? x) (quote a) (quote b)))",
        "stale profile must act like no profile"
    );
}

#[test]
fn stale_profile_after_edit_still_compiles_and_runs() {
    // Train on one version of the program, then compile an edited version
    // (shifted positions) with the old profile. Nothing may crash and
    // semantics hold.
    let v1 = "(define (f n) (if-r (< n 5) 'lo 'hi))
              (let loop ([i 0]) (unless (= i 40) (f i) (loop (add1 i))))
              (f 9)";
    let v2 = ";; an extra comment line shifts every source position
              (define (f n) (if-r (< n 5) 'lo 'hi))
              (let loop ([i 0]) (unless (= i 40) (f i) (loop (add1 i))))
              (f 9)";
    let mut train = engine_with(&[Lib::IfR]).unwrap();
    train.set_instrumentation(ProfileMode::EveryExpression);
    train.run_str(v1, "prog.scm").unwrap();
    let mut opt = engine_with(&[Lib::IfR]).unwrap();
    opt.set_profile(train.current_weights());
    let v = opt.run_str(v2, "prog.scm").unwrap();
    assert_eq!(v.to_string(), "hi");
}

// ---------------------------------------------------------------------------
// API misuse from the object language
// ---------------------------------------------------------------------------

#[test]
fn api_type_errors_are_reported() {
    let cases = [
        // annotate-expr wants (syntax, point).
        "(define-syntax (m stx) (syntax-case stx () [(_) (annotate-expr 42 (make-profile-point))])) (m)",
        "(define-syntax (m stx) (syntax-case stx () [(_) (annotate-expr #'x 42)])) (m)",
        // profile-query wants syntax or a point.
        "(define-syntax (m stx) (syntax-case stx () [(_) (begin (profile-query 42) #'1)])) (m)",
        // store-profile wants a string.
        "(store-profile 42)",
        // make-profile-point base must be syntax or a point.
        "(define-syntax (m stx) (syntax-case stx () [(_) (begin (make-profile-point 5) #'1)])) (m)",
    ];
    for src in cases {
        let mut e = Engine::new();
        assert!(e.run_str(src, "misuse.scm").is_err(), "should fail: {src}");
    }
}

#[test]
fn store_profile_to_unwritable_path_errors() {
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str("(+ 1 1)", "x.scm").unwrap();
    assert!(e.store_profile("/nonexistent-dir/deep/profile.pgmp").is_err());
}

// ---------------------------------------------------------------------------
// Case-study misuse
// ---------------------------------------------------------------------------

#[test]
fn object_system_reports_missing_methods() {
    let mut e = engine_with(&[Lib::ObjectSystem]).unwrap();
    let err = e
        .run_str(
            "(class C ((v 0)) (define-method (get this) 1))
             (dynamic-dispatch (new C) 'no-such-method)",
            "oo.scm",
        )
        .unwrap_err();
    assert!(err.to_string().contains("no method"));
}

#[test]
fn object_system_arity_errors_surface() {
    let mut e = engine_with(&[Lib::ObjectSystem]).unwrap();
    let err = e
        .run_str(
            "(class C ((v 0)) (define-method (get this extra) 1))
             (dynamic-dispatch (new C) 'get)",
            "oo.scm",
        )
        .unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
}

#[test]
fn optimized_method_sites_handle_objects_of_unprofiled_classes() {
    // A class defined *after* training: the optimized site has no clause
    // for it, so dynamic dispatch must take over.
    let training = "
      (class A ((v 1)) (define-method (tag this) 'a))
      (define (site o) (method o tag))
      (site (new A)) (site (new A))";
    let result = two_pass(&[Lib::ObjectSystem], training, "late.scm").unwrap();
    assert_eq!(result.optimized_result, "a");
}

#[test]
fn exclusive_cond_with_non_exclusive_clauses_takes_profile_order() {
    // The programmer *asserts* mutual exclusivity; when they lie, the
    // reordering is visible. This is documented behaviour (the whole point
    // of the contract), not a crash.
    let program = "
      (define (f n)
        (exclusive-cond
          [(> n 0) 'first-clause]
          [(> n -10) 'second-clause]))
      (let loop ([i 0]) (unless (= i 30) (f 5) (loop (add1 i))))
      (f 5)";
    let result = two_pass(&[Lib::ExclusiveCond], program, "lie.scm").unwrap();
    // Both passes return SOME clause; with overlapping clauses the answer
    // may legitimately change order, but it must still be one of the two.
    assert!(["first-clause", "second-clause"]
        .contains(&result.optimized_result.as_str()));
}

#[test]
fn fuel_limits_runaway_programs() {
    let mut e = Engine::new();
    // Small budget: non-tail recursion also consumes Rust stack, so the
    // fuel must trip well before the stack would.
    e.interp_mut().set_fuel(Some(2_000));
    let err = e
        .run_str("(define (f) (cons 1 (f))) (f)", "loop.scm")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fuel"), "{msg}");
}

#[test]
fn reader_errors_carry_positions() {
    let mut e = Engine::new();
    let err = e.run_str("(a b", "pos.scm").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("pos.scm"), "{msg}");
}

#[test]
fn expansion_errors_carry_positions() {
    let mut e = Engine::new();
    let err = e.run_str("\n\n  (if)", "pos2.scm").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("pos2.scm:4"), "{msg}");
}
