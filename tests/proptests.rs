//! Property-based tests over the whole stack.

use pgmp::Engine;
use pgmp_bytecode::{
    canonical_form, compile_chunk, optimize_layout, BlockCounters, DispatchMode, FusionPlan, Vm,
};
use pgmp_case_studies::{two_pass, Lib};
use pgmp_eval::{install_primitives, Interp, Value};
use pgmp_expander::{install_expander_support, Expander};
use pgmp_profiler::{Dataset, ProfileInformation};
use pgmp_reader::read_str;
use pgmp_syntax::{Datum, SourceObject};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Datum generator + read/print round trip
// ---------------------------------------------------------------------------

fn arb_symbol() -> impl Strategy<Value = Datum> {
    // Reader-safe symbol names.
    "[a-z][a-z0-9?!*<>=-]{0,8}".prop_map(|s| Datum::sym(&s))
}

fn arb_atom() -> impl Strategy<Value = Datum> {
    prop_oneof![
        any::<i64>().prop_map(Datum::Int),
        any::<bool>().prop_map(Datum::Bool),
        arb_symbol(),
        "[ -~]{0,10}".prop_map(|s| Datum::string(&s)),
        proptest::char::range('a', 'z').prop_map(Datum::Char),
        (-1000i64..1000).prop_map(|n| Datum::Float(n as f64 / 8.0)),
        Just(Datum::Nil),
    ]
}

fn arb_datum() -> impl Strategy<Value = Datum> {
    arb_atom().prop_recursive(4, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Datum::list),
            proptest::collection::vec(inner.clone(), 0..4)
                .prop_map(|v| Datum::Vector(v.into())),
            (proptest::collection::vec(inner.clone(), 1..4), inner)
                .prop_map(|(elems, tail)| Datum::improper_list(elems, tail)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn datum_print_read_round_trip(d in arb_datum()) {
        let text = d.to_string();
        let forms = read_str(&text, "prop.scm").unwrap();
        prop_assert_eq!(forms.len(), 1, "printed form `{}` reads as one datum", text);
        let back = forms[0].to_datum();
        // Improper lists ending in nil normalize to proper lists on read,
        // so compare printed forms rather than structures.
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn syntax_round_trip_via_from_datum(d in arb_datum()) {
        let stx = pgmp_syntax::Syntax::from_datum(&d, None);
        prop_assert_eq!(stx.to_datum().to_string(), d.to_string());
    }
}

// ---------------------------------------------------------------------------
// Weight algebra
// ---------------------------------------------------------------------------

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u32..40, 0u64..1_000_000), 0..20).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(i, c)| (SourceObject::new("prop.scm", i, i + 1), c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn weights_are_always_in_unit_interval(d in arb_dataset()) {
        let w = ProfileInformation::from_dataset(&d);
        for (_, weight) in w.iter() {
            prop_assert!((0.0..=1.0).contains(&weight));
        }
        if d.max_count() > 0 {
            let max = w.iter().map(|(_, x)| x).fold(0.0f64, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-12, "max weight normalizes to 1");
        }
    }

    #[test]
    fn merge_of_single_datasets_is_commutative(a in arb_dataset(), b in arb_dataset()) {
        let wa = ProfileInformation::from_dataset(&a);
        let wb = ProfileInformation::from_dataset(&b);
        let ab = wa.merge(&wb);
        let ba = wb.merge(&wa);
        for (p, w) in ab.iter() {
            prop_assert!((ba.weight(p) - w).abs() < 1e-12);
        }
        prop_assert_eq!(ab.dataset_count(), ba.dataset_count());
    }

    #[test]
    fn merge_preserves_unit_interval(a in arb_dataset(), b in arb_dataset(), c in arb_dataset()) {
        let merged = ProfileInformation::from_datasets(&[a, b, c]);
        for (_, w) in merged.iter() {
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn store_load_round_trip(d in arb_dataset()) {
        let w = ProfileInformation::from_dataset(&d);
        let text = w.store_to_string();
        let back = ProfileInformation::load_from_str(&text).unwrap();
        prop_assert_eq!(back, w);
    }
}

// ---------------------------------------------------------------------------
// Tree-walker vs. VM agreement on generated programs
// ---------------------------------------------------------------------------

/// Generates small arithmetic/conditional expressions (as source text)
/// whose evaluation cannot error: the integer domain is kept tiny and
/// division is excluded.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return prop_oneof![
            (-20i64..20).prop_map(|n| n.to_string()),
            Just("x".to_owned()),
            Just("y".to_owned()),
        ]
        .boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("(- {a} {b})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("(min {a} {b})")),
        (sub.clone(), sub.clone(), sub.clone())
            .prop_map(|(c, t, e)| format!("(if (< {c} 0) {t} {e})")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("(let ([x {a}]) (+ x {b}))")),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("((lambda (y) (- y {b})) {a})")),
        sub,
    ]
    .boxed()
}

/// One VM execution's observable footprint: the result plus everything the
/// differential oracle holds dispatch modes to — block-counter totals (as a
/// creation-order count sequence: absolute chunk ids differ between `Vm`
/// instances, but chunks are created in a deterministic order) and the
/// mode-independent metrics.
#[derive(Debug, PartialEq, Eq)]
struct VmFootprint {
    result: String,
    block_counts: Vec<u64>,
    blocks_executed: u64,
    fallthroughs: u64,
    taken_jumps: u64,
    calls: u64,
}

fn run_vm_mode(
    core: &[std::rc::Rc<pgmp_eval::Core>],
    dispatch: DispatchMode,
    fusion: FusionPlan,
) -> VmFootprint {
    let mut i = Interp::new();
    install_primitives(&mut i);
    install_expander_support(&mut i);
    let mut vm = Vm::new();
    vm.dispatch = dispatch;
    vm.set_fusion(fusion);
    let counters = BlockCounters::new();
    vm.set_block_profiling(counters.clone());
    let mut v = Value::Unspecified;
    for f in core {
        v = vm.run_core(&mut i, f).unwrap();
    }
    let mut snap: Vec<((u32, u32), u64)> = counters.snapshot().into_iter().collect();
    snap.sort_unstable();
    VmFootprint {
        result: v.write_string(),
        block_counts: snap.into_iter().map(|(_, c)| c).collect(),
        blocks_executed: vm.metrics.blocks_executed,
        fallthroughs: vm.metrics.fallthroughs,
        taken_jumps: vm.metrics.taken_jumps,
        calls: vm.metrics.calls,
    }
}

fn eval_both(src: &str) -> (String, String) {
    let program = format!("(define x 3) (define y -7) {src}");
    let forms = read_str(&program, "gen.scm").unwrap();
    let mut exp = Expander::new();
    let core = exp.expand_program(&forms).unwrap();
    let mut i1 = Interp::new();
    install_primitives(&mut i1);
    install_expander_support(&mut i1);
    let mut tree = Value::Unspecified;
    for f in &core {
        tree = i1.eval(f, &None).unwrap();
    }
    let vmv = run_vm_mode(&core, DispatchMode::Flat, FusionPlan::none());
    (tree.write_string(), vmv.result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vm_agrees_with_tree_walker(src in arb_expr(3)) {
        let (tree, vm) = eval_both(&src);
        prop_assert_eq!(tree, vm, "disagreement on {}", src);
    }

    // The dispatch-mode differential oracle: the match loop, the flat
    // stream, and the maximally fused flat stream must produce identical
    // results AND identical block-counter totals / transfer metrics.
    #[test]
    fn dispatch_modes_are_observationally_identical(src in arb_expr(3)) {
        let program = format!("(define x 3) (define y -7) {src}");
        let forms = read_str(&program, "gen.scm").unwrap();
        let mut exp = Expander::new();
        let core = exp.expand_program(&forms).unwrap();
        let reference = run_vm_mode(&core, DispatchMode::Match, FusionPlan::none());
        for fusion in [FusionPlan::none(), FusionPlan::all()] {
            let labels = fusion.labels();
            let got = run_vm_mode(&core, DispatchMode::Flat, fusion);
            prop_assert_eq!(
                &reference, &got,
                "match vs flat (fusion {:?}) diverge on {}", labels, src
            );
        }
    }

    #[test]
    fn layout_never_changes_results_or_cfg(src in arb_expr(3)) {
        let program = format!("(define x 3) (define y -7) {src}");
        let forms = read_str(&program, "gen.scm").unwrap();
        let mut exp = Expander::new();
        let core = exp.expand_program(&forms).unwrap();
        let last = core.last().unwrap();
        let chunk = compile_chunk(last);

        // Random-ish counts derived from src hash.
        let counters = BlockCounters::new();
        let mut h: u64 = 0xcbf29ce484222325;
        for b in src.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        for b in 0..chunk.block_count() as u32 {
            let count = h.rotate_left(b) % 100;
            for _ in 0..count {
                counters.increment(chunk.id, b);
            }
        }
        let optimized = optimize_layout(&chunk, &counters);
        prop_assert_eq!(canonical_form(&chunk), canonical_form(&optimized));

        let mut i = Interp::new();
        install_primitives(&mut i);
        install_expander_support(&mut i);
        for f in &core[..core.len() - 1] {
            i.eval(f, &None).unwrap();
        }
        let mut vm = Vm::new();
        let a = vm.run_chunk(&mut i, &chunk).unwrap().write_string();
        let b = vm.run_chunk(&mut i, &optimized).unwrap().write_string();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// exclusive-cond: any profile produces a correct, fully-ordered expansion
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn case_reordering_is_semantics_preserving(counts in proptest::collection::vec(1u32..40, 3..6)) {
        // Build a program that exercises each clause `counts[i]` times,
        // then check the optimized program classifies every key the same
        // way the unoptimized one does.
        let n = counts.len();
        let clauses: String = (0..n)
            .map(|i| format!("[({i}) 'k{i}]"))
            .collect::<Vec<_>>()
            .join(" ");
        let mut driver = String::new();
        for (i, c) in counts.iter().enumerate() {
            driver.push_str(&format!(
                "(let loop ([j 0]) (unless (= j {c}) (classify {i}) (loop (add1 j))))\n"
            ));
        }
        let program = format!(
            "(define (classify k) (case k {clauses} [else 'other]))
             {driver}
             (let loop ([k 0] [acc '()])
               (if (> k {n}) (reverse acc) (loop (add1 k) (cons (classify k) acc))))"
        );
        let result = two_pass(&[Lib::Case], &program, "prop-case.scm").unwrap();
        prop_assert_eq!(&result.training_result, &result.optimized_result);
        // And the hottest clause comes first in the expansion.
        let hottest = counts
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (**c, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap();
        let classify_line = result
            .expansion_text
            .lines()
            .find(|l| l.contains("define (classify"))
            .unwrap()
            .to_owned();
        let first_clause = classify_line.find("key-in?").unwrap();
        let hot_pos = classify_line.find(&format!("(quote k{hottest})")).unwrap();
        // No other clause body may appear between the first test and the
        // hottest body.
        for (i, c) in counts.iter().enumerate() {
            if i != hottest {
                let p = classify_line.find(&format!("(quote k{i})")).unwrap();
                prop_assert!(
                    p > hot_pos || p < first_clause,
                    "clause k{} (count {}) precedes hottest k{} in {}",
                    i, c, hottest, classify_line
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hygiene: generated binders never capture user variables
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn swap_macro_never_captures(name in "[a-z][a-z0-9]{0,6}") {
        prop_assume!(!matches!(
            name.as_str(),
            "if" | "let" | "and" | "or" | "cond" | "case" | "else" | "not" | "x" | "y"
                | "begin" | "when" | "do" | "set" | "quote" | "lambda" | "define" | "list"
        ));
        let program = format!(
            "(define-syntax (swap! stx)
               (syntax-case stx ()
                 [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
             (let ([{name} 1] [other 2])
               (swap! {name} other)
               (list {name} other))"
        );
        let mut e = Engine::new();
        let v = e.run_str(&program, "hyg.scm").unwrap();
        prop_assert_eq!(v.to_string(), "(2 1)");
    }
}
