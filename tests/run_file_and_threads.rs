//! File-based engine entry points and thread-safety of the proc-macro
//! runtime.

use pgmp::Engine;
use pgmp_profiler::ProfileMode;

#[test]
fn run_file_compiles_and_attributes_source_to_the_path() {
    let dir = std::env::temp_dir().join("pgmp-runfile");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.scm");
    std::fs::write(&path, "(define (f x) (* x x))\n(f 9)").unwrap();
    let mut e = Engine::new();
    let v = e.run_file(&path).unwrap();
    assert_eq!(v.to_string(), "81");

    // Errors point into the file.
    std::fs::write(&path, "(car 5)").unwrap();
    let err = e.run_file(&path).unwrap_err().to_string();
    assert!(err.contains("prog.scm"), "{err}");

    // Missing files error cleanly.
    assert!(e.run_file(dir.join("missing.scm")).is_err());
}

#[test]
fn run_file_profile_cycle() {
    let dir = std::env::temp_dir().join("pgmp-runfile2");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("train.scm");
    std::fs::write(
        &prog,
        "(define (f n) (if (< n 3) 'lo 'hi))
         (let loop ([i 0]) (unless (= i 30) (f i) (loop (add1 i))))",
    )
    .unwrap();
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_file(&prog).unwrap();
    assert!(!e.current_weights().is_empty());
}

#[test]
fn rt_counters_are_thread_safe() {
    // The Rust-side runtime must tolerate concurrent hits (the registry is
    // a mutex over a map); counts must not be lost.
    pgmp_rt::enable_profiling();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..1000 {
                    pgmp_rt::hit("threaded-point");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    pgmp_rt::disable_profiling();
    assert_eq!(pgmp_rt::count("threaded-point"), 8 * 1000);
}

#[test]
fn rt_weights_snapshot_under_concurrent_writes_is_consistent() {
    pgmp_rt::enable_profiling();
    let writer = std::thread::spawn(|| {
        for _ in 0..2000 {
            pgmp_rt::hit("snapshot-writer");
        }
    });
    // Snapshots taken mid-write parse and stay in range.
    for _ in 0..20 {
        let w = pgmp_rt::snapshot_weights();
        let text = w.to_profile_string();
        let back = pgmp_rt::Weights::parse(&text).unwrap();
        assert_eq!(back, w);
    }
    writer.join().unwrap();
    pgmp_rt::disable_profiling();
}
