//! Extension case study: profile-guided function inlining (the PGO the
//! paper's introduction motivates via Arnold et al.'s Java inlining
//! numbers), implemented as a user-level meta-program.

use pgmp_case_studies::{engine_with, two_pass, Lib};

#[test]
fn unprofiled_inline_call_is_a_plain_call() {
    let mut e = engine_with(&[Lib::Inline]).unwrap();
    let out = e
        .expand_str(
            "(define-inlinable (double x) (* 2 x))
             (define (f y) (inline-call double y))",
            "inl.scm",
        )
        .unwrap();
    let f = out.last().unwrap().to_datum().to_string();
    assert_eq!(f, "(define (f y) (double y))");
}

#[test]
fn hot_call_sites_are_inlined_cold_ones_are_not() {
    let program = "
      (define-inlinable (double x) (* 2 x))
      (define (hot-loop n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (inline-call double i))))))
      (define (cold-path y) (inline-call double y))
      (hot-loop 200)
      (cold-path 3)";
    let result = two_pass(&[Lib::Inline], program, "inl.scm").unwrap();
    assert_eq!(result.training_result, result.optimized_result);
    let hot_line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("hot-loop"))
        .unwrap();
    let cold_line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("cold-path"))
        .unwrap();
    assert!(
        hot_line.contains("(* 2 ") && !hot_line.contains("(double "),
        "hot site inlined:\n{hot_line}"
    );
    assert!(
        cold_line.contains("(double y)"),
        "cold site stays a call:\n{cold_line}"
    );
}

#[test]
fn inlining_preserves_behaviour() {
    let program = "
      (define-inlinable (clamp x lo hi) (max lo (min x hi)))
      (define (run n)
        (let loop ([i 0] [acc '()])
          (if (= i n)
              (reverse acc)
              (loop (add1 i) (cons (inline-call clamp (- i 3) 0 4) acc)))))
      (run 10)";
    let result = two_pass(&[Lib::Inline], program, "clamp.scm").unwrap();
    assert_eq!(result.training_result, "(0 0 0 0 1 2 3 4 4 4)");
    assert_eq!(result.optimized_result, result.training_result);
}

#[test]
fn arguments_evaluate_once_via_let_binding() {
    let program = "
      (define-inlinable (twice x) (+ x x))
      (define n 0)
      (define (bump!) (set! n (add1 n)) n)
      (define (go) (inline-call twice (bump!)))
      (let loop ([i 0]) (unless (= i 50) (go) (loop (add1 i))))
      (set! n 0)
      (list (go) n)";
    let result = two_pass(&[Lib::Inline], program, "once.scm").unwrap();
    // After reset, one call to go: bump! must run exactly once even when
    // `x` appears twice in the body.
    assert_eq!(result.optimized_result, "(2 1)");
}

#[test]
fn self_recursive_functions_inline_one_level() {
    let program = "
      ;; Low threshold: the go call site is cool relative to the loop's
      ;; own expression counts, but must still inline.
      (begin-for-syntax (set! inline-threshold-value 0.01))
      (define-inlinable (count-down n)
        (if (zero? n) 'done (inline-call count-down (sub1 n))))
      (define (go) (inline-call count-down 50))
      (let loop ([i 0]) (unless (= i 40) (go) (loop (add1 i))))
      (go)";
    let result = two_pass(&[Lib::Inline], program, "rec.scm").unwrap();
    assert_eq!(result.optimized_result, "done");
    // The inlined body calls count-down directly (no nested inline-call
    // left over, which would have looped the expander).
    let go_line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (go)"))
        .unwrap();
    assert!(go_line.contains("(count-down "), "{go_line}");
    assert!(go_line.contains("(if (zero? "), "one level inlined: {go_line}");
}

#[test]
fn arity_mismatch_falls_back_to_a_call() {
    // A wrong-arity inline-call keeps the plain call (which then fails at
    // run time exactly like a normal wrong-arity call).
    let mut e = engine_with(&[Lib::Inline]).unwrap();
    let out = e
        .expand_str(
            "(define-inlinable (one x) x)
             (define (f) (inline-call one 1 2))",
            "arity.scm",
        )
        .unwrap();
    assert!(out.last().unwrap().to_datum().to_string().contains("(one 1 2)"));
}

#[test]
fn unknown_functions_pass_through() {
    let mut e = engine_with(&[Lib::Inline]).unwrap();
    let v = e
        .run_str(
            "(define (plain x) (* 3 x))
             (inline-call plain 7)",
            "unknown.scm",
        )
        .unwrap();
    assert_eq!(v.to_string(), "21");
}

#[test]
fn threshold_is_tunable() {
    // With threshold 0 every profiled site inlines, even barely-warm ones.
    let program = "
      (begin-for-syntax (set! inline-threshold-value 0.0))
      (define-inlinable (id x) x)
      (define (once y) (inline-call id y))
      (once 1)
      (once 2)";
    let result = two_pass(&[Lib::Inline], program, "thresh.scm").unwrap();
    let line = result
        .expansion_text
        .lines()
        .find(|l| l.contains("define (once"))
        .unwrap();
    assert!(!line.contains("(id y)"), "inlined at threshold 0: {line}");
}
