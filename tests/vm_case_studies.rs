//! Cross-engine validation: the optimized output of every case study must
//! compute the same results on the bytecode VM as on the tree-walker —
//! i.e. the meta-programs' generated code is valid input for the
//! "low-level" compiler too, which is what the §4.3 workflow depends on.

use pgmp_bytecode::Vm;
use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileMode;

/// Runs `program` through pass-1 training, then executes the optimized
/// compile on both engines and compares results.
fn tree_vs_vm(libs: &[Lib], program: &str) -> (String, String) {
    let mut train = engine_with(libs).unwrap();
    train.set_instrumentation(ProfileMode::EveryExpression);
    train.run_str(program, "prog.scm").unwrap();
    let weights = train.current_weights();

    let mut tree = engine_with(libs).unwrap();
    tree.set_profile(weights.clone());
    let tree_result = tree.run_str(program, "prog.scm").unwrap().write_string();

    let mut vm_engine = engine_with(libs).unwrap();
    vm_engine.set_profile(weights);
    let core = vm_engine.expand_to_core(program, "prog.scm").unwrap();
    let mut vm = Vm::new();
    let mut vm_result = String::new();
    for form in &core {
        vm_result = vm.run_core(vm_engine.interp_mut(), form).unwrap().write_string();
    }
    (tree_result, vm_result)
}

#[test]
fn if_r_output_runs_on_the_vm() {
    let (t, v) = tree_vs_vm(
        &[Lib::IfR],
        "(define (f n) (if-r (= n 0) 'zero 'other))
         (let loop ([i 0] [acc '()])
           (if (= i 20) (reverse acc) (loop (add1 i) (cons (f (modulo i 7)) acc))))",
    );
    assert_eq!(t, v);
}

#[test]
fn reordered_case_runs_on_the_vm() {
    let (t, v) = tree_vs_vm(
        &[Lib::Case],
        "(define (kind c)
           (case c
             [(#\\a #\\e #\\i #\\o #\\u) 'vowel]
             [(#\\0 #\\1 #\\2) 'digit]
             [else 'other]))
         (map kind (string->list \"hello 012 world\"))",
    );
    assert_eq!(t, v);
}

#[test]
fn inline_cached_dispatch_runs_on_the_vm() {
    let (t, v) = tree_vs_vm(
        &[Lib::ObjectSystem],
        "(class P ((x 1)) (define-method (get this) (field this x)))
         (class Q ((y 2)) (define-method (get this) (* 10 (field this y))))
         (define objs (list (new P 5) (new P 6) (new Q 7)))
         (map (lambda (o) (method o get)) objs)",
    );
    assert_eq!(t, v);
    assert_eq!(t, "(5 6 70)");
}

#[test]
fn specialized_sequence_runs_on_the_vm() {
    let (t, v) = tree_vs_vm(
        &[Lib::Sequence],
        "(define s (profiled-sequence 10 20 30 40))
         (let loop ([i 0] [acc 0])
           (if (= i 40) (list acc (seq-kind s))
               (loop (add1 i) (+ acc (seq-ref s (modulo i 4))))))",
    );
    assert_eq!(t, v);
    assert!(t.ends_with("vector)"), "{t}");
}

#[test]
fn profiled_list_runs_on_the_vm() {
    let (t, v) = tree_vs_vm(
        &[Lib::ProfiledList],
        "(define p (profiled-list 1 2 3))
         (list (plist-car p) (plist-ref p 2) (plist-length p))",
    );
    assert_eq!(t, v);
    assert_eq!(t, "(1 3 3)");
}
