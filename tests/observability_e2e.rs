//! End-to-end observability: a shifting hot branch flips the recorded
//! `case` optimization decision, and trace comparison surfaces the flip.
//!
//! The scenario is the adaptive story told through decision provenance:
//! train on phase-1 traffic (all `#\a`), trace an optimized run; train on
//! phase-2 traffic (all `#\b`, same program source), trace another. The
//! two traces must contain `site: "case"` decisions at the *same*
//! decision point whose chosen order flipped — which is exactly what
//! `pgmp-trace compare a.jsonl b.jsonl` prints, so this test replays the
//! same last-wins keying the CLI uses.

use pgmp_adaptive::{drift, DriftMetric};
use pgmp_case_studies::{engine_with, Lib};
use pgmp_observe as observe;
use pgmp_profiler::{ProfileInformation, ProfileMode};
use std::collections::BTreeMap;

/// A classifier whose `case` sees whatever `input` contains. Phase inputs
/// must have identical lengths so both phases present the decision at an
/// identical source span.
fn program(input: &str) -> String {
    format!(
        r#"
        (define (classify c)
          (case c
            [(#\a) 'alpha]
            [(#\b) 'beta]
            [else 'other]))
        (define (drive cs n)
          (if (null? cs)
              n
              (drive (cdr cs) (if (eqv? (classify (car cs)) 'other) n (add1 n)))))
        (drive (string->list "{input}") 0)
        "#
    )
}

fn train(src: &str) -> ProfileInformation {
    let mut engine = engine_with(&[Lib::Case]).expect("install case library");
    engine.set_instrumentation(ProfileMode::EveryExpression);
    engine.run_str(src, "shift.scm").expect("training run");
    engine.current_weights()
}

fn traced_optimized_run(src: &str, weights: &ProfileInformation) -> Vec<observe::TraceEvent> {
    let mut engine = engine_with(&[Lib::Case]).expect("install case library");
    engine.set_profile(weights.clone());
    observe::start(observe::TraceConfig::default()).expect("start recording");
    engine.run_str(src, "shift.scm").expect("optimized run");
    observe::stop()
}

/// The `pgmp-trace compare` keying: last decision per (site, point).
fn final_decisions(
    events: &[observe::TraceEvent],
) -> BTreeMap<(String, String), (Vec<String>, u32)> {
    let mut map = BTreeMap::new();
    for ev in events {
        if let observe::EventKind::Decision {
            site,
            decision_point,
            chosen,
            rank,
            ..
        } = &ev.kind
        {
            map.insert(
                (site.clone(), decision_point.clone()),
                (chosen.clone(), *rank),
            );
        }
    }
    map
}

#[test]
fn shifting_hot_branch_flips_the_case_decision() {
    let _bus = observe::exclusive();

    // Same source length in both phases: only the traffic shifts.
    let phase1 = program(&"a".repeat(40));
    let phase2 = program(&"b".repeat(40));
    let weights1 = train(&phase1);
    let weights2 = train(&phase2);
    assert!(
        drift(&weights1, &weights2, DriftMetric::TotalVariation) > 0.0,
        "the traffic shift must register as profile drift"
    );

    // Both optimized runs execute the phase-1 *source* — the program did
    // not change, only the profile it was optimized under.
    let trace_a = traced_optimized_run(&phase1, &weights1);
    let trace_b = traced_optimized_run(&phase1, &weights2);

    let a = final_decisions(&trace_a);
    let b = final_decisions(&trace_b);
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same program, same decision points — compare must find no \
         only-in-one entries"
    );

    // The case decision exists in both, at the same point, and flipped.
    let case_key = a
        .keys()
        .find(|(site, _)| site == "case")
        .expect("a `case` decision must be recorded")
        .clone();
    let (chosen_a, rank_a) = &a[&case_key];
    let (chosen_b, rank_b) = &b[&case_key];
    assert!(
        chosen_a[0].contains("#\\a") || chosen_a[0].contains(r"#\a"),
        "phase-1 profile puts the #\\a arm first, got {chosen_a:?}"
    );
    assert!(
        chosen_b[0].contains("#\\b") || chosen_b[0].contains(r"#\b"),
        "phase-2 profile puts the #\\b arm first, got {chosen_b:?}"
    );
    assert_eq!(*rank_a, 0, "phase 1 keeps source order (the #\\a arm is written first)");
    assert!(*rank_b > 0, "phase 2 must reorder, got rank {rank_b}");

    // `pgmp-trace compare` reports exactly the flips: every differing
    // entry is this one form's reorder (the `case` site and the
    // exclusive-cond it expands into), nothing else.
    let flips: Vec<_> = a
        .iter()
        .filter(|(k, v)| b.get(*k).is_some_and(|w| w.0 != v.0))
        .map(|(k, _)| k.clone())
        .collect();
    assert!(
        flips.contains(&case_key),
        "compare must surface the case flip, found {flips:?}"
    );
    for (site, _) in &flips {
        assert!(
            site == "case" || site == "exclusive-cond",
            "no unrelated decision may flip, found site {site}"
        );
    }
}

#[test]
fn traced_run_round_trips_through_the_jsonl_sink() {
    let _bus = observe::exclusive();
    let src = program(&"a".repeat(40));
    let weights = train(&src);
    let events = traced_optimized_run(&src, &weights);
    assert!(!events.is_empty());

    let dir = std::env::temp_dir().join(format!("pgmp-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.jsonl");
    observe::write_trace(&path, &events).unwrap();
    let back = observe::read_trace(&path).unwrap();
    assert_eq!(back, events, "trace file must round-trip losslessly");
    std::fs::remove_dir_all(&dir).ok();
}
