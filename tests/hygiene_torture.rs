//! Hygiene torture tests: the §2-style meta-programs only work because
//! the expander keeps macro-introduced and user identifiers apart. These
//! stress that machinery through the full engine.

use pgmp::Engine;

fn run(src: &str) -> String {
    let mut e = Engine::new();
    e.run_str(src, "hyg.scm")
        .unwrap_or_else(|err| panic!("failed: {err}\n{src}"))
        .write_string()
}

#[test]
fn three_levels_of_temp_binding_do_not_collide() {
    assert_eq!(
        run("
          (define-syntax (l1 stx)
            (syntax-case stx ()
              [(_ e) #'(let ([t 1]) (+ t e))]))
          (define-syntax (l2 stx)
            (syntax-case stx ()
              [(_ e) #'(let ([t 10]) (+ t (l1 e)))]))
          (define-syntax (l3 stx)
            (syntax-case stx ()
              [(_ e) #'(let ([t 100]) (+ t (l2 e)))]))
          (let ([t 1000])
            (l3 t))"),
        "1111"
    );
}

#[test]
fn user_code_spliced_under_macro_binder_sees_user_scope() {
    assert_eq!(
        run("
          (define-syntax (shadowing stx)
            (syntax-case stx ()
              [(_ body) #'(let ([x 'macro]) (list x body))]))
          (define x 'user)
          (shadowing x)"),
        "(macro user)"
    );
}

#[test]
fn macro_can_intentionally_bind_user_identifiers_via_patterns() {
    // Binding a user-supplied identifier is fine — the binder comes from
    // the use site, so marks agree.
    assert_eq!(
        run("
          (define-syntax (my-let1 stx)
            (syntax-case stx ()
              [(_ name value body) #'(let ([name value]) body)]))
          (my-let1 q 42 (+ q 1))"),
        "43"
    );
}

#[test]
fn swap_with_both_names_matching_macro_temps() {
    assert_eq!(
        run("
          (define-syntax (swap! stx)
            (syntax-case stx ()
              [(_ a b) #'(let ([tmp a]) (set! a b) (set! b tmp))]))
          (let ([tmp 1] [a 2] [b 3])
            (swap! tmp a)
            (swap! a b)
            (list tmp a b))"),
        "(2 3 1)"
    );
}

#[test]
fn recursive_macro_keeps_each_expansion_layer_separate() {
    assert_eq!(
        run("
          (define-syntax (sum-down stx)
            (syntax-case stx ()
              [(_ 0) #'0]
              [(_ n) (let ([v (syntax->datum #'n)])
                       #`(let ([k #,(datum->syntax #'n (- v 1))])
                           (+ n (sum-down #,(datum->syntax #'n (- v 1))))))]))
          (sum-down 4)"),
        "10"
    );
}

#[test]
fn syntax_rules_and_syntax_case_macros_compose() {
    assert_eq!(
        run("
          (define-syntax when-positive
            (syntax-rules ()
              [(_ e body ...) (if (> e 0) (begin body ...) 'nope)]))
          (define-syntax (squared stx)
            (syntax-case stx ()
              [(_ e) #'(* e e)]))
          (list (when-positive (squared 3) 'yes)
                (when-positive (squared 0) 'yes))"),
        "(yes nope)"
    );
}

#[test]
fn pattern_variables_substitute_even_inside_quote() {
    // R6RS semantics: pattern variables are substituted everywhere in a
    // template, including under quote — `'one` here is `'1`, not the
    // symbol `one`.
    assert_eq!(
        run("
          (define-syntax (pick stx)
            (syntax-case stx ()
              [(_ one) #'(list 'one one)]
              [(_ one two) #'(list 'two two one)]))
          (list (pick 1) (pick 1 2))"),
        "((1 1) (2 2 1))"
    );
}

#[test]
fn pattern_variables_do_not_leak_across_clauses() {
    assert_eq!(
        run("
          (define-syntax (pick stx)
            (syntax-case stx ()
              [(_ a) #'(list 'single a)]
              [(_ a b) #'(list 'pair b a)]))
          (list (pick 1) (pick 1 2))"),
        "((single 1) (pair 2 1))"
    );
}

#[test]
fn introduced_defines_are_visible_but_introduced_lets_are_not() {
    // Macro-generated toplevel defines splice into the program (by
    // design); macro-internal lets never leak.
    assert_eq!(
        run("
          (define-syntax (defpair stx)
            (syntax-case stx ()
              [(_ a b)
               #'(begin (define a 1) (define b (let ([hidden 41]) (add1 hidden))))]))
          (defpair p q)
          (list p q)"),
        "(1 42)"
    );
    // `hidden` must not be visible.
    let mut e = Engine::new();
    assert!(e
        .run_str(
            "(define-syntax (d stx)
               (syntax-case stx ()
                 [(_ a) #'(define a (let ([hidden 1]) hidden))]))
             (d x)
             hidden",
            "leak.scm",
        )
        .is_err());
}

#[test]
fn fenders_run_with_pattern_variables_in_scope() {
    assert_eq!(
        run("
          (define-syntax (classify stx)
            (syntax-case stx ()
              [(_ n) (and (number? (syntax->datum #'n))
                          (> (syntax->datum #'n) 0))
               #''positive-literal]
              [(_ n) (number? (syntax->datum #'n)) #''other-literal]
              [(_ n) #''not-a-literal]))
          (list (classify 5) (classify -5) (classify foo))"),
        "(positive-literal other-literal not-a-literal)"
    );
}

#[test]
fn datum_to_syntax_deliberately_breaks_hygiene() {
    // The escape hatch: constructing an identifier with the *use site's*
    // context captures on purpose (anaphoric macros).
    assert_eq!(
        run("
          (define-syntax (aif stx)
            (syntax-case stx ()
              [(_ test then else)
               (let ([it (datum->syntax #'test 'it)])
                 #`(let ([#,it test])
                     (if #,it then else)))]))
          (aif (memv 2 '(1 2 3)) it 'nothing)"),
        "(2 3)"
    );
}
