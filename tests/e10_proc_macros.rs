//! E10 — §5: generality of the design across meta-programming systems.
//!
//! The paper implements its design in Chez Scheme and Racket; this
//! workspace adds a third implementation in Rust's procedural macros
//! (`pgmp-macros` + `pgmp-rt`). These tests exercise the full cycle:
//! instrument → run → store profile → (a fixture stands in for the
//! recompile) → verify the profile-guided reordering.

use pgmp_macros::{exclusive_cond, profile, profiled, static_weight};

#[test]
fn profile_macro_counts_executions() {
    pgmp_rt::enable_profiling();
    let mut total = 0;
    for i in 0..7 {
        total += profile!("e10-basic", i);
    }
    pgmp_rt::disable_profiling();
    assert_eq!(total, 21);
    assert_eq!(pgmp_rt::count("e10-basic"), 7);
}

#[test]
fn profiled_attribute_counts_calls() {
    #[profiled]
    fn helper(x: u32) -> u32 {
        x * 2
    }
    pgmp_rt::enable_profiling();
    let v: u32 = (0..5).map(helper).sum();
    pgmp_rt::disable_profiling();
    assert_eq!(v, 20);
    assert_eq!(pgmp_rt::count("fn:helper"), 5);
}

/// Classifies a character; conditions count their own evaluations so the
/// arm order is observable.
fn classify_unprofiled(c: char, evals: &mut u32) -> u32 {
    exclusive_cond!(
        site "uo";
        ({ *evals += 1; c == 'd' }) => (1);
        ({ *evals += 1; c == 'x' }) => (2);
        else => (0)
    )
}

fn classify_profiled(c: char, evals: &mut u32) -> u32 {
    exclusive_cond!(
        profile "tests/fixtures/ord.pgmp";
        site "ord";
        ({ *evals += 1; c == 'd' }) => (1);
        ({ *evals += 1; c == 'x' }) => (2);
        else => (0)
    )
}

#[test]
fn without_profile_arms_keep_source_order() {
    let mut evals = 0;
    assert_eq!(classify_unprofiled('x', &mut evals), 2);
    assert_eq!(evals, 2, "both conditions tried, in source order");
    evals = 0;
    assert_eq!(classify_unprofiled('d', &mut evals), 1);
    assert_eq!(evals, 1);
}

#[test]
fn with_profile_hot_arm_is_tested_first() {
    // The fixture gives ord#1 weight 1.0 and ord#0 weight 0.1, so the
    // second source arm is generated first.
    let mut evals = 0;
    assert_eq!(classify_profiled('x', &mut evals), 2);
    assert_eq!(evals, 1, "hot arm tried first after reordering");
    evals = 0;
    assert_eq!(classify_profiled('d', &mut evals), 1);
    assert_eq!(evals, 2, "cold arm now needs two tests");
}

#[test]
fn reordering_preserves_results() {
    for c in ['d', 'x', 'q'] {
        let mut e1 = 0;
        let mut e2 = 0;
        assert_eq!(
            classify_unprofiled(c, &mut e1),
            classify_profiled(c, &mut e2),
            "same classification for {c:?}"
        );
    }
}

#[test]
fn arm_instrumentation_uses_stable_source_indices() {
    // Arm labels are by *source* index, so the profiled (reordered) build
    // counts into the same points as the unprofiled build.
    pgmp_rt::enable_profiling();
    let mut sink = 0;
    for _ in 0..3 {
        sink += classify_profiled('x', &mut sink_u32());
    }
    classify_profiled('d', &mut sink_u32());
    pgmp_rt::disable_profiling();
    let _ = sink;
    assert_eq!(pgmp_rt::count("ord#1"), 3, "x-arm keeps label ord#1 after reorder");
    assert_eq!(pgmp_rt::count("ord#0"), 1);
}

fn sink_u32() -> u32 {
    0
}

#[test]
fn static_weight_reads_the_profile_at_compile_time() {
    let hot = static_weight!("ord#1", "tests/fixtures/ord.pgmp");
    let cold = static_weight!("ord#0", "tests/fixtures/ord.pgmp");
    let unknown = static_weight!("ord#99", "tests/fixtures/ord.pgmp");
    assert_eq!(hot, 1.0);
    assert_eq!(cold, 0.1);
    assert_eq!(unknown, 0.0);
    let missing_profile = static_weight!("anything", "does/not/exist.pgmp");
    assert_eq!(missing_profile, 0.0);
}

#[test]
fn parse_fixture_reorders_four_arms() {
    // The parse.pgmp fixture reproduces Figure 8's shape in the Rust
    // implementation: digits were hottest in this (synthetic) profile.
    fn classify(c: char, evals: &mut u32) -> &'static str {
        exclusive_cond!(
            profile "tests/fixtures/parse.pgmp";
            site "parse";
            ({ *evals += 1; c == ' ' || c == '\t' }) => ("white-space");
            ({ *evals += 1; c.is_ascii_digit() }) => ("digit");
            ({ *evals += 1; c == '(' }) => ("open");
            ({ *evals += 1; c == ')' }) => ("close");
            else => ("other")
        )
    }
    // Weights: #1 digit 1.0, #2/#3 parens .42, #0 ws .18: digit tested
    // first.
    let mut evals = 0;
    assert_eq!(classify('7', &mut evals), "digit");
    assert_eq!(evals, 1);
    evals = 0;
    assert_eq!(classify(' ', &mut evals), "white-space");
    assert_eq!(evals, 4, "white-space fell to last among conditions");
    evals = 0;
    assert_eq!(classify('!', &mut evals), "other");
    assert_eq!(evals, 4);
}

#[test]
fn store_profile_round_trip() {
    let dir = std::env::temp_dir().join("pgmp-e10");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rust.pgmp");
    pgmp_rt::enable_profiling();
    for _ in 0..4 {
        profile!("e10-store-hot", ());
    }
    profile!("e10-store-cold", ());
    pgmp_rt::disable_profiling();
    pgmp_rt::store_profile(&path).unwrap();
    let w = pgmp_rt::Weights::load(&path).unwrap();
    // The counter registry is process-global and tests run in parallel,
    // so only relative claims are stable: hot ran 4x cold.
    let (hot, cold) = (w.weight("e10-store-hot"), w.weight("e10-store-cold"));
    assert!(cold > 0.0);
    assert!((hot / cold - 4.0).abs() < 1e-9, "hot={hot} cold={cold}");
}

#[test]
fn cross_implementation_profile_compatibility() {
    // A profile stored by the Scheme engine parses in the Rust runtime.
    use pgmp::Engine;
    use pgmp_profiler::ProfileMode;
    let dir = std::env::temp_dir().join("pgmp-e10-cross");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cross.pgmp");
    let mut e = Engine::new();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str("(define (f) 1) (f) (f)", "cross.scm").unwrap();
    e.store_profile(&path).unwrap();
    let w = pgmp_rt::Weights::load(&path).unwrap();
    assert!(!w.is_empty());
}
