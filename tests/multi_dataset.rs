//! §3.2 end to end: merging profile data from multiple training inputs so
//! meta-programs optimize for the blend of workloads expected in
//! production — "multiple data sets are important to ensure PGOs can
//! optimize for multiple classes of inputs".

use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileMode;

/// Trains `program` + `driver` and returns the weights.
fn train_with(driver: &str) -> pgmp_profiler::ProfileInformation {
    let mut e = engine_with(&[Lib::ExclusiveCond]).unwrap();
    e.set_instrumentation(ProfileMode::EveryExpression);
    e.run_str(&format!("{CLASSIFIER}\n{driver}"), "multi.scm").unwrap();
    e.current_weights()
}

const CLASSIFIER: &str = "
  (define (classify n)
    (exclusive-cond
      [(< n 10) 'small]
      [(< n 100) 'medium]
      [(>= n 100) 'large]))";

fn clause_order(weights: pgmp_profiler::ProfileInformation) -> Vec<&'static str> {
    let mut e = engine_with(&[Lib::ExclusiveCond]).unwrap();
    e.set_profile(weights);
    let out = e.expand_str(CLASSIFIER, "multi.scm").unwrap();
    let text = out[0].to_datum().to_string();
    let mut tags: Vec<(usize, &'static str)> = ["small", "medium", "large"]
        .into_iter()
        .map(|t| {
            let needle = format!("(quote {t})");
            (text.find(&needle).unwrap(), t)
        })
        .collect();
    tags.sort();
    tags.into_iter().map(|(_, t)| t).collect()
}

#[test]
fn single_datasets_optimize_for_their_own_input_class() {
    // Dataset A: small inputs dominate.
    let wa = train_with("(let loop ([i 0]) (unless (= i 60) (classify (modulo i 10)) (loop (add1 i))))");
    assert_eq!(clause_order(wa), ["small", "medium", "large"]);

    // Dataset B: large inputs dominate.
    let wb = train_with("(let loop ([i 0]) (unless (= i 60) (classify (+ 1000 i)) (loop (add1 i))))");
    assert_eq!(clause_order(wb)[0], "large");
}

#[test]
fn merged_datasets_balance_both_input_classes() {
    // A: overwhelmingly small. B: large, but with some medium traffic too.
    let wa = train_with(
        "(let loop ([i 0]) (unless (= i 90) (classify 1) (loop (add1 i))))",
    );
    let wb = train_with(
        "(let loop ([i 0]) (unless (= i 60) (classify 5000) (loop (add1 i))))
         (let loop ([i 0]) (unless (= i 30) (classify 50) (loop (add1 i))))",
    );
    // Merged: small weighs ~1.0 from A, large ~1.0 from B, medium ~0.5
    // from B only — so the blended order puts small or large first and
    // medium never first.
    let merged = wa.merge(&wb);
    let order = clause_order(merged);
    assert_ne!(order[0], "medium");
    assert_eq!(order[1], "large", "averaged large outweighs B-only medium but not A's small");
}

#[test]
fn merged_weights_follow_figure_3_averaging_through_files() {
    // Same flow through the on-disk format and the scheme-level
    // merge-profile, as a user would do between runs.
    let dir = std::env::temp_dir().join("pgmp-multi");
    std::fs::create_dir_all(&dir).unwrap();
    let (fa, fb) = (dir.join("a.pgmp"), dir.join("b.pgmp"));
    train_with("(let loop ([i 0]) (unless (= i 50) (classify 1) (loop (add1 i))))")
        .store_file(&fa)
        .unwrap();
    train_with("(let loop ([i 0]) (unless (= i 50) (classify 5000) (loop (add1 i))))")
        .store_file(&fb)
        .unwrap();

    let mut e = engine_with(&[Lib::ExclusiveCond]).unwrap();
    e.run_str(
        &format!(
            "(load-profile \"{}\") (merge-profile \"{}\")",
            fa.to_str().unwrap(),
            fb.to_str().unwrap()
        ),
        "merge.scm",
    )
    .unwrap();
    let merged = e.profile();
    assert_eq!(merged.dataset_count(), 2);
    for (_, w) in merged.iter() {
        assert!((0.0..=1.0).contains(&w));
    }
    // The classify expansion under the merged profile parses fine and
    // never puts medium (cold in both) first.
    let order = clause_order(merged);
    assert_ne!(order[0], "medium");
}
