//! §4.3: the three-pass protocol keeping source-level PGMP and
//! block-level PGO consistent.
//!
//! ```sh
//! cargo run --example three_pass
//! ```

use pgmp::workflow::run_three_pass;

const PROGRAM: &str = "
  (define-syntax (if-r stx)
    (syntax-case stx ()
      [(_ test t-branch f-branch)
       (if (< (profile-query #'t-branch) (profile-query #'f-branch))
           #'(if (not test) f-branch t-branch)
           #'(if test t-branch f-branch))]))
  (define (bucket n)
    (if-r (= (modulo n 100) 0) 'rare 'common))
  (let loop ([i 0] [commons 0])
    (if (= i 5000)
        commons
        (loop (add1 i) (if (eqv? (bucket i) 'common) (add1 commons) commons))))";

fn main() -> Result<(), pgmp::Error> {
    println!("== §4.3 three-pass source+block PGO ==\n");
    println!("pass 1: instrument source expressions, run, collect weights");
    println!("pass 2: optimize meta-programs with source weights, profile basic blocks");
    println!("pass 3: optimize with source weights AND block counts (code layout)\n");

    let report = run_three_pass(PROGRAM, "three-pass.scm")?;

    println!("result of final run:         {}", report.result);
    println!("source profile points:       {}", report.source_weights.len());
    println!("chunks compiled (pass 2):    {}", report.pass2_chunks.len());
    println!("chunks compiled (pass 3):    {}", report.pass3_chunks.len());
    println!(
        "CFG stability (the §4.3 invariant): {}",
        if report.stable { "STABLE — pass-3 code equals pass-2 code" } else { "UNSTABLE" }
    );
    println!(
        "\nblock layout effect:\n  pass-2 fall-through ratio: {:.3} ({} fallthrough / {} taken)\n  pass-3 fall-through ratio: {:.3} ({} fallthrough / {} taken)",
        report.baseline_metrics.fallthrough_ratio(),
        report.baseline_metrics.fallthroughs,
        report.baseline_metrics.taken_jumps,
        report.optimized_metrics.fallthrough_ratio(),
        report.optimized_metrics.fallthroughs,
        report.optimized_metrics.taken_jumps,
    );
    assert!(report.stable);
    Ok(())
}
