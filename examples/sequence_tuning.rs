//! §6.3 (Figures 13–14): profiled data structures — compile-time
//! recommendations and automatic representation specialization, with the
//! asymptotic payoff measured.
//!
//! ```sh
//! cargo run --release --example sequence_tuning
//! ```

use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileMode;
use std::time::Instant;

/// A workload that random-accesses one sequence heavily: O(n) per access
/// on a list, O(1) on a vector, so specialization is asymptotic.
fn workload(n: usize, accesses: usize) -> String {
    let elems: Vec<String> = (0..n).map(|i| i.to_string()).collect();
    format!(
        "(define s (profiled-sequence {}))
         (define (churn reps)
           (let loop ([i 0] [acc 0])
             (if (= i reps)
                 acc
                 (loop (add1 i) (+ acc (seq-ref s (modulo (* i 7) {n})))))))
         (churn {accesses})",
        elems.join(" ")
    )
}

fn main() -> Result<(), pgmp::Error> {
    println!("== §6.3 self-specializing sequences ==\n");

    // --- The recommendation (Figure 13), via the profiled list ----------
    let list_program = "
      (define p (profiled-list 1 2 3 4 5 6 7 8 9 10))
      (define (hammer n)
        (let loop ([i 0] [acc 0])
          (if (= i n) acc (loop (add1 i) (+ acc (plist-ref p (modulo i 10)))))))
      (hammer 500)";
    let mut e1 = engine_with(&[Lib::ProfiledList])?;
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(list_program, "rec.scm")?;
    let mut e2 = engine_with(&[Lib::ProfiledList])?;
    e2.set_profile(e1.current_weights());
    e2.expand_str(list_program, "rec.scm")?;
    for w in e2.take_warnings() {
        println!("compile-time recommendation: {w}");
    }

    // --- The automatic specialization (Figure 14) -----------------------
    let n = 400;
    let program = workload(n, 3000);

    // Pass 1: train (list representation by default).
    let mut train = engine_with(&[Lib::Sequence])?;
    train.set_instrumentation(ProfileMode::EveryExpression);
    train.run_str(&program, "seq.scm")?;
    let weights = train.current_weights();

    // Untrained run: list representation, O(n) per access.
    let mut list_engine = engine_with(&[Lib::Sequence])?;
    let t0 = Instant::now();
    let v1 = list_engine.run_str(&program, "seq.scm")?;
    let t_list = t0.elapsed();

    // Trained run: the constructor specializes to a vector.
    let mut vec_engine = engine_with(&[Lib::Sequence])?;
    vec_engine.set_profile(weights);
    let t0 = Instant::now();
    let v2 = vec_engine.run_str(&program, "seq.scm")?;
    let t_vec = t0.elapsed();
    let kind = vec_engine.run_str("(seq-kind s)", "probe.scm")?;

    println!("\nsequence of {n} elements, 3000 random accesses:");
    println!("  list representation:   {t_list:?} (result {v1})");
    println!("  after specialization:  {t_vec:?} (result {v2}, kind {kind})");
    println!(
        "  speedup:               {:.1}x (asymptotic: grows with sequence length)",
        t_list.as_secs_f64() / t_vec.as_secs_f64()
    );
    assert_eq!(v1.to_string(), v2.to_string());
    Ok(())
}
