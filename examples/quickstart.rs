//! Quickstart: the full profile-guided meta-programming cycle in one file.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! 1. Define a meta-program (`if-r`) that consults profile weights.
//! 2. Run the program instrumented on a training input.
//! 3. Store the profile, reload it in a fresh compilation session.
//! 4. Recompile: the meta-program now generates different (better) code.

use pgmp::Engine;
use pgmp_profiler::ProfileMode;

const PROGRAM: &str = r#"
  ;; A profile-guided `if`: orders branches by how often they ran.
  (define-syntax (if-r stx)
    (syntax-case stx ()
      [(_ test t-branch f-branch)
       (if (< (profile-query #'t-branch) (profile-query #'f-branch))
           #'(if (not test) f-branch t-branch)
           #'(if test t-branch f-branch))]))

  (define (classify n)
    (if-r (< n 10) 'small 'big))

  ;; Training workload: almost everything is big.
  (let loop ([i 0] [bigs 0])
    (if (= i 1000)
        bigs
        (loop (add1 i) (if (eqv? (classify i) 'big) (add1 bigs) bigs))))
"#;

fn main() -> Result<(), pgmp::Error> {
    println!("== pgmp quickstart ==\n");

    // ---- Pass 1: instrument and run on the training input -------------
    let mut training = Engine::new();
    training.set_instrumentation(ProfileMode::EveryExpression);
    let result = training.run_str(PROGRAM, "quickstart.scm")?;
    println!("training run result: {result} (bigs out of 1000)");
    println!("profile points counted: {}\n", training.counters().len());

    // ---- Store the profile (Figure 4: store-profile) ------------------
    let profile_path = std::env::temp_dir().join("quickstart.pgmp");
    training.store_profile(&profile_path)?;
    println!("profile stored to {}\n", profile_path.display());

    // ---- Pass 2: fresh session, load profile, recompile ----------------
    let mut optimizing = Engine::new();
    optimizing.load_profile(&profile_path)?;

    println!("generated code WITHOUT profile data:");
    let mut plain = Engine::new();
    for form in plain.expand_str(PROGRAM, "quickstart.scm")? {
        let text = form.to_datum().to_string();
        if text.contains("define (classify") {
            println!("  {text}");
        }
    }

    println!("\ngenerated code WITH profile data (branches swapped):");
    for form in optimizing.expand_str(PROGRAM, "quickstart.scm")? {
        let text = form.to_datum().to_string();
        if text.contains("define (classify") {
            println!("  {text}");
        }
    }

    // The optimized program still computes the same answer.
    optimizing.reset_profile_points();
    let optimized_result = optimizing.run_str(PROGRAM, "quickstart.scm")?;
    println!("\noptimized run result: {optimized_result}");
    assert_eq!(result.to_string(), optimized_result.to_string());
    println!("\nok: optimization preserved behaviour");
    Ok(())
}
