//! §6.2 (Figures 9–12): profile-guided receiver class prediction on the
//! shapes object system, with a dispatch-speed comparison.
//!
//! ```sh
//! cargo run --release --example shapes
//! ```

use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileMode;
use std::time::Instant;

const SHAPES: &str = r#"
  (class Square
    ((length 0))
    (define-method (area this)
      (sqr (field this length))))
  (class Circle
    ((radius 0))
    (define-method (area this)
      (* 3 (sqr (field this radius)))))
  (class Triangle
    ((base 0) (height 0))
    (define-method (area this)
      (* (field this base) (field this height))))

  ;; Mostly circles — the Figure 10 distribution, scaled up.
  (define (make-shapes n)
    (let loop ([i 0] [acc '()])
      (if (= i n)
          acc
          (loop (add1 i)
                (cons (cond
                        [(< (modulo i 10) 7) (new Circle (add1 (modulo i 5)))]
                        [(< (modulo i 10) 9) (new Square (add1 (modulo i 4)))]
                        [else (new Triangle 2 (add1 (modulo i 3)))])
                      acc)))))

  (define shapes (make-shapes 200))

  (define (total-area reps)
    (let loop ([r 0] [total 0])
      (if (= r reps)
          total
          (loop (add1 r)
                (+ total
                   (fold-left (lambda (acc s) (+ acc (method s area))) 0 shapes))))))
"#;

fn main() -> Result<(), pgmp::Error> {
    println!("== §6.2 receiver class prediction ==\n");
    let train = format!("{SHAPES}\n(total-area 3)");
    let bench = "(total-area 60)";

    // Pass 1: instrument the call site, one profile point per class.
    let mut e1 = engine_with(&[Lib::ObjectSystem])?;
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(&train, "shapes.scm")?;
    let weights = e1.current_weights();

    // Baseline: dynamic dispatch everywhere (no profile).
    let mut plain = engine_with(&[Lib::ObjectSystem])?;
    plain.run_str(&train, "shapes.scm")?;
    let t0 = Instant::now();
    let v1 = plain.run_str(bench, "bench.scm")?;
    let t_plain = t0.elapsed();

    // Optimized: polymorphic inline cache for the two hottest classes.
    let mut opt = engine_with(&[Lib::ObjectSystem])?;
    opt.set_profile(weights);
    opt.run_str(&train, "shapes.scm")?;
    let t0 = Instant::now();
    let v2 = opt.run_str(bench, "bench.scm")?;
    let t_opt = t0.elapsed();

    // Show the optimized call site (compare Figures 11–12).
    let mut show = engine_with(&[Lib::ObjectSystem])?;
    show.set_profile(opt.profile());
    println!("optimized method call site (Circle inlined first, then Square):");
    for form in show.expand_str(SHAPES, "shapes.scm")? {
        let text = form.to_datum().to_string();
        if text.contains("instance-of?") {
            println!("  {text}\n");
        }
    }

    println!("total area:        dynamic {v1}, inline-cached {v2}");
    println!("dynamic dispatch:  {t_plain:?}");
    println!("inline caching:    {t_opt:?}");
    println!(
        "speedup:           {:.2}x",
        t_plain.as_secs_f64() / t_opt.as_secs_f64()
    );
    assert_eq!(v1.to_string(), v2.to_string());
    Ok(())
}
