//! §5 (generality): the same design in Rust's meta-programming system.
//!
//! `exclusive_cond!` reads a profile file at *macro expansion time* and
//! reorders its arms; `pgmp_rt` collects counts at run time and stores
//! them in the same textual format the Scheme engine uses.
//!
//! ```sh
//! cargo run --example rust_macros
//! ```
//!
//! (The checked-in fixture under `tests/fixtures/parse.pgmp` plays the
//! role of the previous run's profile; to regenerate it, run with
//! profiling enabled and call `pgmp_rt::store_profile`.)

use pgmp_macros::{exclusive_cond, profile, profiled, static_weight};

/// Character classification, profile-guided at compile time: the fixture
/// says digits are hottest, so the digit test is emitted first even
/// though it is written second.
fn classify(c: char) -> &'static str {
    exclusive_cond!(
        profile "tests/fixtures/parse.pgmp";
        site "parse";
        (c == ' ' || c == '\t') => ("white-space");
        (c.is_ascii_digit()) => ("digit");
        (c == '(') => ("open");
        (c == ')') => ("close");
        else => ("other")
    )
}

#[profiled]
fn hot_helper(x: u64) -> u64 {
    profile!("inner-multiply", x.wrapping_mul(2654435761))
}

fn main() {
    println!("== pgmp in Rust proc macros ==\n");

    println!("compile-time weights from tests/fixtures/parse.pgmp:");
    for (arm, w) in [
        ("parse#0 (white-space)", static_weight!("parse#0", "tests/fixtures/parse.pgmp")),
        ("parse#1 (digit)", static_weight!("parse#1", "tests/fixtures/parse.pgmp")),
        ("parse#2 (open)", static_weight!("parse#2", "tests/fixtures/parse.pgmp")),
        ("parse#3 (close)", static_weight!("parse#3", "tests/fixtures/parse.pgmp")),
    ] {
        println!("  {arm}: {w}");
    }

    pgmp_rt::enable_profiling();
    let input = "12 (34) 567 (89) 0";
    let classes: Vec<&str> = input.chars().map(classify).collect();
    for _ in 0..5 {
        hot_helper(42);
    }
    pgmp_rt::disable_profiling();

    println!("\nclassified {input:?}:");
    println!("  {classes:?}");

    println!("\nrun-time counters (note: arm labels follow source order, not emitted order):");
    for point in ["parse#0", "parse#1", "parse#2", "parse#3", "parse#else", "fn:hot_helper", "inner-multiply"] {
        println!("  {point}: {}", pgmp_rt::count(point));
    }

    let path = std::env::temp_dir().join("rust-macros.pgmp");
    pgmp_rt::store_profile(&path).expect("store profile");
    println!("\nprofile stored to {} — feed it back via `profile \"…\"` or", path.display());
    println!("PGMP_PROFILE_PATH to re-optimize the next build.");
}
