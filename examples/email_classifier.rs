//! The paper's running example (§2, Figures 1–2): an email classifier
//! whose `if-r` reorders branches after profiling a spam-heavy inbox.
//!
//! ```sh
//! cargo run --example email_classifier
//! ```

use pgmp_case_studies::{two_pass, Lib};

fn main() -> Result<(), pgmp::Error> {
    // Figure 3's premise: (flag email 'important) runs 5 times,
    // (flag email 'spam) runs 10 times.
    let program = r#"
      (define (subject-contains email s) (string-contains? email s))
      (define (flag email tag) tag)

      (define (classify email)
        (if-r (subject-contains email "PLDI")
          (flag email 'important)
          (flag email 'spam)))

      (define inbox
        (list "Re: PLDI 2015 reviews"
              "PLDI camera ready"
              "[PLDI] registration"
              "PLDI student travel"
              "Fwd: PLDI proceedings"
              "cheap pills" "you won!!!" "claim your prize"
              "hot singles" "free money" "act now" "last chance"
              "limited offer" "dear friend" "urgent reply needed"))

      (map classify inbox)
    "#;

    println!("== §2 running example: if-r ==\n");
    let result = two_pass(&[Lib::IfR], program, "classify.scm")?;

    println!("training classifications: {}", result.training_result);

    println!("\ngenerated classify (compare Figure 2):");
    for line in result.expansion_text.lines() {
        if line.contains("define (classify") {
            println!("  {line}");
        }
    }

    println!("\noptimized classifications: {}", result.optimized_result);
    assert_eq!(result.training_result, result.optimized_result);
    println!("\nok: spam-heavy inbox flipped the branch order, behaviour unchanged");
    Ok(())
}
