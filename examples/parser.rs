//! §6.1 (Figures 5–8): the profile-guided `case` expression, on the
//! paper's character-dispatch parser, with a speed comparison between the
//! statically-ordered and profile-ordered expansions.
//!
//! ```sh
//! cargo run --release --example parser
//! ```

use pgmp_case_studies::{engine_with, Lib};
use pgmp_profiler::ProfileMode;
use std::time::Instant;

/// The Figure 5 parser. `case` clauses are listed in a deliberately bad
/// static order for the training distribution (white space is most common
/// but tested last).
fn parser_program() -> &'static str {
    r#"
      (define (make-stream chars)
        (let ([s (make-eq-hashtable)])
          (hashtable-set! s 'data chars)
          (hashtable-set! s 'pos 0)
          s))
      (define (stream-done? s)
        (>= (hashtable-ref s 'pos 0) (vector-length (hashtable-ref s 'data #f))))
      (define (peek-char-s s)
        (vector-ref (hashtable-ref s 'data #f) (hashtable-ref s 'pos 0)))
      (define (advance! s)
        (hashtable-set! s 'pos (add1 (hashtable-ref s 'pos 0))))
      (define (white-space s) (advance! s) 'white-space)
      (define (digit s) (advance! s) 'digit)
      (define (start-paren s) (advance! s) 'open)
      (define (end-paren s) (advance! s) 'close)
      (define (other s) (advance! s) 'other)
      (define (parse stream)
        (case (peek-char-s stream)
          [(#\0 #\1 #\2 #\3 #\4 #\5 #\6 #\7 #\8 #\9) (digit stream)]
          [(#\() (start-paren stream)]
          [(#\)) (end-paren stream)]
          [(#\space #\tab) (white-space stream)]
          [else (other stream)]))
      (define (run-parser text reps)
        (let outer ([r 0] [n 0])
          (if (= r reps)
              n
              (let ([s (make-stream (list->vector (string->list text)))])
                (let loop ([count 0])
                  (if (stream-done? s)
                      (outer (add1 r) (+ n count))
                      (begin (parse s) (loop (add1 count)))))))))
    "#
}

/// Figure 8's distribution: 55 spaces, 23+23 parens, 10 digits.
fn training_input() -> String {
    let mut s = String::new();
    s.push_str(&" ".repeat(55));
    s.push_str(&"(".repeat(23));
    s.push_str(&")".repeat(23));
    s.push_str("0123456789");
    s
}

fn main() -> Result<(), pgmp::Error> {
    println!("== §6.1 profile-guided case ==\n");
    let input = training_input();
    let lib = parser_program();
    let train = format!("{lib}\n(run-parser \"{input}\" 30)");
    let bench = format!("(run-parser \"{input}\" 400)");

    // Pass 1: profile.
    let mut e1 = engine_with(&[Lib::Case])?;
    e1.set_instrumentation(ProfileMode::EveryExpression);
    e1.run_str(&train, "parse.scm")?;
    let weights = e1.current_weights();

    // Unoptimized timing (same engine type, no profile).
    let mut plain = engine_with(&[Lib::Case])?;
    plain.run_str(&train, "parse.scm")?;
    let t0 = Instant::now();
    let v1 = plain.run_str(&bench, "bench.scm")?;
    let t_plain = t0.elapsed();

    // Optimized timing.
    let mut opt = engine_with(&[Lib::Case])?;
    opt.set_profile(weights);
    opt.run_str(&train, "parse.scm")?;
    let t0 = Instant::now();
    let v2 = opt.run_str(&bench, "bench.scm")?;
    let t_opt = t0.elapsed();

    println!("generated dispatch (profile order — compare Figure 8):");
    let mut show = engine_with(&[Lib::Case])?;
    show.set_profile(opt.profile());
    for form in show.expand_str(lib, "parse.scm")? {
        let text = form.to_datum().to_string();
        if text.contains("define (parse") {
            for part in text.split("(key-in?") {
                println!("    {}", part.trim());
            }
        }
    }

    println!("\ncharacters parsed:   static order {v1}, profile order {v2}");
    println!("static clause order: {t_plain:?}");
    println!("profile order:       {t_opt:?}");
    println!(
        "speedup:             {:.2}x",
        t_plain.as_secs_f64() / t_opt.as_secs_f64()
    );
    assert_eq!(v1.to_string(), v2.to_string());
    Ok(())
}
