//! Workspace façade for the pgmp reproduction.
//!
//! Re-exports the public API of every crate in the reproduction of
//! *"Profile-Guided Meta-Programming"* (PLDI 2015) so examples and
//! integration tests have a single import root. See the `pgmp` crate for
//! the main entry points ([`pgmp::Engine`], [`pgmp::api`],
//! [`pgmp::workflow`]).

/// The user guide, rendered from `docs/GUIDE.md`.
///
/// Included here so every snippet in the guide compiles and runs as a
/// doctest (`cargo test --doc`) — the guide cannot drift from the API.
#[doc = include_str!("../docs/GUIDE.md")]
pub mod guide {}

pub use pgmp;
pub use pgmp_adaptive;
pub use pgmp_bytecode;
pub use pgmp_case_studies;
pub use pgmp_eval;
pub use pgmp_expander;
pub use pgmp_macros;
pub use pgmp_observe;
pub use pgmp_profiler;
pub use pgmp_reader;
pub use pgmp_rt;
pub use pgmp_syntax;
